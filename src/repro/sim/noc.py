"""Network-on-chip latency models.

The paper assumes the cores are "connected by a Network-on-Chip" (Section
4.2) without fixing a topology.  Two models are provided:

* ``uniform`` — every core-to-core message costs ``noc_latency`` cycles
  (the model behind the paper's flat "3 cycles to reach the producer and
  return" accounting);
* ``mesh``    — cores arranged in a near-square 2D mesh with XY routing:
  a message costs ``noc_latency`` per Manhattan hop.  The DMH port sits at
  core 0 (a corner), so walking off the oldest section gets realistically
  more expensive from far cores.

Both are deterministic and contention-free (the paper models no NoC
contention either); the ablation benchmark sweeps them.
"""

from __future__ import annotations

import math
from typing import Tuple, Union

from ..errors import SimulationError


class _NocStats:
    """Observability counters shared by every topology: how many messages
    crossed the network and how many cycles of hop latency they paid.
    Updated by the processor's single transfer-accounting point, so both
    scheduler modes count identically."""

    def __init__(self) -> None:
        self.messages = 0      #: cross-core transfers
        self.hop_cycles = 0    #: total latency cycles of those transfers
        self.dmh_reads = 0     #: renaming walks answered by the DMH

    def record_transfer(self, cycles: int) -> None:
        self.messages += 1
        self.hop_cycles += cycles

    def stats(self) -> dict:
        return {"messages": self.messages, "hop_cycles": self.hop_cycles,
                "dmh_reads": self.dmh_reads}


class UniformNoc(_NocStats):
    """Flat latency between distinct cores."""

    def __init__(self, n_cores: int, hop_latency: int) -> None:
        super().__init__()
        self.n_cores = n_cores
        self.hop_latency = hop_latency

    def latency(self, src: int, dst: int) -> int:
        return 0 if src == dst else self.hop_latency

    def dmh_latency_from(self, core: int) -> int:
        return self.hop_latency

    def describe(self) -> str:
        return "uniform(noc=%d)" % self.hop_latency


class MeshNoc(_NocStats):
    """Near-square 2D mesh with XY (dimension-ordered) routing."""

    def __init__(self, n_cores: int, hop_latency: int) -> None:
        super().__init__()
        self.n_cores = n_cores
        self.hop_latency = hop_latency
        self.width = max(1, int(math.ceil(math.sqrt(n_cores))))

    def coords(self, core: int) -> Tuple[int, int]:
        return core % self.width, core // self.width

    def hops(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> int:
        return self.hops(src, dst) * self.hop_latency

    def dmh_latency_from(self, core: int) -> int:
        # The memory port sits at core 0's corner.
        return max(1, self.hops(core, 0)) * self.hop_latency

    def describe(self) -> str:
        return "mesh(%dx%d, hop=%d)" % (
            self.width, (self.n_cores + self.width - 1) // self.width,
            self.hop_latency)


def make_noc(topology: str, n_cores: int,
             hop_latency: int) -> "Union[UniformNoc, MeshNoc]":
    """Factory keyed by :attr:`repro.sim.SimConfig.topology`.

    Raises :class:`~repro.errors.SimulationError` (a
    :class:`~repro.errors.ReproError`) on an unknown topology, so callers
    driving the CLI get the friendly-error path rather than a traceback.
    """
    if topology == "uniform":
        return UniformNoc(n_cores, hop_latency)
    if topology == "mesh":
        return MeshNoc(n_cores, hop_latency)
    raise SimulationError(
        "unknown NoC topology %r (choose from 'uniform', 'mesh')"
        % (topology,))
