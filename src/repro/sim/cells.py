"""Value cells and dynamic instructions — the simulator's dataflow fabric.

A :class:`Cell` is one renamed destination: the pair *(section,
instruction)* of the paper's renaming scheme, reified as an object that is
*empty* until its producer runs and *full* afterwards.  Every architectural
write (register, flags, or memory word) allocates a fresh cell, which makes
the run single-assignment: "Memory renaming transforms the code at run time
into a single assignment form" (Section 4.2).

Cells are also the synchronization device: consumers (instructions in the
IQ/LSQ, stalled fetch stages, remote renaming requests) simply wait until
``cell.ready``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .section import SectionState

from ..isa.instructions import Instruction


class Cell:
    """A renamed location: empty until produced, then immutable.

    Cells double as the event-driven scheduler's wake list: a parked core
    registers itself as a *waiter* on every cell it is blocked on, and
    :meth:`fill` wakes all registered waiters.  Waiter notification is free
    for the common cell that nobody parks on (``waiters`` stays ``None``).
    """

    __slots__ = ("value", "ready_cycle", "origin", "is_import", "waiters")

    def __init__(self, origin: str = "", is_import: bool = False) -> None:
        self.value: Optional[int] = None
        self.ready_cycle: Optional[int] = None
        self.origin = origin          #: debugging tag, e.g. "s3:i5:rax"
        self.is_import = is_import    #: caches a predecessor's value
        self.waiters: Optional[list] = None   #: parked cores to wake on fill

    @property
    def ready(self) -> bool:
        return self.value is not None

    def fill(self, value: int, cycle: int) -> None:
        if self.ready:
            raise AssertionError(
                "double write to renamed location %s" % self.origin)
        self.value = value
        self.ready_cycle = cycle
        if self.waiters is not None:
            for waiter in self.waiters:
                waiter.wake()
            self.waiters = None

    def add_waiter(self, waiter) -> None:
        """Register *waiter* (a parked core) to be woken when this cell
        fills.  Idempotent per waiter; a no-op once the cell is ready."""
        if self.ready:
            return
        if self.waiters is None:
            self.waiters = [waiter]
        elif waiter not in self.waiters:
            self.waiters.append(waiter)

    @staticmethod
    def full(value: int, cycle: int = 0, origin: str = "") -> "Cell":
        cell = Cell(origin=origin)
        cell.value = value
        cell.ready_cycle = cycle
        return cell

    # Compact pickle state (repro.snapshot): a positional tuple instead
    # of the default per-object {slot: value} dict.  Cells are the most
    # numerous objects in a snapshot (one per renamed location), so this
    # is the difference between restore being O(graph) fast or dominated
    # by building hundreds of thousands of throwaway dicts.

    def __getstate__(self) -> Tuple:
        return (self.value, self.ready_cycle, self.origin, self.is_import,
                self.waiters)

    def __setstate__(self, state: Tuple) -> None:
        (self.value, self.ready_cycle, self.origin, self.is_import,
         self.waiters) = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "=%d@%s" % (self.value, self.ready_cycle) if self.ready else "(empty)"
        return "<Cell %s%s>" % (self.origin, state)


@dataclass
class Timing:
    """Cycle stamps of one dynamic instruction through the six stages
    (None = the stage did not apply, e.g. no ar/ma for register ops)."""

    fd: Optional[int] = None
    rr: Optional[int] = None
    ew: Optional[int] = None
    ar: Optional[int] = None
    ma: Optional[int] = None
    ret: Optional[int] = None

    def row(self) -> Tuple:
        return (self.fd, self.rr, self.ew, self.ar, self.ma, self.ret)

    # compact pickle state, one tuple per instruction (see Cell)
    def __getstate__(self) -> Tuple:
        return self.row()

    def __setstate__(self, state: Tuple) -> None:
        self.fd, self.rr, self.ew, self.ar, self.ma, self.ret = state


class DynInstr:
    """One dynamic instruction flowing through a core's pipeline."""

    __slots__ = (
        "instr", "section", "index", "timing",
        "src_cells", "dest_cells", "computed_at_fetch",
        "is_load", "is_store", "addr_src_cells", "addr_value",
        "store_value_cell", "load_src_cell", "mem_dest_cell",
        "mem_renamed", "mem_done", "executed", "control_resolved",
        "out_value", "retired",
        "missing_srcs", "addr_regs", "in_iq", "in_lsq",
    )

    def __init__(self, instr: Instruction, section: "SectionState",
                 index: int) -> None:
        meta = instr.meta
        self.instr = instr
        self.section = section
        self.index = index                      #: 0-based ordinal in section
        self.timing = Timing()
        #: register sources: name -> Cell (filled at rename)
        self.src_cells: Dict[str, Cell] = {}
        #: register destinations: name -> Cell
        self.dest_cells: Dict[str, Cell] = {}
        self.computed_at_fetch = False
        self.is_load = meta.reads_memory
        self.is_store = meta.writes_memory
        #: cells needed to form the effective address
        self.addr_src_cells: Dict[str, Cell] = {}
        self.addr_value: Optional[int] = None   #: set by ew
        self.store_value_cell: Optional[Cell] = None
        self.load_src_cell: Optional[Cell] = None   #: renamed memory source
        self.mem_dest_cell: Optional[Cell] = None   #: renamed memory dest
        self.mem_renamed = False
        self.mem_done = not (self.is_load or self.is_store)
        self.executed = False
        self.control_resolved = not meta.is_control
        self.out_value: Optional[int] = None
        self.retired = False
        #: registers whose fetch binding was empty, to resolve at rename
        self.missing_srcs: List[str] = []
        #: registers needed to form the effective address
        self.addr_regs: Tuple[str, ...] = ()
        self.in_iq = False
        self.in_lsq = False

    @property
    def tag(self) -> str:
        return "%d-%d" % (self.section.sid, self.index + 1)

    # plain loops testing ``cell.value is None`` directly, not all(...)
    # genexprs over the ``ready`` property: these run once per queue entry
    # per busy core-cycle and the generator frame plus the property
    # descriptor dominate the check

    def sources_ready(self) -> bool:
        for cell in self.src_cells.values():
            if cell.value is None:
                return False
        return True

    def addr_sources_ready(self) -> bool:
        for cell in self.addr_src_cells.values():
            if cell.value is None:
                return False
        return True

    def terminated(self) -> bool:
        """Retirement condition: every effect of the instruction exists."""
        if not self.executed and not self.computed_at_fetch:
            return False
        if not self.mem_done:
            return False
        if not self.control_resolved:
            return False
        for cell in self.dest_cells.values():
            if cell.value is None:
                return False
        return True

    # compact pickle state (see Cell): the slot order is part of the
    # snapshot schema — reordering slots needs a SNAPSHOT_SCHEMA_VERSION
    # bump

    def __getstate__(self) -> Tuple:
        return tuple(getattr(self, name) for name in DynInstr.__slots__)

    def __setstate__(self, state: Tuple) -> None:
        for name, value in zip(DynInstr.__slots__, state):
            setattr(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DynInstr %s %s>" % (self.tag, self.instr)
