"""Configuration of the distributed many-core simulator.

Latency defaults follow the paper's Figure 10 narration: a forked section
starts fetching 2 cycles after the fork ("the creation time of the forked
section (2 cycles)"), and a renaming round trip to a neighbour core costs a
request hop, a lookup and a reply hop ("counting 3 cycles to reach the
producer and return the t[0] value").
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple

from ..errors import SimulationError
from ..faults.models import FaultPlan


@dataclass
class SimConfig:
    """Knobs of the simulated processor.

    Stage widths are per core per cycle; the paper's analytical model uses
    width 1 everywhere ("we assume each pipeline stage manipulates a single
    instruction").
    """

    n_cores: int = 8
    #: cycles between a fork's fetch and the new section's first fetch
    section_create_latency: int = 2
    #: one-way message latency between two different cores (per hop for
    #: the mesh topology)
    noc_latency: int = 1
    #: NoC topology: "uniform" (flat core-to-core latency, the paper's
    #: accounting) or "mesh" (2D mesh, XY routing, DMH port at a corner)
    topology: str = "uniform"
    #: extra cycles to read a line from the data memory hierarchy (the
    #: loader-installed image) when a renaming request walks off the oldest
    #: section
    dmh_latency: int = 1
    #: per-stage throughput (instructions per cycle per core)
    fetch_width: int = 1
    rename_width: int = 1
    execute_width: int = 1
    addr_rename_width: int = 1
    memory_width: int = 1
    retire_width: int = 1
    #: section placement policy: "round_robin", "least_loaded", "same_core"
    #: or "random"
    placement: str = "round_robin"
    placement_seed: int = 12345
    #: enable the paper's stack shortcut (statement ii in Section 4.2):
    #: memory renaming requests for addresses at or above the requester's
    #: stack pointer skip sections at a deeper call level.  Safe only for
    #: programs that never pass addresses of stack locals down the call
    #: tree (the paper's compiler-controlled stack discipline).
    stack_shortcut: bool = False
    #: memory line size in bytes for DMH replies (paper footnote 5: full
    #: lines are fetched and cached along the return path)
    line_bytes: int = 64
    #: **deprecated** (since API v2) — use ``kernel=`` instead.  True runs
    #: the event-driven fast path, False the reference loop; None — the
    #: new default — means "derive from kernel".  Passing an explicit
    #: bool still works for one release (it selects event/naive and
    #: emits a DeprecationWarning); after ``__post_init__`` the field
    #: always holds a concrete bool so the wire format is unchanged.
    event_driven: Optional[bool] = None
    #: record the per-cycle core-state timeline (fetching / computing /
    #: blocked / parked) into ``SimResult.trace``; opt-in because a run of
    #: C cycles on N cores stores C*N state codes
    trace: bool = False
    #: collect per-core and per-section occupancy histograms (cheap:
    #: per-core counters plus bulk accounting over parked spans)
    collect_occupancy: bool = True
    #: structured event tracing (:mod:`repro.obs`): record typed events
    #: (section fork/start/complete, renaming request issue/hop/fill, NoC
    #: send/deliver, DMH reads, retirement, core park/wake) into
    #: ``SimResult.events`` and fold the stall-cause attribution into
    #: ``SimResult.stall_causes``.  Implies occupancy + per-cycle state
    #: collection; near-zero overhead when off (every instrumentation
    #: point is one ``tracer is None`` test).  Both scheduler modes emit
    #: identical streams.
    events: bool = False
    #: simulation budget; exceeding it raises (deadlock guard)
    max_cycles: int = 2_000_000
    #: deterministic fault-injection plan (:mod:`repro.faults`); None —
    #: the default — runs the perfect machine, bit-identical to every
    #: pinned golden result
    faults: Optional[FaultPlan] = None
    #: simulation kernel: "naive" (reference every-core-every-cycle loop),
    #: "event" (park/wake fast path) or "vector" (struct-of-arrays sweeps,
    #: :mod:`repro.sim.vectorized`).  All three are bit-identical on every
    #: compared SimResult field (tests/sim/test_differential_vector.py).
    #: None — the default — derives the kernel from ``event_driven`` for
    #: backward compatibility; an explicit kernel overrides and re-syncs
    #: ``event_driven`` so old call sites keep observing a coherent pair.
    kernel: Optional[str] = None
    #: run the analysis-driven assembly optimizer
    #: (:func:`repro.analysis.opt.optimize_program` — fork-mask-aware
    #: dead-store elimination + copy propagation) over the program at
    #: load time.  Architectural results (outputs, return value, final
    #: memory) are proven bit-identical across all three kernels,
    #: fault-free and under chaos plans; committed cycles drop.  Off by
    #: default so every pinned golden cycle count stays exact.
    optimize: bool = False
    #: cycle-domain metrics (:mod:`repro.obs.metrics`): fold windowed
    #: time-series (retire rate, running/parked cores, fork/redispatch
    #: rates, request-queue depth, per-link NoC traffic and drop/retry
    #: counts) into ``SimResult.metrics``, one sample window every this
    #: many cycles.  Derived post-hoc from bit-identical run artifacts,
    #: so all three kernels emit identical series.  None — the default —
    #: disables collection and keeps every existing output (goldens,
    #: cache keys, BENCH cycles) byte-identical.
    metrics_window: Optional[int] = None
    #: capture a full-state snapshot (:mod:`repro.snapshot`) at the top
    #: of each listed cycle; the captures land on ``Processor.
    #: checkpoints`` in cycle order.  Labels past the end of the run
    #: collapse into one final-state snapshot.  None — the default —
    #: keeps the run loops checkpoint-free and (elided from the wire
    #: form) every pre-existing cache key byte-identical.
    checkpoint_cycles: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.event_driven is not None and self.kernel is None:
            # Legacy call sites predate the three-kernel selector; keep
            # them working one release, but steer toward kernel=.  A
            # payload that carries both (every to_dict round trip does)
            # is the kernel's own emission, not a legacy caller — silent.
            warnings.warn(
                "SimConfig(event_driven=...) is deprecated; use "
                "kernel='event'/'naive' (API v2)", DeprecationWarning,
                stacklevel=3)
        if self.kernel is None:
            self.kernel = ("naive" if self.event_driven is False
                           else "event")
            self.event_driven = self.kernel != "naive"
        elif self.kernel not in ("naive", "event", "vector"):
            raise ValueError("unknown kernel %r (expected naive, event or "
                             "vector)" % (self.kernel,))
        else:
            self.event_driven = self.kernel != "naive"
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.placement not in ("round_robin", "least_loaded", "same_core",
                                  "random"):
            raise ValueError("unknown placement %r" % (self.placement,))
        for name in ("fetch_width", "rename_width", "execute_width",
                     "addr_rename_width", "memory_width", "retire_width"):
            if getattr(self, name) < 1:
                raise ValueError("%s must be >= 1" % name)
        if self.line_bytes < 8 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two >= 8")
        if self.topology not in ("uniform", "mesh"):
            raise ValueError("unknown topology %r" % (self.topology,))
        if self.metrics_window is not None and self.metrics_window < 1:
            raise ValueError("metrics_window must be >= 1 (got %r)"
                             % (self.metrics_window,))
        if self.checkpoint_cycles is not None:
            cycles = tuple(sorted({int(c) for c in self.checkpoint_cycles}))
            if not cycles:
                raise ValueError("checkpoint_cycles must be non-empty "
                                 "when set (use None to disable)")
            if cycles[0] < 1:
                raise ValueError("checkpoint_cycles must be >= 1 (got %r)"
                                 % (cycles[0],))
            self.checkpoint_cycles = cycles
        if self.faults is not None:
            self.faults.validate(self.n_cores)

    # -- canonical serialization -----------------------------------------
    #
    # The dict form is the config's *wire format*: the batch runner
    # (:mod:`repro.runner`) digests it for content-addressed cache keys
    # and ships it to pool workers, and ``repro batch`` job specs embed
    # it verbatim.  Round-tripping must therefore be exact and unknown
    # keys must be rejected, not ignored — a key the receiver does not
    # understand would otherwise silently change what a cache key means.

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form; :meth:`from_dict` round-trips it.

        Every field is emitted (no default elision) so the digest of the
        serialized form changes whenever any knob changes, including a
        knob newly added with a default — with three deliberate
        exceptions: ``metrics_window`` is elided when None, ``optimize``
        when False, and ``checkpoint_cycles`` when None.  These knobs
        postdate deployed content-addressed caches, and their disabled
        defaults must keep every pre-existing cache key (a sha256 over
        this dict) byte-identical.  A *set* value is emitted, and should
        be: metrics and checkpoints ride inside payloads, and an
        optimized run commits different cycle counts, so the key must
        fork.
        """
        payload: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name in ("metrics_window", "checkpoint_cycles") \
                    and value is None:
                continue
            if spec.name == "optimize" and not value:
                continue
            if spec.name == "checkpoint_cycles":
                value = list(value)     # tuples are not JSON-native
            payload[spec.name] = (value.to_dict()
                                  if isinstance(value, FaultPlan) else value)
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimConfig":
        """Inverse of :meth:`to_dict`: rejects unknown keys, rebuilds the
        nested :class:`~repro.faults.models.FaultPlan`, and re-runs full
        validation via ``__init__``."""
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SimulationError("unknown SimConfig keys: %s"
                                  % ", ".join(unknown))
        kwargs: Dict[str, Any] = dict(data)
        if kwargs.get("faults") is not None:
            kwargs["faults"] = FaultPlan.from_dict(kwargs["faults"])
        return cls(**kwargs)


#: Configuration of the paper's Figure 10 experiment: five cores, one
#: section each, unit-width stages.
def figure10_config(n_cores: int = 5) -> SimConfig:
    return SimConfig(n_cores=n_cores, placement="round_robin",
                     stack_shortcut=False)
