"""The many-core processor: cores, section order, renaming traffic, DMH.

The processor owns the *total order of sections* (the paper: "the sections
are totally ordered.  New sections are inserted in place in the list of
existing sections, possibly in parallel, building the sequential trace of
the run").  A fork inserts the new section immediately after its creator,
which — because a resume point follows everything its callee descent will
ever produce — reconstructs exactly the sequential trace order.

Renaming requests walk this order backward (see :mod:`repro.sim.requests`);
walking off the oldest end reads the architectural state: initial register
values and the loader-installed data memory hierarchy.
"""

from __future__ import annotations

import heapq
import random
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:   # pragma: no cover - cycle guard (snapshot imports sim)
    from ..snapshot import Snapshot

from ..errors import SimulationError
from ..faults.recovery import FaultEngine
from ..isa.program import HALT_ADDR, Program, STACK_TOP, WORD
from ..isa.registers import ALL_REGS, FORK_COPIED_REGS, STACK_POINTER
from ..machine.executor import MASK
from ..obs.events import EventTrace, synthesize_core_events
from ..obs.stalls import attribute_stalls, stall_diagnostic
from .cells import Cell, DynInstr
from .config import SimConfig
from .core import Core
from .noc import make_noc
from .requests import RenameRequest
from .section import SectionState, initial_root_fregs
from .stats import (BLOCKED, CORE_STATES, PARKED, STATE_CODES, SimResult,
                    occupancy_counts)


class Processor:
    """Simulates a program on the distributed core design."""

    #: Core class instantiated per core id — subclass hook (the vectorized
    #: kernel substitutes :class:`repro.sim.vectorized.VectorCore`)
    core_cls = Core

    def __init__(self, program: Program, config: Optional[SimConfig] = None,
                 initial_regs: Optional[Dict[str, int]] = None,
                 copied_regs=FORK_COPIED_REGS):
        self.program = program
        self.cfg = config or SimConfig()
        self.copied_regs = frozenset(copied_regs)
        # Mirror BaseMachine's startup exactly: registers zero (plus caller
        # overrides), then the halt sentinel pushed below the stack top.
        self.initial_regs = {name: 0 for name in ALL_REGS}
        self.initial_regs[STACK_POINTER] = STACK_TOP
        if initial_regs:
            for name, value in initial_regs.items():
                self.initial_regs[name] = value & MASK
        sentinel_addr = (self.initial_regs[STACK_POINTER] - WORD) & MASK
        self.initial_regs[STACK_POINTER] = sentinel_addr
        #: the data memory hierarchy: loader image + the halt sentinel
        self.dmh: Dict[int, int] = dict(program.data)
        self.dmh[sentinel_addr] = HALT_ADDR & MASK

        self.noc = make_noc(self.cfg.topology, self.cfg.n_cores,
                            self.cfg.noc_latency)
        #: structured event stream (repro.obs); None keeps the hot paths
        #: at a single is-None test per instrumentation point
        self.tracer = EventTrace() if self.cfg.events else None
        #: cycle-domain metrics (repro.obs.metrics): derived post-hoc in
        #: _result() from bit-identical artifacts, never sampled in the
        #: run loops — the only way the cycle-skipping kernels can emit
        #: the same series as the naive one
        self.metrics_on = self.cfg.metrics_window is not None
        # stall attribution consumes occupancy states, so tracing forces
        # their collection (the per-cycle timeline stays internal unless
        # cfg.trace also asks for it in the result); windowed metrics
        # need the same per-cycle states
        self.occupancy_on = (self.cfg.collect_occupancy or self.cfg.events
                             or self.metrics_on)
        self.cores = self._make_cores()
        if self.cfg.trace or self.cfg.events or self.metrics_on:
            for core in self.cores:
                core.trace_states = []
        #: per-link transfer log (cycle, src, dst, latency) — one entry
        #: per NoC record_transfer plus the DMH port replies (src -1);
        #: feeds derive_cycle_metrics
        self.metrics_hops: Optional[List[Tuple[int, int, int, int]]] = (
            [] if self.metrics_on else None)
        #: fault-event log (cycle, kind, src, dst) appended by the
        #: FaultEngine (drop/retry/redispatch); duck-typed there via
        #: getattr so repro.faults keeps its no-sim-import rule
        self.metrics_faults: Optional[List[Tuple[int, str, int, int]]] = (
            [] if self.metrics_on else None)
        self.sections: List[SectionState] = []
        self.order: List[SectionState] = []
        #: bumped whenever a fork renumbers the total order — cores use it
        #: to invalidate their cached IQ/LSQ sort order
        self.order_epoch = 0
        self.requests: List[RenameRequest] = []
        #: event-driven bookkeeping: requests not yet done (same relative
        #: order as self.requests), open-section count, time-wake heap
        self._pending: List[RenameRequest] = []
        self._open_sections = 0
        self._timewakes: List[Tuple[int, int]] = []
        self.cycle = 0
        #: architectural register state of all folded (fully retired
        #: oldest) sections — "the oldest section dumps its renamings"
        self.arch_regs: Dict[str, int] = dict(self.initial_regs)
        #: sections order[0:folded_upto] have been dumped to arch_regs/dmh
        self.folded_upto = 0
        self._rng = random.Random(self.cfg.placement_seed)
        self._rr_next = 1 % self.cfg.n_cores
        #: snapshots captured at cfg.checkpoint_cycles (repro.snapshot),
        #: in cycle order; _pending_checkpoints is the not-yet-captured
        #: cursor the run loops poll (one truthiness test per cycle)
        self.checkpoints: List["Snapshot"] = []
        self._pending_checkpoints: List[int] = (
            sorted(self.cfg.checkpoint_cycles)
            if self.cfg.checkpoint_cycles else [])
        #: set by repro.snapshot.capture_prefix: abandon the run (raise
        #: _CaptureDone) once every checkpoint is captured, so a
        #: capture-only caller never pays for the suffix
        self._abort_after_checkpoints = False
        #: fault injection + recovery (repro.faults); None — the default —
        #: keeps every hook at a single is-None test
        self.fault_engine: Optional[FaultEngine] = (
            FaultEngine(self, self.cfg.faults)
            if self.cfg.faults is not None else None)

        root = self._new_section(
            sid=1, start_ip=program.entry, core_id=0,
            fregs=initial_root_fregs(self.initial_regs), depth=0,
            created_cycle=0, first_fetch_cycle=1)
        self.sections.append(root)
        self.order.append(root)
        self.cores[0].hosted.append(root)
        self.cores[0].open_secs.append(root)
        self._open_sections = 1

    # -- subclass hooks (repro.sim.vectorized) -------------------------

    def _make_cores(self) -> List[Core]:
        return [self.core_cls(i, self) for i in range(self.cfg.n_cores)]

    def _new_section(self, **kwargs) -> SectionState:
        return SectionState(**kwargs)

    def section_event(self, sec: SectionState) -> None:
        """A request-visible state component of *sec* changed (fetch_done,
        stores_pending, renamed_count, ARQ head, MAAT line install).  Only
        the vectorized kernel registers section waiters, so ``req_waiters``
        is always None here and every call site guards on it."""

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        if self.cfg.event_driven:
            self._run_event()
        else:
            self._run_naive()
        return self._result()

    def _run_naive(self) -> None:
        """Reference scheduler: tick every core every cycle.  Kept as the
        bit-exact baseline the event-driven fast path is tested against."""
        engine = self.fault_engine
        while not self._finished():
            self.cycle += 1
            if self.cycle > self.cfg.max_cycles:
                raise SimulationError(
                    "cycle budget exhausted at cycle %d: %s"
                    % (self.cycle, self._stall_diagnostic()))
            if self._pending_checkpoints:
                self._take_checkpoints(self.cycle)
            self._advance_fold()
            if engine is not None:
                engine.begin_cycle(self.cycle)
            self._process_requests(self.cycle)
            for core in self.cores:
                if not core.dead:
                    core.cycle(self.cycle)

    def _run_event(self) -> None:
        """Event-driven fast path: run only awake cores, step only pending
        requests, and jump over cycles in which provably nothing happens.
        Produces the same per-cycle state evolution as :meth:`_run_naive`
        — skipped core-cycles and skipped whole cycles are exactly those
        the naive loop would execute as no-ops."""
        cores = self.cores
        engine = self.fault_engine
        while not self._finished_event():
            self.cycle += 1
            now = self.cycle
            if now > self.cfg.max_cycles:
                raise SimulationError(
                    "cycle budget exhausted at cycle %d: %s"
                    % (now, self._stall_diagnostic()))
            if self._pending_checkpoints:
                self._take_checkpoints(now)
            self._advance_fold()
            if engine is not None:
                engine.begin_cycle(now)
            self._process_pending(now)
            if self._timewakes:
                self._wake_due(now)
            for core in cores:
                # A core unparked mid-loop (by a fill from an earlier
                # core) runs this same cycle, exactly like the naive
                # loop; one unparked by a *later* core runs next cycle.
                if not core.parked:
                    core.cycle(now)
                    core.maybe_park(now)
            if (all(core.parked for core in cores)
                    and not self._finished_event()):
                nxt = self._next_event_cycle(now)
                if nxt > now + 1:
                    self.cycle = min(nxt, self.cfg.max_cycles + 1) - 1

    def _take_checkpoints(self, now: int) -> None:
        """Capture every pending checkpoint whose cycle has fully elapsed.

        Called at the loop top of cycle *now*, i.e. at the *end* of cycle
        ``now - 1``, so a label ``k`` captures the machine after cycle
        ``k`` completed — resuming it re-enters the loop at ``k + 1``,
        exactly where the cold run is about to go.  A label landing
        inside an all-parked cycle jump is materialized here with the
        counter rewritten: the skipped cycles are provably no-ops, so
        the labelled state is the state the naive loop would have had.
        """
        from ..snapshot import Snapshot, _CaptureDone   # lazy: cycle
        pending = self._pending_checkpoints
        while pending and pending[0] <= now - 1:
            label = pending.pop(0)
            self.checkpoints.append(Snapshot.capture(self, cycle=label))
        if not pending and self._abort_after_checkpoints:
            raise _CaptureDone()

    def _flush_checkpoints(self) -> None:
        """Collapse checkpoint labels at or past the run's end into one
        final-state snapshot (captured before the final fold, so a
        resume replays _result() bit-identically)."""
        from ..snapshot import Snapshot
        self._pending_checkpoints = []
        self.checkpoints.append(Snapshot.capture(self))

    def _advance_fold(self) -> None:
        """Dump completed oldest sections into the architectural state (the
        paper's footnote 6), bounding how far renaming requests walk."""
        while (self.folded_upto < len(self.order)
               and self.order[self.folded_upto].complete):
            section = self.order[self.folded_upto]
            if any(isinstance(e, Cell) and not e.ready
                   for e in section.fregs.values()):
                return      # an import still in flight; fold later
            for reg, entry in section.fregs.items():
                self.arch_regs[reg] = (entry.value if isinstance(entry, Cell)
                                       else entry)
            for addr, cell in section.maat.items():
                if not cell.is_import:
                    self.dmh[addr] = cell.value
            self.folded_upto += 1

    def _finished(self) -> bool:
        if not self.sections[0].fetch_started and self.cycle == 0:
            return False
        return (all(sec.complete for sec in self.sections)
                and all(req.done for req in self.requests))

    # ------------------------------------------------------------------
    # event-driven scheduler machinery
    # ------------------------------------------------------------------

    def _finished_event(self) -> bool:
        """O(pending) termination test equivalent to :meth:`_finished`,
        using the open-section counter maintained at completion."""
        if self.cycle == 0:
            return False
        if self._open_sections:
            return False
        return all(req.done for req in self._pending)

    def section_completed(self, section: SectionState, core, now: int) -> None:
        """Called by the retire stage at the pop that completes *section*:
        maintain the open-section working sets and occupancy record."""
        if section.completed_cycle is not None:
            return
        section.completed_cycle = now
        core.open_secs.remove(section)
        self._open_sections -= 1
        if self.tracer is not None:
            self.tracer.emit(now, "section_complete", sid=section.sid,
                             core=core.id)

    def _process_pending(self, now: int) -> None:
        """Step every not-yet-done request (same relative order as the
        naive full-history scan) and compact the pending list."""
        if not self._pending:
            return
        alive: List[RenameRequest] = []
        for req in self._pending:
            if req.done:
                continue
            self._step_request(req, now)
            if not req.done:
                alive.append(req)
        self._pending = alive

    def schedule_wake(self, cycle: int, core) -> None:
        heapq.heappush(self._timewakes, (cycle, core.id))

    def _wake_due(self, now: int) -> None:
        while self._timewakes and self._timewakes[0][0] <= now:
            _, core_id = heapq.heappop(self._timewakes)
            self.cores[core_id].wake()

    def _next_event_cycle(self, now: int) -> int:
        """Earliest future cycle at which anything can happen, given that
        every core is parked.  Conservative: a request in an immediately
        evaluable state pins the next cycle to ``now + 1`` (no skip); a
        request waiting on an unfilled producer cell cannot progress until
        a core wakes, so it imposes no bound of its own."""
        nxt: Optional[int] = None
        if self.fault_engine is not None:
            # never jump over a scheduled fail-stop
            nxt = self.fault_engine.next_scheduled(now)
        if self._timewakes:
            cand = self._timewakes[0][0]
            if nxt is None or cand < nxt:
                nxt = cand
        for req in self._pending:
            if req.done:
                continue
            if req.reply_cycle is not None:
                cand = req.reply_cycle
            elif req.hit_cell is not None:
                if not req.hit_cell.ready:
                    continue
                cand = now + 1
            elif req.wake_cycle > now:
                cand = req.wake_cycle
            else:
                cand = now + 1
            if nxt is None or cand < nxt:
                nxt = cand
            if nxt <= now + 1:
                return now + 1
        if nxt is None:
            # Nothing can ever happen again: jump straight to the cycle
            # budget so the deadlock diagnostic fires exactly as in the
            # naive loop.
            return self.cfg.max_cycles + 1
        return max(nxt, now + 1)

    # ------------------------------------------------------------------
    # section creation (fork)
    # ------------------------------------------------------------------

    def fork_section(self, parent: SectionState, dyn: DynInstr,
                     now: int) -> SectionState:
        existing = parent.fork_children.get(dyn.index)
        if existing is not None:
            # Fail-stop replay refetching a fork it already executed: the
            # child exists (and may long since have completed) — re-use it
            # instead of inserting a duplicate section.
            return self.sections[existing - 1]
        snapshot = {}
        for reg in self.copied_regs:
            entry = parent.fregs.get(reg)
            if entry is None:
                raise SimulationError(
                    "section %d forked with copied register %s empty"
                    % (parent.sid, reg))
            snapshot[reg] = entry
        core_id = self._place(parent)
        sec = self._new_section(
            sid=len(self.sections) + 1,
            start_ip=dyn.instr.addr + 1,
            core_id=core_id,
            fregs=snapshot,
            depth=parent.fetch_depth,
            created_cycle=now,
            first_fetch_cycle=now + self.cfg.section_create_latency + 1,
            parent_sid=parent.sid,
            created_at_index=dyn.index,
        )
        sec.created_by_loop = dyn.instr.opcode == "forkloop"
        self.sections.append(sec)
        position = parent.order_index + 1
        self.order.insert(position, sec)
        for index in range(position, len(self.order)):
            self.order[index].order_index = index
        self.order_epoch += 1
        target = self.cores[core_id]
        target.hosted.append(sec)
        target.open_secs.append(sec)
        self._open_sections += 1
        if target.parked:
            # Schedule the time wake; the naive loop would classify the
            # target as blocked from the cycle it can first observe the
            # new section at its slot (this cycle if the forking core
            # runs earlier in core order, next cycle otherwise).
            self.schedule_wake(sec.first_fetch_cycle, target)
            visible = now if parent.core_id < core_id else now + 1
            if (target._blocked_from is None
                    or visible < target._blocked_from):
                target._blocked_from = visible
        parent.fork_children[dyn.index] = sec.sid
        if self.tracer is not None:
            self.tracer.emit(now, "section_fork", parent=parent.sid,
                             child=sec.sid, core=core_id,
                             first_fetch=sec.first_fetch_cycle)
        return sec

    def _place(self, parent: SectionState) -> int:
        policy = self.cfg.placement
        engine = self.fault_engine
        if policy == "same_core":
            core_id = parent.core_id
            if engine is not None and engine.any_dead:
                # a replayed section's "same core" may be the dead one
                core_id = engine.live_core_from(core_id)
            return core_id
        if policy == "random":
            core_id = self._rng.randrange(self.cfg.n_cores)
            if engine is not None and engine.any_dead:
                core_id = engine.live_core_from(core_id)
            return core_id
        if policy == "least_loaded":
            # open_secs tracks exactly the incomplete hosted sections
            if engine is not None and engine.any_dead:
                return engine.pick_live_core().id
            loads = [len(core.open_secs) for core in self.cores]
            return loads.index(min(loads))
        # round robin
        core_id = self._rr_next
        self._rr_next = (self._rr_next + 1) % self.cfg.n_cores
        if engine is not None and engine.any_dead:
            core_id = engine.live_core_from(core_id)
        return core_id

    # ------------------------------------------------------------------
    # renaming requests
    # ------------------------------------------------------------------

    def send_reg_request(self, sec: SectionState, reg: str, cell: Cell,
                         now: int) -> None:
        req = RenameRequest(
            kind="reg", requester=sec, dest_cell=cell, reg=reg,
            rid=len(self.requests),
            before=sec, cur_core=sec.core_id, issued_cycle=now,
            wake_cycle=now + 1)
        self.requests.append(req)
        self._pending.append(req)
        if self.tracer is not None:
            self.tracer.emit(now, "request_issue", rid=req.rid, kind="reg",
                             sid=sec.sid, core=sec.core_id, what=reg)

    def send_mem_request(self, sec: SectionState, addr: int, cell: Cell,
                         now: int) -> None:
        use_shortcut = False
        depth = sec.depth
        if self.cfg.stack_shortcut:
            rsp = sec.freg_value(STACK_POINTER)
            if rsp is not None and addr >= rsp:
                use_shortcut = True
        req = RenameRequest(
            kind="mem", requester=sec, dest_cell=cell, addr=addr,
            rid=len(self.requests),
            use_shortcut=use_shortcut, requester_depth=depth,
            before=sec, cut_child=sec, cur_core=sec.core_id,
            issued_cycle=now, wake_cycle=now + 1)
        self.requests.append(req)
        self._pending.append(req)
        if self.tracer is not None:
            self.tracer.emit(now, "request_issue", rid=req.rid, kind="mem",
                             sid=sec.sid, core=sec.core_id, what=addr)

    def _hop(self, src_core: int, dst_core: int, now: int,
             req: Optional[RenameRequest] = None) -> int:
        if src_core == dst_core:
            return 0
        latency = self.noc.latency(src_core, dst_core)
        if self.fault_engine is not None:
            latency = self.fault_engine.perturb_hop(
                src_core, dst_core, now, latency,
                req.rid if req is not None else -1,
                req.requester.sid if req is not None else 0)
        self.noc.record_transfer(latency)
        if self.metrics_hops is not None:
            self.metrics_hops.append((now, src_core, dst_core, latency))
        if self.tracer is not None:
            self.tracer.emit(now, "noc_send", src=src_core, dst=dst_core,
                             latency=latency)
            self.tracer.emit(now + latency, "noc_deliver", src=src_core,
                             dst=dst_core)
        return latency

    def _walk_pred(self, req: RenameRequest,
                   before: SectionState) -> Optional[SectionState]:
        """Current total-order predecessor of *before*; None once the walk
        reaches folded (architecturally dumped) sections."""
        index = before.order_index - 1
        if index < self.folded_upto:
            return None
        return self.order[index]

    def _process_requests(self, now: int) -> None:
        for req in self.requests:
            if req.done:
                continue
            self._step_request(req, now)

    def _fill_dest(self, req: RenameRequest, now: int) -> None:
        """Deliver the answer into the requester's import cell.  A memory
        fill changes the requester's MAAT-pending-import state, which the
        vectorized kernel's parked requests may be waiting on."""
        req.dest_cell.fill(req.value, now)
        req.done = True
        if req.kind == "mem" and req.requester.req_waiters is not None:
            self.section_event(req.requester)
        if self.tracer is not None:
            self.tracer.emit(now, "request_fill", rid=req.rid,
                             sid=req.requester.sid, value=req.value)

    def _step_request(self, req: RenameRequest, now: int
                      ) -> "Union[SectionState, Cell, None]":
        """Advance *req* one cycle.

        The return value is a *park descriptor* for the vectorized
        kernel's lazy request scheduler: the :class:`SectionState` whose
        final-state condition the request is waiting on, the pending
        line-import :class:`Cell` it is coalescing behind, or None (any
        other state — progressing, timed, waiting on ``hit_cell``, done).
        The naive and event schedulers ignore it.
        """
        tracer = self.tracer
        # reply in flight
        if req.reply_cycle is not None:
            if now >= req.reply_cycle:
                if req.line_values:
                    req.dest_cell.fill(req.value, now)
                    req.done = True
                    self._install_line(req, now)
                    if req.requester.req_waiters is not None:
                        self.section_event(req.requester)
                    if tracer is not None:
                        tracer.emit(now, "request_fill", rid=req.rid,
                                    sid=req.requester.sid, value=req.value)
                else:
                    self._fill_dest(req, now)
            return None
        # waiting for the producer's value
        if req.hit_cell is not None:
            if req.hit_cell.ready:
                req.value = req.hit_cell.value
                delay = self._hop(req.producer_core, req.requester.core_id,
                                  now, req)
                if delay == 0:
                    self._fill_dest(req, now)
                else:
                    req.reply_cycle = now + delay
                    if tracer is not None:
                        tracer.emit(now, "request_reply", rid=req.rid,
                                    src=req.producer_core,
                                    dst=req.requester.core_id,
                                    arrive=req.reply_cycle)
            return None
        if now < req.wake_cycle:
            return None
        if req.use_shortcut:
            return self._step_shortcut_request(req, now)
        # (re)route to the current predecessor of `before` — sections may
        # have been inserted between the parked position and the requester
        pred = self._walk_pred(req, req.before)
        if pred is None:
            self._answer_architectural(req, now)
            return None
        if pred is not req.at_section:
            src_core = req.cur_core
            hops = self._hop(src_core, pred.core_id, now, req)
            req.at_section = pred
            req.cur_core = pred.core_id
            req.hops += 1
            if tracer is not None:
                tracer.emit(now, "request_hop", rid=req.rid, src=src_core,
                            dst=pred.core_id, sid=pred.sid, wait=hops)
            if hops:
                req.wake_cycle = now + hops
                return None
            # same core: fall through, the lookup proceeds this cycle
        pred = req.at_section
        # parked at `pred`: answer only from final state
        if req.kind == "reg":
            if not pred.fetch_done:
                return pred
            entry = pred.fregs.get(req.reg)
        else:
            if not pred.mem_final:
                return pred
            entry = pred.maat.get(req.addr)
            if req.line_clean:
                if self._line_touched(pred, req.addr):
                    req.line_clean = False
                else:
                    if req.visited is None:
                        req.visited = []
                    req.visited.append(pred)
        if entry is None:
            if req.kind == "mem":
                cell = self._pending_line_import(pred, req.addr)
                if cell is not None:
                    # A walk for the same memory line is already in flight
                    # through this section: coalesce (MSHR-style) — once
                    # that import fills, the line lands here and we hit
                    # locally.
                    req.wake_cycle = now + 1
                    return cell
            # miss: hop to the next predecessor right away (one cycle per
            # section visited — "the renaming request travels from section
            # to section until a producer is found")
            req.before = pred
            nxt = self._walk_pred(req, pred)
            if nxt is None:
                self._answer_architectural(req, now)
                return None
            req.at_section = nxt
            src_core = req.cur_core
            hop = self._hop(src_core, nxt.core_id, now, req)
            req.cur_core = nxt.core_id
            req.hops += 1
            wait = max(hop, 1)
            req.wake_cycle = now + wait
            if tracer is not None:
                tracer.emit(now, "request_hop", rid=req.rid, src=src_core,
                            dst=nxt.core_id, sid=nxt.sid, wait=wait)
            return None
        if isinstance(entry, Cell):
            req.hit_cell = entry
            req.producer_core = pred.core_id
            req.producer_sid = pred.sid
            if tracer is not None:
                tracer.emit(now, "request_hit", rid=req.rid, sid=pred.sid,
                            core=pred.core_id)
        else:
            req.value = entry
            req.producer_sid = pred.sid
            delay = self._hop(pred.core_id, req.requester.core_id, now, req)
            req.reply_cycle = now + max(delay, 1)
            if tracer is not None:
                tracer.emit(now, "request_hit", rid=req.rid, sid=pred.sid,
                            core=pred.core_id)
                tracer.emit(now, "request_reply", rid=req.rid,
                            src=pred.core_id, dst=req.requester.core_id,
                            arrive=req.reply_cycle)
        return None

    def _install_line(self, req: RenameRequest, now: int) -> None:
        """Cache the DMH line along the return path: the requester and
        every visited section get ready import cells in their MAATs, so
        later requests for neighbouring words hit close by.  Sound because
        the clean-line walk proved no earlier section touched the line
        (and visited sections are fetch-complete, so no new forks can
        insert writers behind them)."""
        holders = [req.requester] + (req.visited or [])
        for section in holders:
            for word, value in req.line_values:
                if word in section.maat:
                    continue
                cell = Cell(origin="s%d:line:%x" % (section.sid, word),
                            is_import=True)
                cell.fill(value, now)
                section.maat[word] = cell
            if section.req_waiters is not None:
                self.section_event(section)

    def _pending_line_import(self, section, addr: int) -> Optional[Cell]:
        """*section*'s first not-yet-filled import cell for addr's line,
        if any (the vectorized kernel parks coalescing requests on it)."""
        base = addr & ~(self.cfg.line_bytes - 1)
        for word in range(base, base + self.cfg.line_bytes, WORD):
            cell = section.maat.get(word)
            if cell is not None and cell.is_import and not cell.ready:
                return cell
        return None

    def _line_touched(self, section, addr: int) -> bool:
        """Does *section*'s MAAT hold any word of addr's memory line
        (other than addr itself)?"""
        base = addr & ~(self.cfg.line_bytes - 1)
        for word in range(base, base + self.cfg.line_bytes, WORD):
            if word != addr and word in section.maat:
                return True
        return False

    def _step_shortcut_request(self, req: RenameRequest, now: int
                               ) -> Optional[SectionState]:
        """Stack-shortcut walk: query the creator chain against pre-fork
        cuts (see :mod:`repro.sim.requests`).  Returns the section the
        request parked on (a park descriptor for the vectorized kernel's
        lazy scheduler), or None."""
        if req.at_section is None:
            child = req.cut_child
            if child.parent_sid == 0:
                self._answer_architectural(req, now)
                return None
            parent = self.sections[child.parent_sid - 1]
            # Loop links invalidate the cut (-1): see below.
            req.cut_index = -1 if child.created_by_loop else child.created_at_index
            req.at_section = parent
            req.hops += 1
            src_core = req.cur_core
            hops = self._hop(src_core, parent.core_id, now, req)
            req.cur_core = parent.core_id
            wait = max(hops, 1)
            req.wake_cycle = now + wait
            if self.tracer is not None:
                self.tracer.emit(now, "request_hop", rid=req.rid,
                                 src=src_core, dst=parent.core_id,
                                 sid=parent.sid, wait=wait)
            return None
        section = req.at_section
        if req.cut_index < 0:
            # The link crossed was a forkloop: the parent's post-fork flow
            # (the loop body) shares the requester's frame, so its stores
            # count — wait for the whole section to be memory-final.
            if not section.mem_final:
                return section
        else:
            # Call link: answerable once every pre-cut store has been
            # address-renamed.  All pre-cut instructions are fetched (the
            # fork ran), so renaming plus the in-order ARQ give the cut.
            if section.renamed_count <= req.cut_index:
                return section
            if section.arq and section.arq[0].index < req.cut_index:
                return section
        entry = section.maat.get(req.addr)
        if entry is None:
            req.cut_child = section
            req.at_section = None
            return None
        req.hit_cell = entry
        req.producer_core = section.core_id
        req.producer_sid = section.sid
        if self.tracer is not None:
            self.tracer.emit(now, "request_hit", rid=req.rid,
                             sid=section.sid, core=section.core_id)
        return None

    def _answer_architectural(self, req: RenameRequest, now: int) -> None:
        """The walk fell off the oldest live section: read the architectural
        state (initial values plus everything folded so far)."""
        port = self.noc.dmh_latency_from(req.requester.core_id)
        self.noc.dmh_reads += 1
        if req.kind == "reg":
            req.value = self.arch_regs.get(req.reg, 0)
            delay = port
        else:
            req.value = self.dmh.get(req.addr, 0)
            delay = self.cfg.dmh_latency + port
            # Full-line reply (paper: "the hardware can access full cache
            # lines instead of single words and cache the accessed lines
            # along the return path", footnote 5): when the walk proved no
            # earlier section touched the line, the requester caches the
            # neighbouring words, so neighbour sections reading t[i+1]
            # find them one hop away instead of walking back to the DMH.
            if req.line_clean and not req.use_shortcut:
                base = req.addr & ~(self.cfg.line_bytes - 1)
                req.line_values = [
                    (word, self.dmh.get(word, 0))
                    for word in range(base, base + self.cfg.line_bytes, WORD)]
        if self.fault_engine is not None:
            # the DMH port is link endpoint -1 for fault purposes
            delay = self.fault_engine.perturb_hop(
                -1, req.requester.core_id, now, delay, req.rid,
                req.requester.sid)
        if self.metrics_hops is not None:
            self.metrics_hops.append((now, -1, req.requester.core_id, delay))
        req.reply_cycle = now + max(delay, 1)
        if self.tracer is not None:
            self.tracer.emit(now, "request_dmh", rid=req.rid,
                             core=req.requester.core_id,
                             arrive=req.reply_cycle)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def final_state(self) -> Tuple[Dict[str, int], Dict[int, int]]:
        """Architectural registers and memory after completion: fold every
        section's end state in total order (the paper's successive "oldest
        section dumps its renamings to the DMH")."""
        regs = dict(self.initial_regs)
        memory = dict(self.dmh)
        for sec in self.order:
            for reg, entry in sec.fregs.items():
                regs[reg] = entry.value if isinstance(entry, Cell) else entry
            for addr, cell in sec.maat.items():
                if not cell.is_import:
                    memory[addr] = cell.value
        return regs, memory

    def outputs(self) -> List[int]:
        out: List[Tuple[int, int, int]] = []
        for sec in self.order:
            for index, value in sec.outs:
                out.append((sec.order_index, index, value))
        out.sort()
        return [value for _, _, value in out]

    def all_instructions(self) -> List[DynInstr]:
        result: List[DynInstr] = []
        for sec in self.order:
            result.extend(sec.instructions)
        return result

    def _result(self) -> SimResult:
        if self._pending_checkpoints:
            self._flush_checkpoints()
        self._advance_fold()      # the final sections complete on the last
        regs, memory = self.final_state()   # cycle, after the cycle's fold
        instrs = self.all_instructions()
        fetch_end = max((d.timing.fd for d in instrs), default=0)
        retire_end = max((d.timing.ret for d in instrs
                          if d.timing.ret is not None), default=0)
        for core in self.cores:     # flush still-parked occupancy spans
            if core._span_start is not None:
                core._close_span(self.cycle)
        core_occupancy = ([occupancy_counts(core.occ) for core in self.cores]
                          if self.occupancy_on else [])
        section_occupancy = (self._section_occupancy()
                             if self.occupancy_on else {})
        trace = None
        if self.cfg.trace:
            trace = ["".join(STATE_CODES[s] for s in core.trace_states)
                     for core in self.cores]
        events = None
        stall_causes = None
        if self.tracer is not None:
            self.tracer.events.extend(synthesize_core_events(
                [core.trace_states for core in self.cores],
                CORE_STATES, (BLOCKED, PARKED)))
            self.tracer.events.sort(key=lambda e: e[0])  # stable: keeps
            events = self.tracer.events                  # emission order
            stall_causes = attribute_stalls(self)
        metrics = None
        if self.metrics_on:
            from ..obs.metrics import derive_cycle_metrics
            metrics = derive_cycle_metrics(self, self.cfg.metrics_window)
        return SimResult(
            cycles=self.cycle,
            instructions=len(instrs),
            sections=len(self.sections),
            outputs=self.outputs(),
            final_regs=regs,
            final_memory=memory,
            fetch_end=fetch_end,
            retire_end=retire_end,
            fetch_computed=sum(core.fetch_computed for core in self.cores),
            requests=len(self.requests),
            request_hops=sum(req.hops for req in self.requests),
            per_core_instructions=[core.fetched for core in self.cores],
            request_latencies=[
                req.dest_cell.ready_cycle - req.issued_cycle
                for req in self.requests
                if req.done and req.dest_cell.ready_cycle is not None],
            scheduler=self.cfg.kernel,
            core_occupancy=core_occupancy,
            section_occupancy=section_occupancy,
            noc_stats=self.noc.stats(),
            trace=trace,
            events=events,
            stall_causes=stall_causes,
            fault_stats=(self.fault_engine.stats.as_dict()
                         if self.fault_engine is not None else None),
            metrics=metrics,
        )

    def _section_occupancy(self) -> Dict[int, Dict[str, int]]:
        """Per-section lifetime histogram: cycles with a fetch vs cycles
        spent blocked between creation and completion."""
        histogram: Dict[int, Dict[str, int]] = {}
        for sec in self.sections:
            completed = (sec.completed_cycle if sec.completed_cycle
                         is not None else self.cycle)
            lifetime = max(completed - sec.created_cycle, 0)
            histogram[sec.sid] = {
                "core": sec.core_id,
                "created": sec.created_cycle,
                "completed": completed,
                "fetch_cycles": sec.fetch_cycles,
                "blocked_cycles": max(lifetime - sec.fetch_cycles, 0),
            }
        return histogram

    def _stall_diagnostic(self) -> str:
        return stall_diagnostic(self)

    # -- presentation -------------------------------------------------------

    def timing_table(self) -> str:
        """Figure 10: one block per core, stage cycles per instruction."""
        blocks: List[str] = []
        for core in self.cores:
            hosted = sorted(core.hosted, key=lambda s: s.order_index)
            if not any(sec.instructions for sec in hosted):
                continue
            lines = ["core %d pipeline" % (core.id + 1),
                     "%-8s %5s %5s %5s %5s %5s %5s" % (
                         "", "fd", "rr", "ew", "ar", "ma", "ret")]
            for sec in hosted:
                for dyn in sec.instructions:
                    cells = ["%5s" % ("" if v is None else v)
                             for v in dyn.timing.row()]
                    lines.append("%-8s %s  %s" % (
                        "%d-%d" % (sec.order_index + 1, dyn.index + 1),
                        " ".join(cells), dyn.instr))
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)


def simulate(program: Program, config: Optional[SimConfig] = None,
             initial_regs: Optional[Dict[str, int]] = None,
             resume_from: Optional["Snapshot"] = None) -> Tuple[SimResult, Processor]:
    """Run *program* on the simulated many-core; returns (result, processor)
    so callers can inspect per-instruction timing.  ``config.kernel``
    selects the simulation kernel; all three are bit-identical on every
    compared result field.

    ``resume_from`` continues a :class:`~repro.snapshot.Snapshot` instead
    of starting cold; program and config are then validated against the
    snapshot's provenance (see :func:`repro.snapshot.resume`) and
    ``initial_regs`` must be None — the captured state already holds
    them."""
    cfg = config or SimConfig()
    if cfg.optimize:
        # imported lazily: repro.analysis is a consumer of this package
        from ..analysis.opt import optimize_program
        program = optimize_program(program).program
    if resume_from is not None:
        from ..snapshot import resume as _resume
        if initial_regs:
            raise SimulationError(
                "initial_regs cannot be overridden when resuming from a "
                "snapshot — the captured state already holds them")
        # pass the caller's config (not the fabricated default) so a
        # bare resume validates only what was actually specified
        return _resume(resume_from, program=program, config=config)
    if cfg.kernel == "vector":
        # imported lazily: vectorized depends on this module (and numpy)
        from .vectorized import VectorProcessor
        proc: Processor = VectorProcessor(program, config=cfg,
                                          initial_regs=initial_regs)
    else:
        proc = Processor(program, config=cfg, initial_regs=initial_regs)
    result = proc.run()
    return result, proc
