"""Per-section state: the unit of distribution in the paper's model.

A section owns

* its *fetch register file* ``fregs`` — the paper's Figure 8 RF with
  full/empty bits.  An entry maps a register to a plain int (value known at
  fetch time), to a :class:`~repro.sim.cells.Cell` (renamed destination not
  yet produced) or is absent (empty: never written in this section and not
  copied at the fork);
* its register import table (the paper's "destination d serves as a caching
  of the missing source");
* its MAAT — Memory Address Alias Table — mapping word addresses to renamed
  memory cells (stores and cached imports);
* its ROB (in-order retirement) and the per-section ARQ discipline.

At ``fetch_done`` (endfork fetched), ``fregs`` *is* the end-of-section
register state that successor sections' renaming requests resolve against.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..isa.registers import ALL_REGS
from .cells import Cell, DynInstr

FetchValue = Union[int, Cell]


class SectionState:
    """One section, hosted on one core."""

    def __init__(self, sid: int, start_ip: int, core_id: int,
                 fregs: Dict[str, FetchValue], depth: int,
                 created_cycle: int, first_fetch_cycle: int,
                 parent_sid: int = 0, created_at_index: int = -1):
        self.sid = sid                      #: creation id (stable)
        self.order_index = 0                #: rank in the total order
        self.start_ip = start_ip
        self.core_id = core_id
        self.depth = depth                  #: call level at section start
        self.parent_sid = parent_sid
        #: index (in the parent) of the fork that created this section —
        #: the "cut": parent instructions before it are this section's
        #: logical past at the same call level
        self.created_at_index = created_at_index
        #: created by ``forkloop``: the parent's post-fork flow (the loop
        #: body) shares this section's stack frame, so renaming shortcuts
        #: may not cut it away
        self.created_by_loop = False
        self.created_cycle = created_cycle
        self.first_fetch_cycle = first_fetch_cycle

        self.ip: Optional[int] = start_ip   #: None = fetch stalled/finished
        self.fregs: Dict[str, FetchValue] = dict(fregs)
        #: the section-entry architectural snapshot (the fork-copied
        #: registers, by value or pending cell) — re-dispatch after a
        #: fail-stop restarts from exactly this state (repro.faults)
        self.entry_fregs: Dict[str, FetchValue] = dict(fregs)
        #: fork dedupe for replay: instruction index -> child sid already
        #: created by a previous incarnation of this section
        self.fork_children: Dict[int, int] = {}
        #: unfilled destination cells of a dead incarnation, keyed by
        #: ("r", index, reg) / ("m", index, addr); the replay re-uses them
        #: so consumers holding references are eventually filled
        self.replay_cells: Optional[Dict[tuple, Cell]] = None
        self.imports: Dict[str, Cell] = {}
        self.maat: Dict[int, Cell] = {}
        self.rob: Deque[DynInstr] = deque()
        self.instructions: List[DynInstr] = []
        self.renamed_count = 0
        self.arq: Deque[DynInstr] = deque()

        self.fetch_started = False
        self.fetch_done = False
        #: cycle at which ``complete`` first became true (observability;
        #: detected at the retirement that empties the ROB)
        self.completed_cycle: Optional[int] = None
        #: number of distinct cycles in which this section fetched
        self.fetch_cycles = 0
        self._last_fetch_cycle = -1
        self.fetch_depth = depth            #: call level at the fetch point
        self.waiting_control: Optional[DynInstr] = None
        self.stores_pending = 0             #: stores fetched, not yet renamed
        self.outs: List[Tuple[int, int]] = []   #: (index, value) from out
        self.ends_program = False           #: section fetched hlt / sentinel
        #: renaming requests parked on this section's final-state
        #: conditions, registered only by the vectorized kernel's lazy
        #: request scheduler (:mod:`repro.sim.vectorized`); None keeps
        #: every notify site at a single attribute test.  Survives
        #: redispatch_reset: a waiter's condition simply re-arms when the
        #: replayed incarnation reaches it again.
        self.req_waiters: Optional[list] = None

    # -- fetch-time register file access -----------------------------------

    def freg_value(self, reg: str) -> Optional[int]:
        """The register's value if available *right now* at the fetch
        stage, else None (pending cell or empty)."""
        entry = self.fregs.get(reg)
        if entry is None:
            return None
        if isinstance(entry, Cell):
            return entry.value          # None while pending
        return entry

    def freg_binding(self, reg: str) -> Optional[FetchValue]:
        """Raw fetch-RF entry: int, Cell, or None when empty."""
        return self.fregs.get(reg)

    # -- status -----------------------------------------------------------

    @property
    def complete(self) -> bool:
        return (self.fetch_done
                and self.renamed_count == len(self.instructions)
                and not self.rob)

    @property
    def mem_final(self) -> bool:
        """May this section answer "no store to that address"?  Only once
        every one of its stores has gone through address renaming."""
        return self.fetch_done and self.stores_pending == 0

    # -- fail-stop recovery (repro.faults) ---------------------------------

    def redispatch_reset(self, core_id: int, first_fetch_cycle: int) -> None:
        """Restart this section from its entry snapshot on *core_id*.

        Sound by single-assignment renaming: the section's execution is a
        pure function of ``entry_fregs`` and its renaming-request answers,
        so the replay reproduces the dead incarnation's values.  The dead
        incarnation's *unfilled* destination cells are stashed so the
        replay fills the very objects external consumers already
        reference; its filled cells stay valid forever (single
        assignment).  Identity (sid, order_index, parent links) and
        ``fork_children`` survive — the replay re-uses already-created
        children instead of forking duplicates.
        """
        # A second death mid-replay must keep the first stash's unconsumed
        # cells alive (consumed ones were popped at re-creation, so the
        # key sets are disjoint).
        replay: Dict[tuple, Cell] = (dict(self.replay_cells)
                                     if self.replay_cells is not None else {})
        for dyn in self.instructions:
            for reg, cell in dyn.dest_cells.items():
                if not cell.ready:
                    replay[("r", dyn.index, reg)] = cell
            mem = dyn.mem_dest_cell
            if mem is not None and not mem.ready:
                replay[("m", dyn.index, dyn.addr_value)] = mem
        self.replay_cells = replay
        self.core_id = core_id
        self.first_fetch_cycle = first_fetch_cycle
        self.ip = self.start_ip
        self.fregs = dict(self.entry_fregs)
        self.imports = {}
        self.maat = {}
        self.rob.clear()
        self.instructions = []
        self.renamed_count = 0
        self.arq.clear()
        self.fetch_started = False
        self.fetch_done = False
        self.fetch_cycles = 0
        self._last_fetch_cycle = -1
        self.fetch_depth = self.depth
        self.waiting_control = None
        self.stores_pending = 0
        self.outs = []
        self.ends_program = False

    def describe(self) -> str:
        return ("section %d (core %d, start=%d, depth=%d, %d instrs%s)"
                % (self.sid, self.core_id, self.start_ip, self.depth,
                   len(self.instructions),
                   ", done" if self.complete else ""))


def initial_root_fregs(regs: Dict[str, int]) -> Dict[str, FetchValue]:
    """The root section starts with every architectural register full."""
    return {name: regs.get(name, 0) for name in ALL_REGS}
