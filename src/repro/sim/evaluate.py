"""Pure evaluation of one instruction for the simulator's three compute
sites: the fetch-stage ALU (register-only instructions with full sources),
the execute stage (register-only instructions from the IQ), and the memory
stage (instructions with a renamed memory source and/or destination).

All three call :func:`evaluate`; memory instructions additionally pass the
loaded value (for memory sources) and receive the value to store (for
memory destinations).  The arithmetic itself is delegated to
:mod:`repro.machine.executor`, so the simulator cannot drift from the
functional machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..errors import SimulationError
from ..isa.instructions import CONDITION_CODES, Instruction
from ..isa.operands import Imm, Mem, Reg
from ..isa.registers import FLAGS
from ..machine import executor
from ..machine.executor import MASK


@dataclass
class EvalResult:
    """Architectural effects of one instruction."""

    reg_writes: Dict[str, int] = field(default_factory=dict)
    mem_value: Optional[int] = None       #: value stored (when is_store)
    taken: Optional[bool] = None          #: branch outcome
    next_ip: Optional[int] = None         #: resolved control target
    out_value: Optional[int] = None


def effective_address(mem: Mem, value_of: Callable[[str], int]) -> int:
    addr = mem.disp
    if mem.base is not None:
        addr += value_of(mem.base)
    if mem.index is not None:
        addr += value_of(mem.index) * mem.scale
    return addr & MASK


def evaluate(instr: Instruction, value_of: Callable[[str], int],
             loaded: Optional[int] = None) -> EvalResult:
    """Compute *instr*'s effects.

    ``value_of`` supplies register source values (including rflags).
    ``loaded`` is the value of the renamed memory source for instructions
    that read memory; instructions that write memory get the stored value
    in ``EvalResult.mem_value``.  Control transfers report ``taken`` and
    ``next_ip`` (``None`` next_ip for a not-taken branch means fall
    through; ret reports the loaded return target).
    """
    op = instr.opcode
    kind = instr.kind
    result = EvalResult()

    def operand_value(operand) -> int:
        if isinstance(operand, Imm):
            return operand.value & MASK
        if isinstance(operand, Reg):
            return value_of(operand.name)
        if isinstance(operand, Mem):
            if loaded is None:
                raise SimulationError(
                    "memory source of %s evaluated without a loaded value"
                    % instr)
            return loaded
        raise SimulationError("bad operand %r" % (operand,))

    def write_dest(value: int, flags: Optional[int]) -> None:
        dest = instr.operands[-1]
        if isinstance(dest, Reg):
            result.reg_writes[dest.name] = value & MASK
        else:
            result.mem_value = value & MASK
        if flags is not None:
            result.reg_writes[FLAGS] = flags

    if op == "mov":
        write_dest(operand_value(instr.operands[0]), None)
    elif op in ("add", "sub", "and", "or", "xor", "imul"):
        src = operand_value(instr.operands[0])
        dst = operand_value(instr.operands[1])
        value, flags = executor.binary_result(op, src, dst)
        write_dest(value, flags)
    elif op in ("cmp", "test"):
        src = operand_value(instr.operands[0])
        dst = operand_value(instr.operands[1])
        result.reg_writes[FLAGS] = executor.compare_flags(op, src, dst)
    elif op in ("inc", "dec", "neg", "not"):
        value, flags = executor.unary_result(
            op, operand_value(instr.operands[0]), value_of(FLAGS)
            if instr.info.reads_flags else 0)
        write_dest(value, flags)
    elif op in ("shl", "shr", "sar"):
        if len(instr.operands) == 1:
            count, target = 1, instr.operands[0]
        else:
            count = operand_value(instr.operands[0])
            target = instr.operands[1]
        value, flags = executor.shift_result(op, operand_value(target), count)
        if isinstance(target, Reg):
            result.reg_writes[target.name] = value
        else:
            result.mem_value = value
        result.reg_writes[FLAGS] = flags
    elif op == "lea":
        mem = instr.operands[0]
        result.reg_writes[instr.operands[1].name] = effective_address(
            mem, value_of)
    elif op == "cqo":
        result.reg_writes["rdx"] = executor.cqo_result(value_of("rax"))
    elif op == "idiv":
        quotient, remainder = executor.idiv_result(
            value_of("rax"), value_of("rdx"),
            operand_value(instr.operands[0]))
        result.reg_writes["rax"] = quotient
        result.reg_writes["rdx"] = remainder
    elif op == "out":
        result.out_value = operand_value(instr.operands[0])
    elif op == "nop":
        pass
    elif op == "jmp":
        result.taken = True
        result.next_ip = instr.target
    elif kind == "jcc":
        taken = executor.condition_holds(CONDITION_CODES[op], value_of(FLAGS))
        result.taken = taken
        result.next_ip = instr.target if taken else None
    elif op == "push":
        result.mem_value = operand_value(instr.operands[0])
    elif op == "pop":
        result.reg_writes[instr.operands[0].name] = loaded & MASK
    elif op == "call":
        result.mem_value = (instr.addr + 1) & MASK
        result.next_ip = instr.target
    elif op == "ret":
        result.next_ip = loaded
    else:
        raise SimulationError("evaluate: unhandled opcode %r" % op)
    return result
