"""Cycle-level simulator of the paper's distributed core design (Section 4).

Quick use::

    from repro.sim import SimConfig, simulate
    from repro.paper import sum_forked_program, paper_array

    result, proc = simulate(sum_forked_program(paper_array(5)),
                            SimConfig(n_cores=5))
    print(result.describe())
    print(proc.timing_table())      # the paper's Figure 10
"""

from .cells import Cell, DynInstr, Timing
from .config import SimConfig, figure10_config
from .core import Core
from .noc import MeshNoc, UniformNoc, make_noc
from .processor import Processor, simulate
from .requests import RenameRequest
from .section import SectionState
from .stats import CORE_STATES, STATE_CODES, SimResult, request_latency_stats

__all__ = [
    "CORE_STATES", "Cell", "Core", "DynInstr", "MeshNoc", "Processor",
    "RenameRequest", "STATE_CODES", "SectionState", "SimConfig", "SimResult",
    "Timing", "UniformNoc", "figure10_config", "make_noc",
    "request_latency_stats", "simulate",
]
