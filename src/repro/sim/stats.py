"""Simulation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..machine.executor import to_signed


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    cycles: int                       #: total cycles to completion
    instructions: int                 #: dynamic instructions
    sections: int                     #: sections created
    outputs: List[int]                #: out-instruction values, total order
    final_regs: Dict[str, int]
    final_memory: Dict[int, int]
    fetch_end: int                    #: cycle of the last fetch
    retire_end: int                   #: cycle of the last retirement
    fetch_computed: int               #: instructions computed at fetch
    requests: int                     #: renaming requests issued
    request_hops: int                 #: section-to-section hops walked
    per_core_instructions: List[int] = field(default_factory=list)
    #: issue-to-fill latency of every resolved renaming request, in cycles
    request_latencies: List[int] = field(default_factory=list, repr=False)

    def request_latency_stats(self) -> Dict[str, float]:
        """min/mean/p50/p90/max of renaming-request latencies."""
        lat = sorted(self.request_latencies)
        if not lat:
            return {"count": 0, "min": 0, "mean": 0.0, "p50": 0, "p90": 0,
                    "max": 0}
        return {
            "count": len(lat),
            "min": lat[0],
            "mean": sum(lat) / len(lat),
            "p50": lat[len(lat) // 2],
            "p90": lat[(len(lat) * 9) // 10],
            "max": lat[-1],
        }

    @property
    def fetch_ipc(self) -> float:
        return self.instructions / self.fetch_end if self.fetch_end else 0.0

    @property
    def retire_ipc(self) -> float:
        return self.instructions / self.retire_end if self.retire_end else 0.0

    @property
    def return_value(self) -> int:
        return self.final_regs.get("rax", 0)

    @property
    def signed_outputs(self) -> List[int]:
        return [to_signed(v) for v in self.outputs]

    def describe(self) -> str:
        return ("%d instructions / %d sections in %d cycles "
                "(fetch %d cycles = %.2f IPC, retire %d cycles = %.2f IPC)"
                % (self.instructions, self.sections, self.cycles,
                   self.fetch_end, self.fetch_ipc,
                   self.retire_end, self.retire_ipc))
