"""Simulation results and cycle-level observability.

Beyond the headline numbers (cycles, IPC, renaming traffic), a run can
carry two observability layers built on the same wake machinery as the
event-driven scheduler:

* **occupancy histograms** — for every core, how many cycles it spent in
  each of four states (``fetching`` / ``computing`` / ``blocked`` /
  ``parked``), and for every section, how many cycles it fetched versus
  sat blocked between creation and completion.  Collected by default
  (:attr:`repro.sim.SimConfig.collect_occupancy`); both scheduler modes
  produce identical histograms;
* **the per-cycle trace** — the full core-state timeline, one state code
  per core per cycle (:attr:`repro.sim.SimConfig.trace`, opt-in).

``python -m repro stats FILE --json`` exports everything machine-readably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..machine.executor import to_signed

#: per-cycle core states, in the order used by the compact trace encoding
CORE_STATES = ("fetching", "computing", "blocked", "parked")
#: one-character codes for the per-cycle trace strings
STATE_CODES = "FCBP"
#: indices into CORE_STATES (the hot-loop representation)
FETCHING, COMPUTING, BLOCKED, PARKED = range(4)


def _rank(n: int, pct: int) -> int:
    """Nearest-rank index of percentile *pct* in a sorted list of *n*.

    ``ceil(n * pct / 100) - 1``, computed in integers (a float ``ceil``
    suffers representation error, e.g. ``0.99 * 100 != 99``), clamped to
    the valid range — so p90 of 10 samples is the 9th value, never an
    out-of-order overshoot to the max.
    """
    return max(0, min(n - 1, (n * pct + 99) // 100 - 1))


def request_latency_stats(latencies: List[int]) -> Dict[str, float]:
    """min/mean/p50/p90/p99/max summary of a list of request latencies.

    Percentiles use the nearest-rank convention (the smallest value with at
    least ``pct`` percent of the samples at or below it), so ``p50`` of a
    single element is that element and all-equal inputs report that value
    everywhere.  An empty input yields an all-zero summary with
    ``count == 0``.
    """
    lat = sorted(latencies)
    if not lat:
        return {"count": 0, "min": 0, "mean": 0.0, "p50": 0, "p90": 0,
                "p99": 0, "max": 0}
    n = len(lat)
    return {
        "count": n,
        "min": lat[0],
        "mean": sum(lat) / n,
        "p50": lat[_rank(n, 50)],
        "p90": lat[_rank(n, 90)],
        "p99": lat[_rank(n, 99)],
        "max": lat[-1],
    }


def occupancy_counts(raw: List[int]) -> Dict[str, int]:
    """Turn a 4-slot counter vector into a named histogram.  ``int()``
    normalizes numpy scalars from the vectorized kernel's occupancy rows
    so results stay ``json.dump``-able."""
    return {name: int(raw[i]) for i, name in enumerate(CORE_STATES)}


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    cycles: int                       #: total cycles to completion
    instructions: int                 #: dynamic instructions
    sections: int                     #: sections created
    outputs: List[int]                #: out-instruction values, total order
    final_regs: Dict[str, int]
    final_memory: Dict[int, int]
    fetch_end: int                    #: cycle of the last fetch
    retire_end: int                   #: cycle of the last retirement
    fetch_computed: int               #: instructions computed at fetch
    requests: int                     #: renaming requests issued
    request_hops: int                 #: section-to-section hops walked
    per_core_instructions: List[int] = field(default_factory=list)
    #: issue-to-fill latency of every resolved renaming request, in cycles
    request_latencies: List[int] = field(default_factory=list, repr=False)
    #: which scheduler produced this result: "event" or "naive"
    scheduler: str = "event"
    #: per-core state histogram: one {state: cycles} dict per core; empty
    #: when collect_occupancy was off
    core_occupancy: List[Dict[str, int]] = field(default_factory=list,
                                                 repr=False)
    #: per-section occupancy keyed by sid: created / completed cycle,
    #: distinct fetch cycles, and blocked cycles over the lifetime
    section_occupancy: Dict[int, Dict[str, int]] = field(default_factory=dict,
                                                         repr=False)
    #: NoC traffic: {"messages", "hop_cycles", "dmh_reads"}
    noc_stats: Dict[str, int] = field(default_factory=dict, repr=False)
    #: opt-in per-cycle timeline: one string per core, one state code per
    #: cycle ("F" fetching, "C" computing, "B" blocked, "P" parked)
    trace: Optional[List[str]] = field(default=None, repr=False)
    #: structured event stream (:mod:`repro.obs.events` tuples); None
    #: unless the run had :attr:`repro.sim.SimConfig.events` on
    events: Optional[list] = field(default=None, repr=False)
    #: stall-cause attribution (:func:`repro.obs.stalls.attribute_stalls`):
    #: {"causes", "totals", "per_core", "per_section"}; None without events
    stall_causes: Optional[dict] = field(default=None, repr=False)
    #: fault-injection / recovery counters
    #: (:class:`repro.faults.recovery.FaultStats`); None unless the run
    #: carried a :attr:`repro.sim.SimConfig.faults` plan — keeping
    #: fault-free JSON exports byte-identical to pre-faults goldens
    fault_stats: Optional[Dict[str, int]] = field(default=None, repr=False)
    #: windowed cycle-domain metrics
    #: (:func:`repro.obs.metrics.derive_cycle_metrics`); None unless the
    #: run set :attr:`repro.sim.SimConfig.metrics_window` — keeping
    #: metric-free JSON exports byte-identical to older goldens.  Derived
    #: post-hoc from bit-identical artifacts, so all three kernels carry
    #: identical dicts.
    metrics: Optional[dict] = field(default=None, repr=False)

    def request_latency_stats(self) -> Dict[str, float]:
        """min/mean/p50/p90/max of renaming-request latencies."""
        return request_latency_stats(self.request_latencies)

    def occupancy_summary(self) -> Dict[str, float]:
        """Fraction of core-cycles spent in each state across all cores."""
        totals = {name: 0 for name in CORE_STATES}
        for histogram in self.core_occupancy:
            for name in CORE_STATES:
                totals[name] += histogram.get(name, 0)
        grand = sum(totals.values())
        if not grand:
            return {name: 0.0 for name in CORE_STATES}
        return {name: totals[name] / grand for name in CORE_STATES}

    @property
    def fetch_ipc(self) -> float:
        return self.instructions / self.fetch_end if self.fetch_end else 0.0

    @property
    def retire_ipc(self) -> float:
        return self.instructions / self.retire_end if self.retire_end else 0.0

    @property
    def return_value(self) -> int:
        return self.final_regs.get("rax", 0)

    @property
    def signed_outputs(self) -> List[int]:
        return [to_signed(v) for v in self.outputs]

    def describe(self) -> str:
        return ("%d instructions / %d sections in %d cycles "
                "(fetch %d cycles = %.2f IPC, retire %d cycles = %.2f IPC)"
                % (self.instructions, self.sections, self.cycles,
                   self.fetch_end, self.fetch_ipc,
                   self.retire_end, self.retire_ipc))

    def to_json_dict(self, include_memory: bool = False,
                     include_trace: bool = False,
                     include_events: bool = False) -> dict:
        """Machine-readable export for benchmark scripts and the
        ``repro stats --json`` CLI.  ``final_memory`` is summarized (size
        only) unless *include_memory*; the per-cycle trace rides along only
        when *include_trace* and the run recorded one; likewise the raw
        event stream under *include_events*.  ``stall_causes`` is always
        exported when the run attributed stalls."""
        payload = {
            "scheduler": self.scheduler,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "sections": self.sections,
            "outputs": self.outputs,
            "fetch_end": self.fetch_end,
            "retire_end": self.retire_end,
            "fetch_ipc": self.fetch_ipc,
            "retire_ipc": self.retire_ipc,
            "fetch_computed": self.fetch_computed,
            "requests": self.requests,
            "request_hops": self.request_hops,
            "per_core_instructions": self.per_core_instructions,
            "request_latency": self.request_latency_stats(),
            "final_regs": self.final_regs,
            "final_memory_words": len(self.final_memory),
            "return_value": self.return_value,
            "core_occupancy": self.core_occupancy,
            "occupancy_summary": self.occupancy_summary(),
            "section_occupancy": {str(sid): entry for sid, entry
                                  in self.section_occupancy.items()},
            "noc": self.noc_stats,
        }
        if self.stall_causes is not None:
            payload["stall_causes"] = {
                "causes": self.stall_causes["causes"],
                "totals": self.stall_causes["totals"],
                "per_core": self.stall_causes["per_core"],
                "per_section": {str(sid): entry for sid, entry
                                in self.stall_causes["per_section"].items()},
            }
        if self.fault_stats is not None:
            payload["fault_stats"] = self.fault_stats
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        if include_memory:
            payload["final_memory"] = {str(addr): value for addr, value
                                       in sorted(self.final_memory.items())}
        if include_trace and self.trace is not None:
            payload["trace"] = self.trace
        if include_events and self.events is not None:
            from ..obs.events import events_to_json
            payload["events"] = events_to_json(self.events)
        return payload
