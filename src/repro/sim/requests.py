"""Backward renaming requests: the paper's RRRU/ARRU/RERU/MERU traffic.

A consumer section that cannot rename a source locally sends a request that
travels *backward* along the total section order until it finds the
producer ("The renaming request travels from section to section until a
producer is found").  A section can only answer soundly about its final
state, so a request parks at a section until that section is *final* for
the requested kind:

* registers: the section's fetch is done (``fregs`` is the end state);
* memory: fetch done *and* every store address renamed (``mem_final``).

On a hit the request then waits for the value to be produced and a reply
message carries it home; on a miss it hops to the predecessor.  Falling off
the oldest end of the order reads the architectural state (initial
registers / the data memory hierarchy), which the paper phrases as "the
oldest section dumps its renamings to the DMH".

The optional stack shortcut (Section 4.2, statement ii — "stack pointer
based variables with a positive offset benefit from a shortcut eliminating
instructions belonging to a call level deeper than the consumer") is
implemented as a walk of the *creator chain*: a request for a stack word at
or above the requester's frame queries each ancestor section directly, and
only against the portion of that ancestor *before* the fork that leads to
the requester (the *cut*).  Such a request is answerable as soon as the
ancestor has address-renamed its pre-cut stores — long before its fetch
completes — which is what lets sections fetch past frame-variable branches
without waiting for whole callee descents.  The shortcut assumes the
compiler's stack discipline (no callee writes the caller's frame), so it is
opt-in (:attr:`repro.sim.SimConfig.stack_shortcut`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .cells import Cell
from .section import SectionState


@dataclass
class RenameRequest:
    """One in-flight backward request (register or memory)."""

    kind: str                     #: "reg" or "mem"
    requester: SectionState
    dest_cell: Cell               #: the requester's import cell to fill
    #: issue-order id (index into ``Processor.requests``) — keys the
    #: structured event stream's request_* records
    rid: int = -1
    reg: str = ""                 #: kind == "reg"
    addr: int = -1                #: kind == "mem"
    use_shortcut: bool = False
    requester_depth: int = 0

    #: the walk queries the predecessor of this section next
    before: Optional[SectionState] = None
    #: stack-shortcut walk: the child section whose creating fork defines
    #: the cut in the next queried ancestor
    cut_child: Optional[SectionState] = None
    #: index in ``at_section`` before which the producer must lie
    cut_index: int = -1
    #: section currently being queried; None = between hops
    at_section: Optional[SectionState] = None
    #: core the request currently sits on (hop-latency bookkeeping)
    cur_core: int = 0
    #: cycle the consumer issued the request
    issued_cycle: int = 0
    #: earliest cycle this request may make progress (models hop latency)
    wake_cycle: int = 0
    #: once a hit is found, the cell whose value we wait for
    hit_cell: Optional[Cell] = None
    producer_core: int = 0
    #: sid of the section that answered (observability; -1 = architectural)
    producer_sid: int = -1
    #: the answer, once known
    value: Optional[int] = None
    #: no visited section touched the requested address's line: the DMH
    #: may reply with the full line for the requester to cache
    line_clean: bool = True
    #: (addr, value) pairs of the line's other words, from a DMH reply
    line_values: Optional[list] = None
    #: sections visited by a clean-line walk — the "return path" that
    #: caches the line (paper footnote 5)
    visited: Optional[list] = None
    #: cycle at which the reply lands back in the requester's core
    reply_cycle: Optional[int] = None
    done: bool = False
    hops: int = 0

    def describe(self) -> str:  # pragma: no cover - debugging aid
        what = self.reg if self.kind == "reg" else hex(self.addr)
        where = ("s%d" % self.at_section.sid) if self.at_section else "DMH"
        return "req %s %s from s%d at %s" % (self.kind, what,
                                             self.requester.sid, where)
