"""Vectorized struct-of-arrays simulation kernel (``kernel="vector"``).

The naive kernel ticks every core every cycle; the event kernel parks
cores and skips provably idle cycles but still *steps every pending
renaming request every cycle* — a profile of the Table 1 workloads at 256
cores shows that polling loop dominating (radixsort: 4 million
``_step_request`` calls for 3,204 requests).  This kernel restructures
the whole-chip scheduler state as struct-of-arrays numpy tables and makes
both sweeps lazy:

* **core sweep** — one ``awake`` bool vector for the whole chip;
  ``np.flatnonzero`` yields exactly the runnable cores, and a binary heap
  carries mid-pass wakes (a core woken by a lower-id core runs the same
  cycle, preserving the event kernel's slot semantics);
* **request sweep** — requests are stepped only when something they wait
  on can have changed: a time heap for NoC replies and self-scheduled
  hops, cell waiters for producer values, and *section waiters* (tagged
  conditions evaluated by :meth:`VectorProcessor.section_event` at every
  state-flip notify site) for final-state parks;
* **register files** — per-section full/empty/pending state and 64-bit
  values live in one growable ``(rows, 17)`` numpy table
  (:class:`RegTable`), written through on every fetch-RF update, so
  whole-chip queries (final-state assembly, full/empty censuses) are
  array sweeps instead of dict walks;
* **occupancy** — the per-core four-state histograms fold into one
  ``(n_cores, 4)`` int64 matrix at result assembly.  The per-cycle
  increment itself stays a plain list add: a numpy scalar ``+= 1`` per
  busy core-cycle would cost more than the rest of the accounting.

Scalar escapes (kept deliberately out of the arrays): the IQ/LSQ/ROB/ARQ
object structures and the :class:`~repro.sim.cells.Cell` graph — the
single-assignment wake fabric — and the per-section fetch IPs, which
migrate across cores under fault redispatch.  See DESIGN.md §4.11.

Bit-identity: every step this kernel executes is a step the event kernel
executes at the same cycle, and every step it *skips* is one the event
kernel executes as a pure no-op (a parked-state re-check that mutates
nothing and emits nothing).  The three-way differential harness
(tests/sim/test_differential_vector.py) asserts identical results, event
streams and fault statistics across all three kernels.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..errors import SimulationError
from ..isa.program import Program
from ..isa.registers import ALL_REGS, FORK_COPIED_REGS
from .cells import Cell, DynInstr
from .config import SimConfig
from .core import Core
from .processor import Processor
from .requests import RenameRequest
from .section import SectionState

#: column index of every architectural location in the register table
REG_INDEX: Dict[str, int] = {name: i for i, name in enumerate(ALL_REGS)}

#: register-table state codes: absent (never written / not copied),
#: full (64-bit value in the values plane), pending (bound to an
#: unfilled cell at write time)
EMPTY, FULL, PENDING = 0, 1, 2

#: park-condition tags for section waiters; tuple tags carry an argument
Tag = Union[str, Tuple[str, int]]


class RegTable:
    """Growable struct-of-arrays backing store for fetch register files.

    One row per section incarnation; 17 columns (16 GPRs + rflags).  The
    ``state`` plane holds the full/empty/pending bit per location, the
    ``values`` plane the 64-bit value for FULL entries.  Values are
    stored pre-masked to ``[0, 2**64)`` so ``uint64`` is exact; numpy 2.x
    raises ``OverflowError`` on any out-of-range store, which turns a
    masking bug into a loud failure instead of silent truncation.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self.rows = 0
        self.state = np.zeros((capacity, len(ALL_REGS)), dtype=np.int8)
        self.values = np.zeros((capacity, len(ALL_REGS)), dtype=np.uint64)

    def alloc(self) -> int:
        """Allocate a zeroed row (doubling growth); returns its index."""
        if self.rows == self.capacity:
            self.capacity *= 2
            self.state = np.concatenate([self.state,
                                         np.zeros_like(self.state)])
            self.values = np.concatenate([self.values,
                                          np.zeros_like(self.values)])
        row = self.rows
        self.rows += 1
        return row

    def full_empty_census(self) -> Tuple[int, int, int]:
        """Whole-table (empty, full, pending) location counts — one
        vectorized sweep over every live section's register file."""
        state = self.state[:self.rows]
        return (int((state == EMPTY).sum()), int((state == FULL).sum()),
                int((state == PENDING).sum()))


class RegFileSoA(dict):
    """A fetch register file backed by one :class:`RegTable` row.

    Scalar reads stay plain ``dict`` reads (the fetch stage's binding
    loop is the hottest scalar path in the simulator); every mutation is
    written through to the table's state/values planes.  A PENDING entry
    records "bound to an unfilled cell at write time" — cells are
    single-assignment, so a later fill never rebinds the name and the
    dict entry stays authoritative for the cell object itself.
    """

    __slots__ = ("table", "row")

    def __init__(self, table: RegTable, row: int,
                 init: Dict[str, Any]) -> None:
        dict.__init__(self)
        self.table = table
        self.row = row
        for reg, entry in init.items():
            self[reg] = entry

    def __setitem__(self, reg: str, entry: Any) -> None:
        dict.__setitem__(self, reg, entry)
        col = REG_INDEX[reg]
        if isinstance(entry, Cell):
            value = entry.value
            if value is None:
                self.table.state[self.row, col] = PENDING
                self.table.values[self.row, col] = 0
            else:
                self.table.state[self.row, col] = FULL
                self.table.values[self.row, col] = value
        else:
            self.table.state[self.row, col] = FULL
            self.table.values[self.row, col] = entry

    def __delitem__(self, reg: str) -> None:
        dict.__delitem__(self, reg)
        col = REG_INDEX[reg]
        self.table.state[self.row, col] = EMPTY
        self.table.values[self.row, col] = 0

    def update(self, *args: Any, **kwargs: Any) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def __reduce__(self) -> Tuple[Any, ...]:
        # Default dict-subclass pickling replays items through
        # __setitem__ before the __slots__ are restored.  Rebuild
        # explicitly instead: the table planes serialize on their own
        # (and stay shared via the pickle memo), so items restore raw.
        return (_restore_regfile, (self.table, self.row, dict(self)))


def _restore_regfile(table: RegTable, row: int,
                     items: Dict[str, Any]) -> "RegFileSoA":
    """Unpickle helper for :class:`RegFileSoA` (see its ``__reduce__``)."""
    rf = RegFileSoA.__new__(RegFileSoA)
    dict.__init__(rf)
    rf.table = table
    rf.row = row
    dict.update(rf, items)      # raw: no write-through of restored state
    return rf


class VectorSectionState(SectionState):
    """A section whose fetch register file lives in the shared
    :class:`RegTable`.  Every incarnation (including fail-stop replays)
    gets a fresh row; the entry snapshot stays a plain dict."""

    def __init__(self, regtable: RegTable, **kwargs: Any) -> None:
        self._regtable = regtable
        super().__init__(**kwargs)
        self.fregs = RegFileSoA(regtable, regtable.alloc(), self.fregs)

    def redispatch_reset(self, core_id: int, first_fetch_cycle: int) -> None:
        super().redispatch_reset(core_id, first_fetch_cycle)
        self.fregs = RegFileSoA(self._regtable, self._regtable.alloc(),
                                self.fregs)


class _ReqWaiter:
    """Adapter registering a renaming request on a cell's wake list
    (cells wake ``Core`` objects; this gives requests the same duck
    type).  One persistent instance per request, so
    :meth:`Cell.add_waiter`'s identity dedupe holds across re-parks."""

    __slots__ = ("proc", "req")

    def __init__(self, proc: "VectorProcessor", req: RenameRequest) -> None:
        self.proc = proc
        self.req = req

    def wake(self) -> None:
        self.proc._activate_request(self.req)


class VectorCore(Core):
    """A core whose scheduler state is mirrored into the processor's
    chip-wide arrays: the awake mask drives the vectorized core sweep.

    Occupancy accounting deliberately stays on the base class's plain
    counter list: a numpy scalar ``+= 1`` per busy core-cycle costs more
    than the rest of the accounting combined, so the per-core lists fold
    into the chip-wide matrix once, at result assembly."""

    def wake(self) -> None:
        if self.dead or not self.parked:
            return
        self.parked = False
        proc = self.proc
        proc._awake_mask[self.id] = True
        proc._awake_ids.add(self.id)
        if proc._in_core_pass and self.id > proc._cur_core_id:
            # Woken by a lower-id core mid-pass: runs this same cycle,
            # exactly like the event kernel's in-order slot check.
            heapq.heappush(proc._core_extra, self.id)

    def maybe_park(self, now: int) -> None:
        super().maybe_park(now)
        if self.parked:
            self.proc._awake_mask[self.id] = False
            self.proc._awake_ids.discard(self.id)


class VectorProcessor(Processor):
    """The ``kernel="vector"`` processor: struct-of-arrays scheduler
    state plus the lazy request scheduler.  Construct via
    :func:`repro.sim.processor.simulate` with ``SimConfig(kernel="vector")``.
    """

    core_cls = VectorCore

    def __init__(self, program: Program,
                 config: Optional[SimConfig] = None,
                 initial_regs: Optional[Dict[str, int]] = None,
                 copied_regs: Any = FORK_COPIED_REGS) -> None:
        # Scheduler state must exist before Processor.__init__ runs the
        # _make_cores/_new_section hooks.
        self._regtable = RegTable()
        self._req_act: Set[int] = set()        #: rids to step next pass
        self._req_extra: List[int] = []        #: same-cycle mid-pass wakes
        self._req_timed: List[Tuple[int, int]] = []   #: (cycle, rid) heap
        self._route_parked: Set[int] = set()   #: parked rids to flush on fork
        self._req_wrappers: Dict[int, _ReqWaiter] = {}
        self._live_requests = 0
        self._in_req_pass = False
        self._cur_rid = -1
        self._core_extra: List[int] = []       #: same-cycle core wakes
        self._in_core_pass = False
        self._cur_core_id = -1
        super().__init__(program, config=config, initial_regs=initial_regs,
                         copied_regs=copied_regs)

    # -- subclass hooks ------------------------------------------------

    def _make_cores(self) -> List[Core]:
        n = self.cfg.n_cores
        self._awake_mask = np.ones(n, dtype=bool)
        #: scalar mirror of the awake mask for the sparse regime — when
        #: only a handful of cores are runnable, sorting a small set
        #: beats a fixed-cost whole-chip numpy sweep
        self._awake_ids: Set[int] = set(range(n))
        self._occ_matrix = np.zeros((n, 4), dtype=np.int64)
        return super()._make_cores()

    def _new_section(self, **kwargs: Any) -> SectionState:
        return VectorSectionState(self._regtable, **kwargs)

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------

    def run(self) -> Any:
        self._run_vector()
        return self._result()

    def _finished_vector(self) -> bool:
        return (self.cycle != 0 and not self._open_sections
                and not self._live_requests)

    def _run_vector(self) -> None:
        engine = self.fault_engine
        awake_ids = self._awake_ids
        while not self._finished_vector():
            self.cycle += 1
            now = self.cycle
            if now > self.cfg.max_cycles:
                raise SimulationError(
                    "cycle budget exhausted at cycle %d: %s"
                    % (now, self._stall_diagnostic()))
            if self._pending_checkpoints:
                self._take_checkpoints(now)
            self._advance_fold()
            if engine is not None:
                engine.begin_cycle(now)
            self._request_pass(now)
            if self._timewakes:
                self._wake_due(now)
            self._core_pass(now)
            if not awake_ids and not self._finished_vector():
                nxt = self._next_cycle_vector(now)
                if nxt > now + 1:
                    self.cycle = min(nxt, self.cfg.max_cycles + 1) - 1

    def _next_cycle_vector(self, now: int) -> int:
        """Earliest future cycle at which anything can happen once every
        core is parked.  Unlike the event kernel's conservative bound,
        section- and cell-parked requests impose no bound of their own:
        their conditions only flip through core, request or fault
        activity, all of which is already covered by the heaps below."""
        nxt: Optional[int] = None
        if self.fault_engine is not None:
            nxt = self.fault_engine.next_scheduled(now)
        if self._timewakes:
            cand = self._timewakes[0][0]
            if nxt is None or cand < nxt:
                nxt = cand
        if self._req_act:
            return now + 1
        if self._req_timed:
            cand = self._req_timed[0][0]
            if nxt is None or cand < nxt:
                nxt = cand
        if nxt is None:
            # Nothing can ever happen again: jump to the cycle budget so
            # the deadlock diagnostic fires exactly as in the other
            # kernels.
            return self.cfg.max_cycles + 1
        return max(nxt, now + 1)

    # ------------------------------------------------------------------
    # vectorized core sweep
    # ------------------------------------------------------------------

    def _core_pass(self, now: int) -> None:
        cores = self.cores
        mask = self._awake_mask
        ids = self._awake_ids
        extra = self._core_extra
        if not ids and not extra:
            return
        if len(ids) > 32:
            # Wide chip: one vectorized sweep yields the runnable set.
            awake: List[int] = [int(c) for c in np.flatnonzero(mask)]
        else:
            # Sparse tail: a whole-chip sweep costs more than it finds.
            awake = sorted(ids)
        self._in_core_pass = True
        k = 0
        n = len(awake)
        while k < n or extra:
            if extra and (k >= n or extra[0] < awake[k]):
                cid = heapq.heappop(extra)
            else:
                cid = awake[k]
                k += 1
            core = cores[cid]
            if core.parked or core.dead:
                # Killed or parked since the snapshot (fault engine
                # writes the flags directly): heal the mirrors lazily.
                mask[cid] = False
                ids.discard(cid)
                continue
            self._cur_core_id = cid
            core.cycle(now)
            core.maybe_park(now)
        self._in_core_pass = False
        self._cur_core_id = -1

    # ------------------------------------------------------------------
    # lazy request scheduler
    # ------------------------------------------------------------------

    def _activate_request(self, req: RenameRequest) -> None:
        """Schedule *req* for a step: same cycle if we are inside the
        request pass and the request comes later in rid order (the event
        kernel would still reach it this pass), next executed pass
        otherwise."""
        if req.done:
            return
        rid = req.rid
        self._route_parked.discard(rid)
        if self._in_req_pass and rid > self._cur_rid:
            heapq.heappush(self._req_extra, rid)
        else:
            self._req_act.add(rid)

    def _timed(self, req: RenameRequest, cycle: int) -> None:
        req._vtimed = cycle
        heapq.heappush(self._req_timed, (cycle, req.rid))

    def _wrapper(self, req: RenameRequest) -> _ReqWaiter:
        wrapper = self._req_wrappers.get(req.rid)
        if wrapper is None:
            wrapper = self._req_wrappers[req.rid] = _ReqWaiter(self, req)
        return wrapper

    def send_reg_request(self, sec: SectionState, reg: str, cell: Cell,
                         now: int) -> None:
        super().send_reg_request(sec, reg, cell, now)
        self._admit(self.requests[-1], now)

    def send_mem_request(self, sec: SectionState, addr: int, cell: Cell,
                         now: int) -> None:
        super().send_mem_request(sec, addr, cell, now)
        self._admit(self.requests[-1], now)

    def _admit(self, req: RenameRequest, now: int) -> None:
        req._vstep = -1
        req._vtimed = -1
        self._live_requests += 1
        # Issued during a core pass; first steps at wake_cycle = now + 1,
        # exactly when the event kernel's full sweep first advances it.
        self._timed(req, req.wake_cycle)

    def _request_pass(self, now: int) -> None:
        requests = self.requests
        timed = self._req_timed
        act = self._req_act
        while timed and timed[0][0] <= now:
            cycle, rid = heapq.heappop(timed)
            req = requests[rid]
            if req.done or req._vtimed != cycle:
                continue        # stale entry superseded by a re-schedule
            act.add(rid)
        if not act:
            return
        self._req_act = set()
        agenda = sorted(act)
        extra = self._req_extra
        self._in_req_pass = True
        k = 0
        n = len(agenda)
        while k < n or extra:
            if extra and (k >= n or extra[0] < agenda[k]):
                rid = heapq.heappop(extra)
            else:
                rid = agenda[k]
                k += 1
            req = requests[rid]
            if req.done or req._vstep == now:
                continue        # at most one step per request per cycle
            req._vstep = now
            self._cur_rid = rid
            desc = self._step_request(req, now)
            self._classify(req, desc, now)
        self._in_req_pass = False
        self._cur_rid = -1

    def _classify(self, req: RenameRequest, desc: Any, now: int) -> None:
        """File the post-step request under its wake source.  Mirrors the
        eight states ``_step_request`` can leave a request in; every
        parked state has a registered wake, so no step the event kernel
        would execute as a state *change* is ever missed (skipped steps
        are exactly its no-op re-checks)."""
        if req.done:
            self._live_requests -= 1
            return
        if req.reply_cycle is not None:
            self._timed(req, req.reply_cycle)
            return
        if req.hit_cell is not None:
            if req.hit_cell.ready:
                self._timed(req, now + 1)
            else:
                req.hit_cell.add_waiter(self._wrapper(req))
            return
        if desc is not None:
            if isinstance(desc, Cell):
                # Coalescing behind an in-flight line import: re-check
                # when the import fills or the word lands in the MAAT.
                self._park_on_section(req, req.at_section,
                                      ("line", req.addr))
            elif req.use_shortcut and req.cut_index >= 0:
                self._park_on_section(req, desc, ("cut", req.cut_index))
            elif req.kind == "reg":
                self._park_on_section(req, desc, "fetch_done")
            else:
                self._park_on_section(req, desc, "mem_final")
            self._route_parked.add(req.rid)
            return
        if req.wake_cycle > now:
            self._timed(req, req.wake_cycle)
        else:
            self._timed(req, now + 1)

    def _park_on_section(self, req: RenameRequest, sec: SectionState,
                         tag: Tag) -> None:
        waiters = sec.req_waiters
        if waiters is None:
            waiters = sec.req_waiters = []
        for existing_tag, existing in waiters:
            if existing is req and existing_tag == tag:
                return
        waiters.append((tag, req))

    def _tag_true(self, sec: SectionState, tag: Tag) -> bool:
        if tag == "fetch_done":
            return sec.fetch_done
        if tag == "mem_final":
            return sec.fetch_done and sec.stores_pending == 0
        kind, arg = tag
        if kind == "cut":
            # Composite on purpose: a fail-stop redispatch can clear the
            # ARQ without the cut being renamed yet, so both halves must
            # be re-checked together at every notify.
            return (sec.renamed_count > arg
                    and (not sec.arq or sec.arq[0].index >= arg))
        # "line": the coalesced import filled, or the word itself landed
        # in the MAAT (a store renamed it or the line was installed).
        return (self._pending_line_import(sec, arg) is None
                or sec.maat.get(arg) is not None)

    def section_event(self, sec: SectionState) -> None:
        """A request-visible state component of *sec* flipped: fire every
        parked waiter whose condition now holds (see the notify sites in
        core.py and processor.py)."""
        waiters = sec.req_waiters
        if not waiters:
            return
        keep: List[Tuple[Tag, RenameRequest]] = []
        for tag, req in waiters:
            if req.done:
                continue
            if self._tag_true(sec, tag):
                self._activate_request(req)
            else:
                keep.append((tag, req))
        sec.req_waiters = keep or None

    def fork_section(self, parent: SectionState, dyn: DynInstr,
                     now: int) -> SectionState:
        inserted = len(self.sections)
        sec = super().fork_section(parent, dyn, now)
        if len(self.sections) != inserted and self._route_parked:
            # The total order changed: every parked request's backward
            # walk may now route through the new section.  Forks happen
            # during the core pass, so the re-steps land next cycle —
            # exactly when the event kernel's sweep re-routes them.
            for rid in sorted(self._route_parked):
                self._activate_request(self.requests[rid])
        return sec

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def occupancy_matrix(self) -> "np.ndarray":
        """The chip-wide ``(n_cores, 4)`` occupancy plane, folded from
        the per-core counter lists (CORE_STATES column order)."""
        for core in self.cores:
            self._occ_matrix[core.id] = core.occ
        return self._occ_matrix

    def _result(self) -> Any:
        self.occupancy_matrix()
        return super()._result()

    def final_state(self) -> Tuple[Dict[str, int], Dict[int, int]]:
        """Architectural fold, reading FULL values straight out of the
        register table's value plane (one row slice per section) instead
        of walking the dict — the state plane tells the two apart."""
        regs = dict(self.initial_regs)
        memory = dict(self.dmh)
        table = self._regtable
        for sec in self.order:
            fregs = sec.fregs
            if isinstance(fregs, RegFileSoA):
                row_state = table.state[fregs.row]
                row_values = table.values[fregs.row]
                for col in np.flatnonzero(row_state == FULL):
                    regs[ALL_REGS[col]] = int(row_values[col])
                for col in np.flatnonzero(row_state == PENDING):
                    reg = ALL_REGS[col]
                    entry = dict.__getitem__(fregs, reg)
                    regs[reg] = entry.value
            else:       # pragma: no cover - defensive
                for reg, entry in fregs.items():
                    regs[reg] = (entry.value if isinstance(entry, Cell)
                                 else entry)
            for addr, cell in sec.maat.items():
                if not cell.is_import:
                    memory[addr] = cell.value
        return regs, memory
