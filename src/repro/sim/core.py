"""One core of the many-core processor: the six-stage pipeline of Figure 9.

Stage order inside a cycle is reverse pipeline order (retire, memory,
address-rename, execute, rename, fetch) so values produced in cycle *c* are
consumed no earlier than *c + 1*, like hardware latches.

The fetch-decode stage implements Figure 8: it holds the section's register
file with full/empty bits, computes simple register instructions in order
(including most control flow — there is no branch predictor), and stalls
with an empty IP when a control instruction's sources are not yet full; the
execute or memory stage later resolves the target and restarts fetch.  As a
liveness extension over the paper (which assumes one section per core in
its example), a stalled fetch yields to another runnable hosted section.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .processor import Processor

from ..errors import SimulationError
from ..isa.registers import STACK_POINTER
from ..machine.base import HALT_SENTINEL
from ..machine.executor import MASK, fetch_stage_computable
from .cells import Cell, DynInstr
from .evaluate import effective_address, evaluate
from .section import SectionState
from .stats import BLOCKED, COMPUTING, FETCHING, PARKED


class Core:
    """One core: pipeline state + hosted sections.

    Under the event-driven scheduler a core *parks* when none of its
    pipeline structures can possibly make progress: every IQ/LSQ entry
    waits on an unready cell, every fetchable section is stalled on
    control or not yet created, and the rename queue is empty.  Parking
    registers the core as a waiter on exactly the cells it is blocked on
    (:meth:`repro.sim.cells.Cell.add_waiter`); the fill that unblocks it
    wakes it.  Time-driven wakes (a forked section's first fetch cycle)
    go through the processor's wake heap.  A parked core's skipped cycles
    are provably no-ops, which is what keeps the fast path bit-identical
    to the naive every-core-every-cycle loop.
    """

    def __init__(self, core_id: int, proc: "Processor") -> None:
        self.id = core_id
        self.proc = proc
        self.hosted: List[SectionState] = []
        #: hosted sections not yet complete — the working set every stage
        #: iterates (complete sections are no-ops in every stage)
        self.open_secs: List[SectionState] = []
        self.current_fetch: Optional[SectionState] = None
        self.rename_queue: List[DynInstr] = []   # fetch order, per-section FIFO
        self.iq: List[DynInstr] = []
        self.lsq: List[DynInstr] = []
        # queue-order caching: a queue is re-sorted only after an append
        # or when a fork renumbered the total order (processor epoch)
        self._iq_dirty = False
        self._iq_epoch = 0
        self._lsq_dirty = False
        self._lsq_epoch = 0
        # statistics
        self.fetched = 0
        self.fetch_computed = 0
        self.executed = 0
        self.retired = 0
        #: fail-stopped by a fault plan: permanently skipped by both run
        #: loops and immune to wakes (repro.faults)
        self.dead = False
        # event-driven scheduling state
        self.parked = False
        self._span_start: Optional[int] = None   #: first skipped cycle
        self._span_has_work = False
        self._blocked_from: Optional[int] = None
        # observability
        self.did_work = False          #: any non-fetch stage progressed
        self.occ = [0, 0, 0, 0]        #: cycles per state, CORE_STATES order
        self.trace_states: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # cycle driver
    # ------------------------------------------------------------------

    def cycle(self, now: int) -> None:
        if self._span_start is not None:
            self._close_span(now - 1)
        fetched_before = self.fetched
        self.did_work = False
        self._retire(now)
        self._memory(now)
        self._addr_rename(now)
        self._execute(now)
        self._rename(now)
        self._fetch(now)
        if self.proc.occupancy_on:
            if self.fetched > fetched_before:
                state = FETCHING
            elif self.did_work:
                state = COMPUTING
            elif self._has_any_work():
                state = BLOCKED
            else:
                state = PARKED
            self.occ[state] += 1
            if self.trace_states is not None:
                self.trace_states.append(state)

    # ------------------------------------------------------------------
    # event-driven scheduling: park / wake
    # ------------------------------------------------------------------

    def wake(self) -> None:
        """Make the core runnable again; the pending parked span is closed
        lazily at its next executed cycle.  A dead core stays down."""
        if self.dead:
            return
        self.parked = False

    def _has_any_work(self) -> bool:
        return bool(self.rename_queue or self.iq or self.lsq
                    or self.open_secs)

    def maybe_park(self, now: int) -> None:
        """After running cycle *now*: park if no pipeline structure can act
        before an external event, registering wake conditions."""
        ready, blockers, time_wake = self._park_state(now)
        if ready:
            return
        has_work = self._has_any_work()
        if has_work and not blockers and time_wake is None:
            # Defensive: a blocked core must have a registered wake source;
            # if the analysis finds none, spin like the naive loop rather
            # than risk a lost wake-up.
            return
        self.parked = True
        self._span_start = now + 1
        self._span_has_work = has_work
        self._blocked_from = None
        if blockers:
            for cell in blockers:
                cell.add_waiter(self)
        if time_wake is not None:
            self.proc.schedule_wake(time_wake, self)

    def _park_state(self, now: int) -> Tuple[
            bool, Optional[List[Cell]], Optional[int]]:
        """(ready, blockers, time_wake) after cycle *now* ran.

        ``ready`` means some structure can provably act at ``now + 1`` (or
        is merely width-limited), so the core must stay awake.  Otherwise
        ``blockers`` lists every unready cell whose fill could unblock the
        core and ``time_wake`` the earliest future first-fetch cycle.
        Conservative by construction: spurious wake-ups are no-op cycles
        (harmless), missed wake-ups would diverge from the naive loop.
        """
        if self.rename_queue:
            return True, None, None     # rename always drains
        blockers: List[Cell] = []
        for dyn in self.iq:
            cells = (dyn.addr_src_cells if (dyn.is_load or dyn.is_store)
                     else dyn.src_cells)
            ready = True
            for cell in cells.values():
                if cell.value is None:
                    blockers.append(cell)
                    ready = False
            if ready:
                return True, None, None
        for dyn in self.lsq:
            ready = True
            if dyn.is_load and dyn.load_src_cell.value is None:
                blockers.append(dyn.load_src_cell)
                ready = False
            for cell in dyn.src_cells.values():
                if cell.value is None:
                    blockers.append(cell)
                    ready = False
            if ready:
                return True, None, None
        time_wake: Optional[int] = None
        for sec in self.open_secs:
            if sec.arq and sec.arq[0].addr_value is not None:
                return True, None, None     # address-rename can proceed
            if sec.rob:
                head = sec.rob[0]
                if head.terminated():
                    return True, None, None     # retire can proceed
                for cell in head.dest_cells.values():
                    if not cell.ready:
                        blockers.append(cell)
            if (not sec.fetch_done and sec.waiting_control is None
                    and sec.ip is not None):
                if sec.first_fetch_cycle <= now + 1:
                    return True, None, None     # fetch can proceed
                if time_wake is None or sec.first_fetch_cycle < time_wake:
                    time_wake = sec.first_fetch_cycle
        return False, blockers, time_wake

    def _close_span(self, end: int) -> None:
        """Account the parked span [_span_start, end] to the occupancy
        histogram: ``blocked`` if the core had pending work when it parked
        (or from the cycle a forked section became visible), ``parked``
        (idle) otherwise."""
        start = self._span_start
        self._span_start = None
        blocked_from = self._blocked_from
        self._blocked_from = None
        if end < start or not self.proc.occupancy_on:
            return
        n = end - start + 1
        if self._span_has_work:
            self._account_span(BLOCKED, n)
        elif blocked_from is None or blocked_from > end:
            self._account_span(PARKED, n)
        else:
            split = max(blocked_from, start)
            self._account_span(PARKED, split - start)
            self._account_span(BLOCKED, end - split + 1)

    def _account_span(self, state: int, n: int) -> None:
        if n <= 0:
            return
        self.occ[state] += n
        if self.trace_states is not None:
            self.trace_states.extend([state] * n)

    # ------------------------------------------------------------------
    # fetch-decode
    # ------------------------------------------------------------------

    def _runnable_sections(self, now: int) -> List[SectionState]:
        return [s for s in self.open_secs
                if not s.fetch_done and s.first_fetch_cycle <= now
                and s.waiting_control is None and s.ip is not None]

    def _fetch(self, now: int) -> None:
        engine = self.proc.fault_engine
        if engine is not None and engine.fetch_blocked(self, now):
            return      # slow-core jitter: the fetch stage loses the cycle
        for _ in range(self.proc.cfg.fetch_width):
            runnable = self._runnable_sections(now)
            if not runnable:
                return
            if self.current_fetch in runnable:
                sec = self.current_fetch
            else:
                sec = min(runnable, key=lambda s: s.order_index)
                self.current_fetch = sec
            self._fetch_one(sec, now)

    def _fetch_one(self, sec: SectionState, now: int) -> None:
        code = self.proc.program.code
        if not 0 <= sec.ip < len(code):
            raise SimulationError(
                "section %d fetched past the code (ip=%d)" % (sec.sid, sec.ip))
        instr = code[sec.ip]
        dyn = DynInstr(instr, sec, len(sec.instructions))
        dyn.timing.fd = now
        sec.instructions.append(dyn)
        if not sec.fetch_started and self.proc.tracer is not None:
            self.proc.tracer.emit(now, "section_start", sid=sec.sid,
                                  core=self.id)
        sec.fetch_started = True
        self.fetched += 1
        if sec._last_fetch_cycle != now:
            sec._last_fetch_cycle = now
            sec.fetch_cycles += 1

        # -- bind sources against the fetch register file ----------------
        meta = instr.meta
        for reg in meta.reg_reads:
            entry = sec.freg_binding(reg)
            if entry is None:
                dyn.missing_srcs.append(reg)
            elif isinstance(entry, Cell):
                dyn.src_cells[reg] = entry
            else:
                dyn.src_cells[reg] = Cell.full(entry, origin="k:%s" % reg)
        dyn.addr_regs = meta.addr_regs
        if dyn.is_store:
            sec.stores_pending += 1

        kind = meta.kind
        next_ip: Optional[int] = sec.ip + 1

        if kind == "fork":
            self.proc.fork_section(sec, dyn, now)
            sec.fetch_depth += 1
            dyn.computed_at_fetch = True
            dyn.control_resolved = True
            next_ip = instr.target
        elif kind == "endfork":
            sec.fetch_done = True
            dyn.computed_at_fetch = True
            dyn.control_resolved = True
            next_ip = None
            if sec.req_waiters is not None:
                self.proc.section_event(sec)
        elif kind == "hlt":
            sec.fetch_done = True
            sec.ends_program = True
            dyn.computed_at_fetch = True
            dyn.control_resolved = True
            next_ip = None
            if sec.req_waiters is not None:
                self.proc.section_event(sec)
        elif kind == "call":
            self._fetch_rsp_update(dyn, sec, now, delta=-8)
            sec.fetch_depth += 1
            dyn.control_resolved = True
            next_ip = instr.target
        elif kind == "ret":
            self._fetch_rsp_update(dyn, sec, now, delta=+8)
            sec.fetch_depth -= 1
            next_ip = None                      # resolved by the memory stage
            sec.waiting_control = dyn
        elif kind in ("push", "pop"):
            self._fetch_rsp_update(dyn, sec, now,
                                   delta=-8 if kind == "push" else +8)
            if kind == "pop":
                self._make_pending_dests(dyn, sec, skip=(STACK_POINTER,))
        else:
            stage_ok = meta.fetch_computable
            if stage_ok is None:
                stage_ok = meta.fetch_computable = fetch_stage_computable(
                    kind, meta.has_mem)
            computable = (stage_ok
                          and not dyn.missing_srcs
                          and dyn.sources_ready())
            if computable:
                src = dyn.src_cells
                result = evaluate(instr, lambda r: src[r].value)
                for reg, value in result.reg_writes.items():
                    cell = self._dest_cell(sec, dyn, reg)
                    cell.fill(value, now)
                    dyn.dest_cells[reg] = cell
                    sec.fregs[reg] = value
                dyn.computed_at_fetch = True
                self.fetch_computed += 1
                if meta.is_branch:
                    dyn.control_resolved = True
                    if result.taken:
                        next_ip = result.next_ip
            else:
                self._make_pending_dests(dyn, sec)
                if meta.is_branch:
                    # IP is set to empty until the target is computed.
                    next_ip = None
                    sec.waiting_control = dyn

        sec.ip = next_ip
        self.rename_queue.append(dyn)

    def _dest_cell(self, sec: SectionState, dyn: DynInstr,
                   reg: str) -> Cell:
        """Destination cell for (*dyn*, *reg*): fresh in normal operation;
        during a fail-stop replay the dead incarnation's unfilled cell is
        re-used so consumers already holding it are eventually filled
        (repro.faults)."""
        if sec.replay_cells is not None:
            cell = sec.replay_cells.pop(("r", dyn.index, reg), None)
            if cell is not None:
                return cell
        return Cell(origin="s%d:%d:%s" % (sec.sid, dyn.index, reg))

    def _fetch_rsp_update(self, dyn: DynInstr, sec: SectionState, now: int,
                          delta: int) -> None:
        """push/pop/call/ret move rsp; the fetch ALU computes the new value
        when the old one is full, keeping address chains flowing."""
        cell = self._dest_cell(sec, dyn, STACK_POINTER)
        dyn.dest_cells[STACK_POINTER] = cell
        old = sec.freg_value(STACK_POINTER)
        if old is not None:
            new = (old + delta) & MASK
            cell.fill(new, now)
            sec.fregs[STACK_POINTER] = new
        else:
            sec.fregs[STACK_POINTER] = cell

    def _make_pending_dests(self, dyn: DynInstr, sec: SectionState,
                            skip=()) -> None:
        for reg in dyn.instr.reg_writes():
            if reg in skip or reg in dyn.dest_cells:
                continue
            cell = self._dest_cell(sec, dyn, reg)
            dyn.dest_cells[reg] = cell
            sec.fregs[reg] = cell

    # ------------------------------------------------------------------
    # register rename
    # ------------------------------------------------------------------

    def _rename(self, now: int) -> None:
        budget = self.proc.cfg.rename_width
        while budget and self.rename_queue:
            dyn = self.rename_queue[0]
            if dyn.timing.fd == now:
                return  # fetched this very cycle; rename next cycle
            self.rename_queue.pop(0)
            self._rename_one(dyn, now)
            budget -= 1

    def _rename_one(self, dyn: DynInstr, now: int) -> None:
        sec = dyn.section
        dyn.timing.rr = now
        self.did_work = True
        for reg in dyn.missing_srcs:
            cell = sec.imports.get(reg)
            if cell is None:
                cell = Cell(origin="s%d:import:%s" % (sec.sid, reg),
                            is_import=True)
                sec.imports[reg] = cell
                if reg not in sec.fregs:
                    sec.fregs[reg] = cell
                self.proc.send_reg_request(sec, reg, cell, now)
            dyn.src_cells[reg] = cell
        dyn.addr_src_cells = {r: dyn.src_cells[r] for r in dyn.addr_regs}
        sec.rob.append(dyn)
        sec.renamed_count += 1
        if sec.req_waiters is not None:
            self.proc.section_event(sec)
        if dyn.is_load or dyn.is_store:
            sec.arq.append(dyn)
            dyn.in_iq = True
            self.iq.append(dyn)
            self._iq_dirty = True
        elif not dyn.computed_at_fetch:
            dyn.in_iq = True
            self.iq.append(dyn)
            self._iq_dirty = True

    # ------------------------------------------------------------------
    # execute / write back (and address computation for memory ops)
    # ------------------------------------------------------------------

    def _execute(self, now: int) -> None:
        budget = self.proc.cfg.execute_width
        if not self.iq or not budget:
            return
        epoch = self.proc.order_epoch
        if self._iq_dirty or self._iq_epoch != epoch:
            # (order_index, index) is unique per dyn, removals preserve
            # order, so a re-sort is only due after an append or a fork
            # renumbering the total order (the epoch bump)
            self.iq.sort(key=lambda d: (d.section.order_index, d.index))
            self._iq_dirty = False
            self._iq_epoch = epoch
        done: List[DynInstr] = []
        for dyn in self.iq:
            if not budget:
                break
            if dyn.timing.rr is None or dyn.timing.rr >= now:
                continue
            if dyn.is_load or dyn.is_store:
                if not dyn.addr_sources_ready():
                    continue
            elif not dyn.sources_ready():
                continue
            self._execute_one(dyn, now)
            done.append(dyn)
            budget -= 1
        for dyn in done:
            dyn.in_iq = False
            self.iq.remove(dyn)

    def _execute_one(self, dyn: DynInstr, now: int) -> None:
        sec = dyn.section
        instr = dyn.instr
        dyn.timing.ew = now
        self.executed += 1
        self.did_work = True
        if dyn.is_load or dyn.is_store:
            old_rsp = None
            if STACK_POINTER in dyn.addr_src_cells:
                old_rsp = dyn.addr_src_cells[STACK_POINTER].value
            kind = instr.kind
            if kind in ("push", "call"):
                dyn.addr_value = (old_rsp - 8) & MASK
                self._fill_rsp(dyn, now, dyn.addr_value)
            elif kind in ("pop", "ret"):
                dyn.addr_value = old_rsp
                self._fill_rsp(dyn, now, (old_rsp + 8) & MASK)
            else:
                addr_src = dyn.addr_src_cells
                dyn.addr_value = effective_address(
                    instr.mem_operand(), lambda r: addr_src[r].value)
            # data side continues in the ar/ma stages
            return
        src = dyn.src_cells
        result = evaluate(instr, lambda r: src[r].value)
        for reg, value in result.reg_writes.items():
            cell = dyn.dest_cells.get(reg)
            if cell is not None and not cell.ready:
                cell.fill(value, now)
        if result.out_value is not None:
            sec.outs.append((dyn.index, result.out_value))
        if instr.is_branch and not dyn.control_resolved:
            sec.ip = (result.next_ip if result.next_ip is not None
                      else instr.addr + 1)
            if sec.waiting_control is dyn:
                sec.waiting_control = None
            dyn.control_resolved = True
        dyn.executed = True

    def _fill_rsp(self, dyn: DynInstr, now: int, new_rsp: int) -> None:
        cell = dyn.dest_cells.get(STACK_POINTER)
        if cell is not None and not cell.ready:
            cell.fill(new_rsp, now)

    # ------------------------------------------------------------------
    # address rename
    # ------------------------------------------------------------------

    def _addr_rename(self, now: int) -> None:
        budget = self.proc.cfg.addr_rename_width
        secs = self.open_secs
        if len(secs) > 1:
            secs = sorted(secs, key=lambda s: s.order_index)
        for sec in secs:
            while budget and sec.arq:
                dyn = sec.arq[0]
                if dyn.addr_value is None or dyn.timing.ew == now:
                    break       # in-order: the head blocks the queue
                sec.arq.popleft()
                self._rename_addr_one(dyn, now)
                budget -= 1
            if not budget:
                return

    def _rename_addr_one(self, dyn: DynInstr, now: int) -> None:
        sec = dyn.section
        addr = dyn.addr_value
        dyn.timing.ar = now
        self.did_work = True
        if dyn.is_load:
            cell = sec.maat.get(addr)
            if cell is None:
                cell = Cell(origin="s%d:mimport:%x" % (sec.sid, addr),
                            is_import=True)
                sec.maat[addr] = cell
                self.proc.send_mem_request(sec, addr, cell, now)
            dyn.load_src_cell = cell
        if dyn.is_store:
            new_cell = None
            if sec.replay_cells is not None:
                new_cell = sec.replay_cells.pop(("m", dyn.index, addr), None)
            if new_cell is None:
                new_cell = Cell(origin="s%d:%d:mem:%x"
                                % (sec.sid, dyn.index, addr))
            sec.maat[addr] = new_cell
            dyn.mem_dest_cell = new_cell
            sec.stores_pending -= 1
        dyn.mem_renamed = True
        dyn.in_lsq = True
        self.lsq.append(dyn)
        self._lsq_dirty = True
        if sec.req_waiters is not None:
            # ARQ head advanced and/or stores_pending dropped: re-check
            # requests parked on this section's memory-final conditions.
            self.proc.section_event(sec)

    # ------------------------------------------------------------------
    # memory access
    # ------------------------------------------------------------------

    def _memory(self, now: int) -> None:
        budget = self.proc.cfg.memory_width
        if not self.lsq or not budget:
            return
        epoch = self.proc.order_epoch
        if self._lsq_dirty or self._lsq_epoch != epoch:
            self.lsq.sort(key=lambda d: (d.section.order_index, d.index))
            self._lsq_dirty = False
            self._lsq_epoch = epoch
        done: List[DynInstr] = []
        for dyn in self.lsq:
            if not budget:
                break
            if dyn.timing.ar is None or dyn.timing.ar >= now:
                continue
            if dyn.is_load and dyn.load_src_cell.value is None:
                continue
            if not dyn.sources_ready():
                continue
            self._memory_one(dyn, now)
            done.append(dyn)
            budget -= 1
        for dyn in done:
            dyn.in_lsq = False
            self.lsq.remove(dyn)

    def _memory_one(self, dyn: DynInstr, now: int) -> None:
        sec = dyn.section
        instr = dyn.instr
        dyn.timing.ma = now
        self.did_work = True
        src = dyn.src_cells
        loaded = dyn.load_src_cell.value if dyn.is_load else None
        result = evaluate(instr, lambda r: src[r].value, loaded=loaded)
        for reg, value in result.reg_writes.items():
            cell = dyn.dest_cells.get(reg)
            if cell is not None and not cell.ready:
                cell.fill(value, now)
        if dyn.is_store:
            if result.mem_value is None:
                raise SimulationError("store %s produced no value" % dyn.tag)
            dyn.mem_dest_cell.fill(result.mem_value, now)
        if result.out_value is not None:
            sec.outs.append((dyn.index, result.out_value))
        if instr.opcode == "ret":
            target = result.next_ip
            if target == HALT_SENTINEL:
                sec.fetch_done = True
                sec.ends_program = True
                if sec.req_waiters is not None:
                    self.proc.section_event(sec)
            elif not 0 <= target < len(self.proc.program.code):
                raise SimulationError(
                    "section %d: ret to bad address %#x" % (sec.sid, target))
            else:
                sec.ip = target
            if sec.waiting_control is dyn:
                sec.waiting_control = None
            dyn.control_resolved = True
        dyn.executed = True
        dyn.mem_done = True

    # ------------------------------------------------------------------
    # retire
    # ------------------------------------------------------------------

    def _retire(self, now: int) -> None:
        budget = self.proc.cfg.retire_width
        tracer = self.proc.tracer
        secs = self.open_secs
        if len(secs) > 1:
            secs = sorted(secs, key=lambda s: s.order_index)
        for sec in secs:
            popped = False
            while budget and sec.rob and sec.rob[0].terminated():
                dyn = sec.rob.popleft()
                dyn.timing.ret = now
                dyn.retired = True
                self.retired += 1
                self.did_work = True
                popped = True
                budget -= 1
                if tracer is not None:
                    tracer.emit(now, "retire", sid=sec.sid, index=dyn.index)
            if popped and sec.complete:
                # `complete` only ever flips true at the retirement that
                # empties the ROB, so this is the single detection point.
                self.proc.section_completed(sec, self, now)
            if not budget:
                return
