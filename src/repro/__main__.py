"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE``        — run an assembly (.s) or MiniC (.c) program on the
                        sequential machine and print its output.
* ``runfork FILE``    — run a fork/endfork program (or MiniC with --fork)
                        on the section machine; print output + sections.
* ``simulate FILE``   — cycle-simulate on the distributed many-core.
* ``stats FILE``      — cycle-simulate and print the observability
                        report (occupancy, stall causes, request
                        latencies, NoC counters), optionally as JSON.
* ``trace FILE``      — simulate with event tracing and write a Chrome
                        trace-event / Perfetto JSON (ui.perfetto.dev).
* ``analyze FILE``    — simulate with event tracing and print the
                        stall-cause breakdown + critical-path report.
* ``metrics FILE``    — simulate with windowed cycle-domain metrics
                        (:mod:`repro.obs.metrics`) and print the series
                        as JSON, or as Prometheus text with ``--prom``.
                        ``--metrics W`` on simulate/stats folds the same
                        series into their runs.
* ``compile FILE``    — compile MiniC to assembly text (stdout).
* ``transform FILE``  — apply the call→fork transformation; print the
                        rewritten listing.
* ``ilp FILE``        — trace the program and report ILP under the
                        paper's sequential and parallel models.
* ``lint [FILE...]``  — static fork-hazard linter (``repro.analysis``):
                        CFG + liveness + reaching definitions over the
                        program, findings as ``file:line``; with
                        ``--workloads`` lints the whole Table 1 suite and
                        with ``--validate`` cross-checks the static
                        live-across-fork sets against both dynamic
                        oracles.  Exits 1 on error/warning findings.
* ``deps [FILE...]``  — whole-program section dependence graph
                        (``repro.analysis.deps``): static critical path,
                        core-pressure profile and the analytic speedup
                        bound; ``--validate`` proves every dynamically
                        observed dependence is a graph edge on every
                        simulation kernel, ``--measure`` compares the
                        bound against measured speedup, ``--dot`` /
                        ``--json`` emit machine-readable forms.
* ``workloads``       — list the Table 1 benchmark suite.
* ``batch``           — run a JSON job spec through the parallel batch
                        engine (``repro.runner``): ``--jobs N`` worker
                        processes, ``--cache-dir`` content-addressed
                        result cache, per-job failure isolation.  Exits
                        1 if any job failed.
* ``serve``           — run the simulation-as-a-service daemon
                        (``repro.serve``): an asyncio HTTP server that
                        accepts batch job specs over POST /jobs,
                        executes them in the worker pool with request
                        coalescing, a two-level result cache (in-process
                        LRU over ``--cache-dir``) and per-tenant
                        token-bucket quotas, streams lifecycle events as
                        NDJSON/SSE, and exposes Prometheus metrics.
* ``chaos``           — sweep a (drop-rate x core-deaths) fault grid over
                        the workload suite (``repro.faults``); verifies
                        every faulted run still produces bit-identical
                        architectural results and reports the slowdown.
                        Runs on the batch engine (``--jobs``,
                        ``--cache-dir``); ``--emit-jobs`` writes the grid
                        as a ``repro batch`` spec instead.  Exits 1 on
                        any divergence.

The simulator commands accept ``--faults SPEC`` (e.g.
``--faults seed=7,drop=0.1,die=3@500``) to inject a deterministic fault
plan into a single run.

File type is chosen by suffix: ``.c`` compiles as MiniC, anything else
assembles as toy x86.

Every subcommand goes through the stable facade (:mod:`repro.api`);
the one place subpackages are reached directly is for specialist tooling
(lint, ILP models) the facade does not cover.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Optional, Tuple

from . import __version__, api
from .errors import ReproError
from .faults import FaultPlan
from .workloads import WORKLOADS

#: version of the CLI's machine-readable envelopes (``stats --json`` and
#: ``repro metrics`` carry it as ``schema_version``) so dashboards and
#: trajectory rows can gate on format changes.  Distinct from the batch
#: engine's cache SCHEMA_VERSION — bumping this must never invalidate
#: cached results.
CLI_SCHEMA_VERSION = 1


def _load_program(path: str, fork: bool, fork_loops: bool):
    try:
        return api.load_program(path, fork=fork, fork_loops=fork_loops)
    except ReproError as exc:
        # compile/assembly diagnostics already carry line[:col]; prefix
        # the file so messages read file:line like any compiler's
        exc.path = path
        raise


def _print_result(result) -> None:
    for value in result.signed_output:
        print(value)
    print("# %d instructions, rax=%d, halted=%s"
          % (result.steps, result.return_value, result.halted))


def cmd_run(args) -> int:
    result = api.run_sequential(_load_program(args.file, False, False))
    _print_result(result)
    return 0


def cmd_runfork(args) -> int:
    from .fork import render_section_tree
    prog = _load_program(args.file, args.file.endswith(".c"),
                         args.fork_loops)
    run = api.run_forked(prog, sanitize=args.sanitize)
    _print_result(run.result)
    print("# %d sections" % run.sections)
    if args.tree:
        print(render_section_tree(run.machine))
    return 0


def _is_blob_key(ref: str) -> bool:
    return len(ref) == 64 and all(c in "0123456789abcdef" for c in ref)


@dataclass
class SimOptions:
    """The one shared CLI surface of every simulator subcommand.

    ``simulate``/``stats``/``trace``/``analyze``/``metrics`` all declare
    their flags through :meth:`add_arguments`, parse them through
    :meth:`from_args` and execute through :meth:`run` — no subcommand
    re-plumbs flags by hand, and a new shared flag is added in exactly
    one place.  ``--kernel`` wins over the legacy ``--scheduler``
    spelling; flags only some subcommands define (``--events``/
    ``--trace``) default off.
    """

    file: str
    cores: int = 8
    shortcut: bool = False
    placement: str = "round_robin"
    topology: str = "uniform"
    kernel: Optional[str] = None
    scheduler: str = "event"
    fork_loops: bool = False
    optimize: bool = False
    faults: Optional[str] = None
    chrome_trace: Optional[str] = None
    metrics: Optional[int] = None
    trace: bool = False
    events: bool = False
    checkpoints: Tuple[int, ...] = ()
    snapshot_dir: Optional[str] = None
    resume_from: Optional[str] = None

    @staticmethod
    def add_arguments(cmd) -> None:
        """Declare the shared simulator flags on subparser *cmd*."""
        cmd.add_argument("file")
        cmd.add_argument("--cores", type=int, default=8)
        cmd.add_argument("--shortcut", action="store_true",
                         help="enable the stack shortcut")
        cmd.add_argument("--placement", default="round_robin",
                         choices=["round_robin", "least_loaded", "same_core",
                                  "random"])
        cmd.add_argument("--topology", default="uniform",
                         choices=["uniform", "mesh"],
                         help="NoC topology: flat latency or 2D mesh")
        cmd.add_argument("--scheduler", default="event",
                         choices=["event", "naive", "vector"],
                         help="main-loop scheduler (bit-identical results)")
        cmd.add_argument("--kernel", default=None,
                         choices=["naive", "event", "vector"],
                         help="simulation kernel: naive reference loop, "
                              "event park/wake fast path, or vector "
                              "struct-of-arrays sweeps (all bit-identical; "
                              "overrides --scheduler)")
        cmd.add_argument("--fork-loops", action="store_true")
        cmd.add_argument("--optimize", action="store_true",
                         help="run the analysis-driven assembly optimizer "
                              "(dead-store elimination + copy propagation) "
                              "over the program before simulating; "
                              "architectural results are unchanged, "
                              "committed cycles drop")
        cmd.add_argument(
            "--faults", metavar="SPEC",
            help="deterministic fault-injection plan, e.g. "
                 "'seed=7,drop=0.1,die=3@500' (keys: seed, drop, spike, "
                 "spike_extra, jitter, ackloss, die=CORE@CYCLE "
                 "(repeatable), timeout, cap, resends, redispatch, "
                 "redispatch_latency, start)")
        cmd.add_argument("--chrome-trace", metavar="OUT.json",
                         help="also write a Chrome trace-event JSON")
        cmd.add_argument("--metrics", type=int, default=None, metavar="W",
                         help="collect windowed cycle-domain metrics, one "
                              "sample window every W cycles (carried in "
                              "the result; exported by stats --json)")
        cmd.add_argument("--checkpoint", type=int, action="append",
                         default=None, metavar="CYCLE", dest="checkpoint",
                         help="capture a full-state snapshot after CYCLE "
                              "(repeatable; labels past the end collapse "
                              "into one final-state snapshot)")
        cmd.add_argument("--snapshot-dir", metavar="DIR",
                         help="file captured snapshots content-addressed "
                              "under DIR (prints one key per snapshot; "
                              "also where --resume-from KEY looks)")
        cmd.add_argument("--resume-from", metavar="SNAP",
                         help="continue from a snapshot instead of cycle "
                              "0: a file path, or a 64-hex blob key "
                              "resolved in --snapshot-dir")

    @classmethod
    def from_args(cls, args) -> "SimOptions":
        return cls(
            file=args.file, cores=args.cores, shortcut=args.shortcut,
            placement=args.placement,
            topology=getattr(args, "topology", "uniform"),
            kernel=getattr(args, "kernel", None), scheduler=args.scheduler,
            fork_loops=args.fork_loops,
            optimize=bool(getattr(args, "optimize", False)),
            faults=getattr(args, "faults", None),
            chrome_trace=getattr(args, "chrome_trace", None),
            metrics=getattr(args, "metrics", None),
            trace=bool(getattr(args, "trace", False)),
            events=bool(getattr(args, "events", False)),
            checkpoints=tuple(getattr(args, "checkpoint", None) or ()),
            snapshot_dir=getattr(args, "snapshot_dir", None),
            resume_from=getattr(args, "resume_from", None))

    def config(self, **extra):
        """Build the SimConfig; ``extra`` force-overrides — e.g.
        ``trace``/``analyze`` force events on."""
        from .sim import SimConfig
        faults = FaultPlan.from_spec(self.faults) if self.faults else None
        options = dict(
            n_cores=self.cores, stack_shortcut=self.shortcut,
            placement=self.placement, topology=self.topology,
            kernel=self.kernel or self.scheduler,
            optimize=self.optimize, trace=self.trace,
            events=self.events or bool(self.chrome_trace),
            metrics_window=self.metrics, faults=faults,
            checkpoint_cycles=self.checkpoints or None)
        options.update(extra)
        return SimConfig(**options)

    def _resolve_resume(self):
        """Load the ``--resume-from`` snapshot (path or blob key)."""
        if not self.resume_from:
            return None
        from .snapshot import Snapshot
        if _is_blob_key(self.resume_from):
            if not self.snapshot_dir:
                raise ReproError(
                    "--resume-from with a blob key needs --snapshot-dir")
            from .runner import ResultCache
            data = ResultCache(self.snapshot_dir).get_blob(self.resume_from)
            if data is None:
                raise ReproError("snapshot %s not found under %s"
                                 % (self.resume_from, self.snapshot_dir))
            return Snapshot.from_bytes(data)
        return Snapshot.load(self.resume_from)

    def _publish_snapshots(self, processor) -> None:
        """File captured snapshots under ``--snapshot-dir``, one key per
        line (the key feeds ``--resume-from``)."""
        checkpoints = getattr(processor, "checkpoints", None)
        if not self.snapshot_dir or not checkpoints:
            return
        from .runner import ResultCache
        cache = ResultCache(self.snapshot_dir)
        for snap in checkpoints:
            key = cache.put_blob(snap.to_bytes())
            print("# snapshot @cycle %d -> %s" % (snap.cycle, key))

    def run(self, **extra):
        """Load + configure + simulate (cold or resumed) + publish any
        captured snapshots — the whole shared path of a sim subcommand."""
        prog = _load_program(self.file, self.file.endswith(".c"),
                             self.fork_loops)
        run = api.simulate(prog, self.config(**extra),
                           resume_from=self._resolve_resume())
        self._publish_snapshots(run.processor)
        return run


def _simulate_cmd(args, **extra):
    """Shared load + configure + simulate path of every sim subcommand."""
    return SimOptions.from_args(args).run(**extra)


def _write_chrome_trace(result, path: str,
                        seek: Optional[int] = None) -> None:
    from .obs import to_chrome_trace
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(result, seek=seek), handle)
    print("# chrome trace written to %s (open at https://ui.perfetto.dev)"
          % path)


def _finish_sim(args, result) -> None:
    """Shared post-run plumbing: the optional Chrome-trace export."""
    if getattr(args, "chrome_trace", None):
        _write_chrome_trace(result, args.chrome_trace)


def _metrics_summary(metrics) -> str:
    """One-line digest of a cycle-domain metrics dict."""
    totals = metrics["totals"]
    return ("metrics: %d windows of %d cycles  retired=%d forks=%d "
            "noc_messages=%d drops=%d retries=%d redispatches=%d"
            % (metrics["windows"], metrics["window"], totals["retired"],
               totals["forks"], totals["noc_messages"], totals["drops"],
               totals["retries"], totals["redispatches"]))


def cmd_simulate(args) -> int:
    run = _simulate_cmd(args)
    result = run.result
    for value in result.signed_outputs:
        print(value)
    print("# " + result.describe())
    if result.metrics is not None:
        print("# " + _metrics_summary(result.metrics))
    if args.timing:
        print(run.processor.timing_table())
    _finish_sim(args, result)
    return 0


def cmd_stats(args) -> int:
    from .obs import summarize_causes
    result = _simulate_cmd(args).result
    _finish_sim(args, result)
    if args.json:
        payload = result.to_json_dict(include_memory=args.memory,
                                      include_trace=args.trace,
                                      include_events=args.events)
        payload["schema_version"] = CLI_SCHEMA_VERSION
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    print(result.describe())
    print("scheduler: %s" % result.scheduler)
    summary = result.occupancy_summary()
    print("occupancy: " + "  ".join(
        "%s=%.1f%%" % (state, 100.0 * summary[state])
        for state in sorted(summary)))
    if result.stall_causes is not None:
        print("stall causes: "
              + summarize_causes(result.stall_causes["totals"]))
    latency = result.request_latency_stats()
    print("request latency: count=%d min=%d p50=%d p90=%d p99=%d max=%d "
          "mean=%.2f"
          % (latency["count"], latency["min"], latency["p50"],
             latency["p90"], latency["p99"], latency["max"],
             latency["mean"]))
    print("noc: " + "  ".join(
        "%s=%d" % kv for kv in sorted(result.noc_stats.items())))
    if result.fault_stats is not None:
        print("faults: " + "  ".join(
            "%s=%d" % kv for kv in sorted(result.fault_stats.items())))
    if result.metrics is not None:
        print(_metrics_summary(result.metrics))
    if args.trace and result.trace is not None:
        for core_id, row in enumerate(result.trace):
            print("core %2d: %s" % (core_id, row))
    return 0


def cmd_metrics(args) -> int:
    """Simulate with cycle-domain metrics on and export the series."""
    window = getattr(args, "metrics", None) or args.window
    result = _simulate_cmd(args, metrics_window=window).result
    _finish_sim(args, result)
    metrics = result.metrics or {}
    if args.prom:
        from .obs import cycle_metrics_to_registry
        sys.stdout.write(cycle_metrics_to_registry(metrics)
                         .render_prometheus())
        return 0
    # the metrics dict carries its own schema_version (METRICS_SCHEMA_VERSION)
    json.dump(metrics, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def cmd_trace(args) -> int:
    result = _simulate_cmd(args, events=True).result
    _write_chrome_trace(result, args.output, seek=args.seek)
    print("# " + result.describe())
    return 0


def cmd_analyze(args) -> int:
    from .obs import critical_path, render_critical_path, summarize_causes
    result = _simulate_cmd(args, events=True).result
    print(result.describe())
    causes = result.stall_causes
    print("stall causes (blocked/parked core cycles): "
          + summarize_causes(causes["totals"]))
    if args.per_core:
        for core_id, counts in enumerate(causes["per_core"]):
            if sum(counts.values()):
                print("  core %2d: %s" % (core_id, summarize_causes(counts)))
    print(render_critical_path(critical_path(result), result.cycles))
    _finish_sim(args, result)
    return 0


def cmd_compile(args) -> int:
    from .minic import compile_to_asm
    with open(args.file) as handle:
        source = handle.read()
    sys.stdout.write(compile_to_asm(source, fork_mode=args.fork,
                                    fork_loops=args.fork_loops))
    return 0


def cmd_transform(args) -> int:
    prog = _load_program(args.file, False, False)
    sys.stdout.write(api.transform(prog).listing())
    return 0


def cmd_ilp(args) -> int:
    from .ilp import PARALLEL_MODEL, SEQUENTIAL_MODEL
    from .ilp.analyzer import analyze_stream_multi
    from .machine import SequentialMachine
    prog = _load_program(args.file, False, False)
    seq, par = analyze_stream_multi(
        SequentialMachine(prog).step_entries(),
        [SEQUENTIAL_MODEL, PARALLEL_MODEL])
    print(seq.describe())
    print(par.describe())
    return 0


def _analysis_targets(args):
    """Shared target list of the analysis subcommands (lint, deps):
    ``--workloads`` compiles the Table 1 suite fork-mode, positional
    files load by suffix."""
    targets = []
    if args.workloads:
        for workload in WORKLOADS:
            inst = workload.instance(scale=0)
            prog = api.compile_c(inst.source, fork=True,
                                 fork_loops=args.fork_loops)
            targets.append(("workload:%s" % workload.short, prog))
    for path in args.files:
        targets.append((path, _load_program(path, True, args.fork_loops)))
    return targets


def cmd_lint(args) -> int:
    from .analysis import lint_program, validate_machine, validate_sim
    targets = _analysis_targets(args)
    if not targets:
        print("error: nothing to lint (give files or --workloads)",
              file=sys.stderr)
        return 2
    failed = False
    payload = {"schema_version": CLI_SCHEMA_VERSION, "targets": []}
    for name, prog in targets:
        report = lint_program(prog)
        entry = {
            "name": name,
            "findings": [
                {"rule": f.rule, "severity": f.severity, "addr": f.addr,
                 "line": f.line, "function": f.function,
                 "message": f.message}
                for f in report.findings
                if not args.no_info or f.severity != "info"],
            "counts": {"error": len(report.errors),
                       "warning": len(report.warnings),
                       "info": len(report.infos)},
            "fork_sites": len(report.cfg.fork_sites),
            "failed": report.failed,
            "validations": [],
        }
        if not args.json:
            for line in report.format(name, show_info=not args.no_info):
                print(line)
        failed = failed or report.failed
        if args.validate:
            # the functional machine, the default scheduler and the
            # vector kernel: the soundness theorem holds on every oracle
            checks = (validate_machine(prog), validate_sim(prog),
                      validate_sim(prog, kernel="vector"))
            for check in checks:
                hit, total = check.precision()
                entry["validations"].append(
                    {"source": check.source, "sound": check.sound,
                     "precision": [hit, total],
                     "sections": len(check.checks)})
                if not args.json:
                    print("%s: %s" % (name, check.format()[-1]))
                failed = failed or not check.sound
        payload["targets"].append(entry)
    if args.json:
        payload["failed"] = failed
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 1 if failed else 0


#: kernels ``repro deps --validate`` proves the graph against
_DEPS_VALIDATE_KERNELS = ("event", "naive", "vector")


def cmd_deps(args) -> int:
    """Section dependence graph, static speedup bound and validation."""
    from .analysis import analyze_program, validate_deps
    from .sim import SimConfig
    targets = _analysis_targets(args)
    if not targets:
        print("error: nothing to analyze (give files or --workloads)",
              file=sys.stderr)
        return 2
    failed = False
    payload = {"schema_version": CLI_SCHEMA_VERSION, "targets": []}
    for name, prog in targets:
        graph, bound = analyze_program(prog)
        entry = graph.to_json_dict(bound, core_counts=args.cores)
        entry["name"] = name
        if args.dot:
            print(graph.to_dot())
        elif not args.json:
            print("%s: %s" % (name, graph.describe()))
            print("%s: %s" % (name, bound.describe()))
            for n in args.cores:
                line = "%s:   N=%-4d bound=%6.2fx" % (name, n,
                                                      bound.bound(n))
                if args.measure:
                    result = api.simulate(prog,
                                          SimConfig(n_cores=n)).result
                    measured = result.instructions / result.cycles
                    line += ("  measured=%6.2fx  %s"
                             % (measured,
                                "sound" if bound.bound(n) >= measured
                                else "VIOLATED"))
                print(line)
        if args.measure and args.json:
            entry["measured"] = {}
            for n in args.cores:
                result = api.simulate(prog, SimConfig(n_cores=n)).result
                entry["measured"][str(n)] = (result.instructions
                                             / result.cycles)
        if args.validate:
            entry["validations"] = []
            for kernel in _DEPS_VALIDATE_KERNELS:
                report = validate_deps(
                    prog, SimConfig(events=True, kernel=kernel),
                    graph=graph)
                hit, total = report.precision()
                entry["validations"].append(
                    {"kernel": kernel, "sound": report.sound,
                     "observed": total, "precise": hit,
                     "coverage": report.coverage()})
                if not args.json and not args.dot:
                    print("%s: %s" % (name, report.format()[-1]))
                failed = failed or not report.sound
        payload["targets"].append(entry)
    if args.json:
        payload["failed"] = failed
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 1 if failed else 0


def cmd_workloads(args) -> int:
    for workload in WORKLOADS:
        print("%s  %-36s %s" % (workload.key, workload.name,
                                workload.description))
    return 0


def _batch_cache(args):
    """``--cache-dir``/``--no-cache`` → a ResultCache or None."""
    if getattr(args, "no_cache", False) or not getattr(args, "cache_dir",
                                                       None):
        return None
    from .runner import ResultCache
    return ResultCache(args.cache_dir)


def cmd_batch(args) -> int:
    from .runner import jobs_from_spec, run_batch
    import os
    with open(args.spec) as handle:
        spec = json.load(handle)
    jobs = jobs_from_spec(spec, base_dir=os.path.dirname(
        os.path.abspath(args.spec)))

    def progress(outcome) -> None:
        if not args.json and not args.quiet:
            print("  [%s] %s  (%.3fs)"
                  % (outcome.status, outcome.job_id, outcome.wall_s))

    report = run_batch(jobs, pool_size=args.jobs,
                       cache=_batch_cache(args), on_outcome=progress)
    if args.json:
        json.dump(report.to_json_dict(), sys.stdout, indent=2,
                  sort_keys=True)
        sys.stdout.write("\n")
    else:
        print("# " + report.summary())
        if args.metrics and report.host_metrics is not None:
            json.dump(report.host_metrics, sys.stdout, indent=2,
                      sort_keys=True)
            sys.stdout.write("\n")
        for outcome in report.failures:
            print("error: job %s failed: %s"
                  % (outcome.job_id, outcome.error), file=sys.stderr)
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    from .serve import ServeConfig, serve_forever
    config = ServeConfig(
        host=args.host, port=args.port,
        pool_size=max(1, args.jobs or 2),
        queue_limit=args.queue_limit,
        lru_capacity=args.lru_size, lru_shards=args.lru_shards,
        cache_dir=(None if args.no_cache else args.cache_dir),
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        max_body_bytes=args.max_body,
        drain_timeout_s=args.drain_timeout,
        allow_files=args.allow_files)
    serve_forever(config)
    return 0


#: fast default subset for ``repro chaos`` without ``--workloads``
_CHAOS_DEFAULT = ("quicksort", "dictionary", "bfs")


def _chaos_warmstart(args, shorts) -> int:
    """``repro chaos --warm-start``: fork every grid cell from one
    pre-fault snapshot per workload instead of replaying the prefix."""
    from .faults import warmstart_sweep
    payload = warmstart_sweep(shorts, args.drops, args.deaths,
                              n_cores=args.cores, seed=args.seed,
                              scheduler=args.scheduler,
                              start_frac=args.warm_start)
    records = payload["records"]
    if args.json:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print("%-12s %5s %6s %8s %8s %7s %8s %s"
              % ("benchmark", "drop", "deaths", "cycles", "start",
                 "slowdn", "speedup", "identical"))
        for rec in records:
            print("%-12s %5.2f %6d %8d %8d %7.2fx %7.2fx %s"
                  % (rec["benchmark"], rec["drop_rate"], rec["deaths"],
                     rec["cycles"], rec["start_cycle"], rec["slowdown"],
                     rec["speedup"], "yes" if rec["identical"] else "NO"))
        summary = payload["summary"]
        print("# warm grid: %d cells  cold=%.2fs  warm=%.2fs  "
              "capture=%.2fs  speedup_vs_replay=%.2fx"
              % (summary["cells"], summary["cold_wall_s"],
                 summary["warm_wall_s"], summary["capture_wall_s"],
                 summary["speedup_vs_replay"]))
    broken = [r for r in records if not r["identical"]]
    if broken:
        print("error: %d/%d warm-forked runs diverged from the cold "
              "replays" % (len(broken), len(records)), file=sys.stderr)
        return 1
    return 0


def cmd_chaos(args) -> int:
    from .faults import chaos_spec, chaos_sweep
    shorts = ([w.short for w in WORKLOADS] if args.workloads
              else list(_CHAOS_DEFAULT))
    if args.warm_start is not None:
        return _chaos_warmstart(args, shorts)
    cache = _batch_cache(args)
    if args.emit_jobs:
        spec = chaos_spec(shorts, args.drops, args.deaths,
                          n_cores=args.cores, seed=args.seed,
                          scheduler=args.scheduler,
                          pool_size=args.jobs, cache=cache)
        with open(args.emit_jobs, "w") as handle:
            json.dump(spec, handle, indent=2, sort_keys=True)
        print("# wrote %d-job chaos spec to %s (run with: "
              "python -m repro batch %s)"
              % (len(spec["jobs"]), args.emit_jobs, args.emit_jobs))
        return 0
    payload = chaos_sweep(shorts, args.drops, args.deaths,
                          n_cores=args.cores, seed=args.seed,
                          scheduler=args.scheduler,
                          pool_size=args.jobs, cache=cache)
    records = payload["records"]
    if args.json:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print("%-12s %5s %6s %8s %8s %8s %7s %7s %s"
              % ("benchmark", "drop", "deaths", "cycles", "base",
                 "slowdn", "retries", "redisp", "identical"))
        for rec in records:
            print("%-12s %5.2f %6d %8d %8d %7.2fx %7d %7d %s"
                  % (rec["benchmark"], rec["drop_rate"], rec["deaths"],
                     rec["cycles"], rec["base_cycles"], rec["slowdown"],
                     rec["retries"], rec["redispatches"],
                     "yes" if rec["identical"] else "NO"))
        engine = payload["batch"]
        print("# engine: executed=%d cache_hits=%d pool=%s wall=%.2fs"
              % (engine["executed"], engine["cache_hits"],
                 engine["pool_size"] or "serial", engine["wall_s"]))
    broken = [r for r in records if not r["identical"]]
    if broken:
        print("error: %d/%d faulted runs diverged from the fault-free "
              "architectural results" % (len(broken), len(records)),
              file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Toward a Core Design to Distribute "
                    "an Execution on a Many-Core Processor' (PaCT 2015).")
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run sequentially")
    run.add_argument("file")
    run.set_defaults(func=cmd_run)

    runfork = sub.add_parser("runfork", help="run under section semantics")
    runfork.add_argument("file")
    runfork.add_argument("--fork-loops", action="store_true")
    runfork.add_argument("--tree", action="store_true",
                         help="print the section tree")
    runfork.add_argument("--sanitize", action="store_true",
                         help="assert the renaming invariants at runtime "
                              "(fails on the offending instruction)")
    runfork.set_defaults(func=cmd_runfork)

    add_sim_options = SimOptions.add_arguments

    sim = sub.add_parser("simulate", help="cycle-simulate on the many-core")
    add_sim_options(sim)
    sim.add_argument("--timing", action="store_true",
                     help="print the Figure 10 stage table")
    sim.set_defaults(func=cmd_simulate)

    stats = sub.add_parser("stats",
                           help="simulate and report cycle-level stats")
    add_sim_options(stats)
    stats.add_argument("--json", action="store_true",
                       help="emit the machine-readable SimResult export")
    stats.add_argument("--trace", action="store_true",
                       help="include the per-cycle core-state trace")
    stats.add_argument("--events", action="store_true",
                       help="collect the structured event stream (adds the "
                            "stall-cause breakdown; with --json, exports "
                            "the raw events too)")
    stats.add_argument("--memory", action="store_true",
                       help="include final memory contents in --json output")
    stats.set_defaults(func=cmd_stats)

    trace = sub.add_parser(
        "trace", help="simulate and export a Chrome/Perfetto trace")
    add_sim_options(trace)
    trace.add_argument("-o", "--output", default="trace.json",
                       help="output path (default: trace.json)")
    trace.add_argument("--seek", type=int, default=None, metavar="CYCLE",
                       help="start the exported trace at CYCLE (pairs "
                            "with --resume-from for cheap time travel "
                            "into the tail of a long run)")
    trace.set_defaults(func=cmd_trace)

    analyze = sub.add_parser(
        "analyze",
        help="simulate and report stall causes + the critical path")
    add_sim_options(analyze)
    analyze.add_argument("--per-core", action="store_true",
                         help="print the per-core stall-cause breakdown")
    analyze.set_defaults(func=cmd_analyze)

    metrics = sub.add_parser(
        "metrics",
        help="simulate and export windowed cycle-domain metrics")
    add_sim_options(metrics)
    metrics.add_argument("--window", type=int, default=100, metavar="W",
                         help="sampling window in cycles (default: 100; "
                              "--metrics overrides)")
    metrics.add_argument("--prom", action="store_true",
                         help="Prometheus text exposition instead of JSON")
    metrics.set_defaults(func=cmd_metrics)

    comp = sub.add_parser("compile", help="compile MiniC to assembly")
    comp.add_argument("file")
    comp.add_argument("--fork", action="store_true")
    comp.add_argument("--fork-loops", action="store_true")
    comp.set_defaults(func=cmd_compile)

    trans = sub.add_parser("transform", help="call→fork transformation")
    trans.add_argument("file")
    trans.set_defaults(func=cmd_transform)

    ilp = sub.add_parser("ilp", help="Figure 7 ILP models on one program")
    ilp.add_argument("file")
    ilp.set_defaults(func=cmd_ilp)

    lint = sub.add_parser(
        "lint", help="static fork-hazard linter (repro.analysis)")
    lint.add_argument("files", nargs="*",
                      help=".s or MiniC sources (MiniC compiles fork-mode)")
    lint.add_argument("--workloads", action="store_true",
                      help="lint all ten Table 1 workloads")
    lint.add_argument("--fork-loops", action="store_true")
    lint.add_argument("--no-info", action="store_true",
                      help="hide advisory info findings")
    lint.add_argument("--validate", action="store_true",
                      help="also cross-check static live-across sets "
                           "against the section machine and the cycle "
                           "simulator's renaming requests (default and "
                           "vector kernels)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable findings payload")
    lint.set_defaults(func=cmd_lint)

    deps = sub.add_parser(
        "deps",
        help="whole-program section dependence graph + static speedup "
             "bound (repro.analysis.deps)")
    deps.add_argument("files", nargs="*",
                      help=".s or MiniC sources (MiniC compiles fork-mode)")
    deps.add_argument("--workloads", action="store_true",
                      help="analyze all ten Table 1 workloads")
    deps.add_argument("--fork-loops", action="store_true")
    deps.add_argument("--cores", type=int, nargs="+", default=[64, 256],
                      metavar="N", help="core counts for the bound table "
                                        "(default: 64 256)")
    deps.add_argument("--measure", action="store_true",
                      help="also cycle-simulate at each --cores point and "
                           "print predicted vs. measured speedup")
    deps.add_argument("--validate", action="store_true",
                      help="differentially validate the graph against the "
                           "simulator's renaming-request event stream on "
                           "every kernel; exit 1 on any uncovered "
                           "dependence")
    deps.add_argument("--dot", action="store_true",
                      help="emit the graph in Graphviz dot form")
    deps.add_argument("--json", action="store_true",
                      help="machine-readable graph + bound payload")
    deps.set_defaults(func=cmd_deps)

    wl = sub.add_parser("workloads", help="list the Table 1 suite")
    wl.set_defaults(func=cmd_workloads)

    def add_batch_options(cmd):
        cmd.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: serial in-process)")
        cmd.add_argument("--cache-dir", metavar="DIR",
                         help="content-addressed result cache directory")
        cmd.add_argument("--no-cache", action="store_true",
                         help="ignore --cache-dir (always execute)")

    batch = sub.add_parser(
        "batch",
        help="run a JSON job spec through the parallel batch engine")
    batch.add_argument("spec", help="job-spec JSON (a list of job entries "
                                    "or {defaults, jobs})")
    add_batch_options(batch)
    batch.add_argument("--json", action="store_true",
                       help="emit the full batch report as JSON")
    batch.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")
    batch.add_argument("--metrics", action="store_true",
                       help="print host-domain engine telemetry (phase "
                            "timings, cache counters, pool utilization) "
                            "after the summary")
    batch.set_defaults(func=cmd_batch)

    serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP daemon (coalescing, "
             "two-level cache, per-tenant quotas)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="listen port (0 = kernel-assigned)")
    add_batch_options(serve)
    serve.add_argument("--queue-limit", type=int, default=32,
                       metavar="N",
                       help="max queued jobs before submits get 429s")
    serve.add_argument("--lru-size", type=int, default=256, metavar="N",
                       help="in-process LRU capacity in entries "
                            "(0 disables the hot tier)")
    serve.add_argument("--lru-shards", type=int, default=8, metavar="N")
    serve.add_argument("--quota-rate", type=float, default=16.0,
                       metavar="R",
                       help="per-tenant sustained jobs/second "
                            "(0 = burst only)")
    serve.add_argument("--quota-burst", type=float, default=64.0,
                       metavar="B", help="per-tenant burst size in jobs")
    serve.add_argument("--max-body", type=int, default=1_000_000,
                       metavar="BYTES",
                       help="largest accepted request body")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="S",
                       help="graceful-shutdown wait for running jobs")
    serve.add_argument("--allow-files", action="store_true",
                       help="permit 'file' job-spec entries (reads "
                            "server-local paths; off by default)")
    serve.set_defaults(func=cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="sweep a fault grid over the workload suite and check that "
             "every faulted run stays bit-identical to the fault-free one")
    chaos.add_argument("--workloads", action="store_true",
                       help="sweep all ten Table 1 workloads (default: %s)"
                            % ", ".join(_CHAOS_DEFAULT))
    chaos.add_argument("--cores", type=int, default=16)
    chaos.add_argument("--drops", type=float, nargs="+",
                       default=[0.0, 0.1],
                       help="NoC drop rates to sweep (default: 0.0 0.1)")
    chaos.add_argument("--deaths", type=int, nargs="+", default=[0, 1],
                       help="fail-stop core counts to sweep (default: 0 1)")
    chaos.add_argument("--seed", type=int, default=1234)
    chaos.add_argument("--scheduler", default="event",
                       choices=["event", "naive", "vector"])
    add_batch_options(chaos)
    chaos.add_argument("--warm-start", type=float, default=None,
                       metavar="FRAC",
                       help="fork every grid cell from one pre-fault "
                            "snapshot captured at FRAC of each "
                            "workload's fault-free run (0 < FRAC < 1) "
                            "instead of replaying the prefix per cell; "
                            "each cell is cross-checked bit-identical "
                            "against its cold replay")
    chaos.add_argument("--emit-jobs", metavar="SPEC.json",
                       help="write the grid as a 'repro batch' job spec "
                            "instead of sweeping it here")
    chaos.add_argument("--json", action="store_true",
                       help="emit the full sweep payload as JSON")
    chaos.set_defaults(func=cmd_chaos)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        path = getattr(exc, "path", None)
        line = getattr(exc, "line", 0) or getattr(exc, "src_line", 0)
        if path and line:
            col = getattr(exc, "src_col", 0)
            where = "%s:%d" % (path, line) + (":%d" % col if col else "")
            print("error: %s: %s" % (where, exc.raw_message),
                  file=sys.stderr)
        elif path:
            print("error: %s: %s" % (path, exc), file=sys.stderr)
        else:
            print("error: %s" % exc, file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
