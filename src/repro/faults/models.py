"""Deterministic fault models for the distributed simulator.

A :class:`FaultPlan` describes *what goes wrong* during a run: transient
NoC message drops (detected by the receiver's corruption check, so a drop
costs a timeout + re-send rather than silent data loss), per-link latency
spikes, slow-core jitter (fetch throughput derating), and fail-stop core
death at a scheduled cycle.

Every randomized decision is a **pure hash** of the plan seed and the
decision's coordinates (link, cycle, attempt number) rather than a draw
from a sequential RNG.  This is the property the whole subsystem leans
on: the naive and event-driven schedulers evaluate the decision points in
different orders (and the event scheduler skips provably-idle cycles
entirely), yet both must inject *exactly* the same faults.  A pure
function of the call context cannot diverge; a shared RNG stream would.

The recovery side (ack/timeout/backoff, re-send, section re-dispatch)
lives in :mod:`repro.faults.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError

_MASK64 = (1 << 64) - 1


def _mix(*parts: int) -> float:
    """splitmix64-style avalanche of the parts into a float in [0, 1).

    Independent of PYTHONHASHSEED and of evaluation order: the same
    coordinates always yield the same number, on any platform.
    """
    x = 0x9E3779B97F4A7C15
    for part in parts:
        x = (x ^ (part & _MASK64)) & _MASK64
        x = (x * 0xBF58476D1CE4E5B9) & _MASK64
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & _MASK64
        x ^= x >> 31
    return (x >> 11) / float(1 << 53)


# tags keep the per-fault hash streams independent of each other
_TAG_DROP, _TAG_SPIKE, _TAG_JITTER, _TAG_ACK = 1, 2, 3, 4


@dataclass(frozen=True)
class LinkSpike:
    """Scheduled latency spike on the directed link *src* -> *dst* during
    the half-open cycle window ``[start, end)``; ``src == -1`` matches the
    DMH port."""

    src: int
    dst: int
    start: int
    end: int
    extra: int


@dataclass(frozen=True)
class CoreDeath:
    """Fail-stop: *core* permanently stops at the start of *cycle*."""

    core: int
    cycle: int


@dataclass
class FaultPlan:
    """What goes wrong, when — and how hard recovery tries.

    Rates are probabilities per decision point: ``drop_rate`` per message
    send attempt, ``spike_rate`` per message, ``jitter_rate`` per
    core-cycle with fetchable work, ``ack_loss_rate`` per delivered
    message (the ack is lost, forcing a duplicate send the receiver
    dedupes by request id — accounting only, by construction of the
    idempotent renaming protocol).
    """

    seed: int = 0
    #: probability a message send attempt is dropped (receiver detects
    #: corruption / loss and the sender re-sends after a timeout)
    drop_rate: float = 0.0
    #: probability a message suffers a random latency spike
    spike_rate: float = 0.0
    #: extra cycles added by a random spike
    spike_extra: int = 4
    #: probability a core's fetch stage stalls for one cycle (slow core)
    jitter_rate: float = 0.0
    #: cores subject to jitter; None = all cores
    jitter_cores: Optional[Tuple[int, ...]] = None
    #: probability the delivery ack is lost (sender re-sends; receiver
    #: dedupes by request id)
    ack_loss_rate: float = 0.0
    #: scheduled fail-stop core deaths
    deaths: Tuple[CoreDeath, ...] = ()
    #: scheduled per-link latency spikes
    spikes: Tuple[LinkSpike, ...] = ()
    #: base re-send timeout after a drop, in cycles
    retry_timeout: int = 4
    #: cap of the exponential backoff (timeout << attempt, clamped here)
    backoff_cap: int = 32
    #: forced-delivery bound: after this many drops of one message the
    #: send goes through (models an escalation path; guarantees progress)
    max_resends: int = 6
    #: re-dispatch the sections of a dead core onto live cores (off =
    #: measure the bare failure: the run deadlocks into the cycle budget)
    redispatch: bool = True
    #: cycles between a death and the first fetch of a re-dispatched
    #: section on its new core (failure detection + state shipping)
    redispatch_latency: int = 8
    #: the plan is inert before this cycle: every probabilistic decision
    #: point (drops, spikes, jitter, ack loss, keyed by message *send*
    #: cycle) returns the fault-free answer for cycles below it.  This is
    #: what makes the chaos-grid warm fork sound: a run resumed from a
    #: fault-free snapshot at cycle S < start_cycle with the plan
    #: attached is bit-identical to the cold run with the same plan.
    #: 0 — the default — means active from the first cycle (and is
    #: elided from the wire form so pre-existing cache keys hold).
    start_cycle: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "spike_rate", "jitter_rate",
                     "ack_loss_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ReproError("%s must be in [0, 1), got %r"
                                 % (name, rate))
        if self.retry_timeout < 1:
            raise ReproError("retry_timeout must be >= 1")
        if self.backoff_cap < self.retry_timeout:
            raise ReproError("backoff_cap must be >= retry_timeout")
        if self.max_resends < 1:
            raise ReproError("max_resends must be >= 1")
        if self.spike_extra < 0 or self.redispatch_latency < 0:
            raise ReproError("spike_extra/redispatch_latency must be >= 0")
        if self.start_cycle < 0:
            raise ReproError("start_cycle must be >= 0")
        for death in self.deaths:
            if death.cycle < 1:
                raise ReproError("core death cycle must be >= 1 (core %d)"
                                 % death.core)

    # -- validation against a concrete machine --------------------------

    def validate(self, n_cores: int) -> None:
        """Check the plan fits an *n_cores* machine (SimConfig calls this)."""
        for death in self.deaths:
            if not 0 <= death.core < n_cores:
                raise ReproError("core death targets core %d outside the "
                                 "%d-core machine" % (death.core, n_cores))
        if len({d.core for d in self.deaths}) >= n_cores:
            raise ReproError("fault plan kills every core — nothing left "
                             "to run on")
        if self.jitter_cores is not None:
            for core in self.jitter_cores:
                if not 0 <= core < n_cores:
                    raise ReproError("jitter_cores lists core %d outside "
                                     "the %d-core machine"
                                     % (core, n_cores))

    # -- canonical serialization (cache keys + cross-process wire) -------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form; :meth:`from_dict` round-trips it.

        Nested ``deaths``/``spikes`` become lists of plain dicts and
        ``jitter_cores`` a list (or None), so the payload survives
        ``json.dumps``/``loads`` unchanged — this is the representation
        the batch runner digests for cache keys and ships to workers.
        """
        payload: Dict[str, Any] = {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "spike_rate": self.spike_rate,
            "spike_extra": self.spike_extra,
            "jitter_rate": self.jitter_rate,
            "jitter_cores": (None if self.jitter_cores is None
                             else list(self.jitter_cores)),
            "ack_loss_rate": self.ack_loss_rate,
            "deaths": [{"core": d.core, "cycle": d.cycle}
                       for d in self.deaths],
            "spikes": [{"src": s.src, "dst": s.dst, "start": s.start,
                        "end": s.end, "extra": s.extra}
                       for s in self.spikes],
            "retry_timeout": self.retry_timeout,
            "backoff_cap": self.backoff_cap,
            "max_resends": self.max_resends,
            "redispatch": self.redispatch,
            "redispatch_latency": self.redispatch_latency,
        }
        if self.start_cycle:
            # elided when 0 (the pre-warm-start behaviour) so every
            # deployed content-addressed cache key stays byte-identical
            payload["start_cycle"] = self.start_cycle
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; rejects unknown keys so a stale or
        hand-edited payload fails loudly instead of silently dropping a
        fault axis."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ReproError("unknown FaultPlan keys: %s"
                             % ", ".join(unknown))
        kwargs: Dict[str, Any] = dict(data)
        if kwargs.get("jitter_cores") is not None:
            kwargs["jitter_cores"] = tuple(
                int(c) for c in kwargs["jitter_cores"])
        for name, build in (("deaths", CoreDeath), ("spikes", LinkSpike)):
            if name in kwargs:
                entries = []
                for entry in kwargs[name]:
                    field_names = {f.name for f in fields(build)}
                    bad = sorted(set(entry) - field_names)
                    if bad:
                        raise ReproError("unknown %s keys: %s"
                                         % (build.__name__,
                                            ", ".join(bad)))
                    entries.append(build(**entry))
                kwargs[name] = tuple(entries)
        return cls(**kwargs)

    # -- decision points (pure functions of the coordinates) -------------

    def dropped(self, src: int, dst: int, cycle: int, attempt: int) -> bool:
        """Is send *attempt* of the message on link src->dst at *cycle*
        dropped?"""
        if not self.drop_rate:
            return False
        return _mix(self.seed, _TAG_DROP, src + 2, dst + 2,
                    cycle, attempt) < self.drop_rate

    def spike_extra_at(self, src: int, dst: int, cycle: int) -> int:
        """Extra latency on link src->dst for a message sent at *cycle*:
        scheduled spikes plus the random spike draw."""
        extra = 0
        for spike in self.spikes:
            if (spike.src == src and spike.dst == dst
                    and spike.start <= cycle < spike.end):
                extra += spike.extra
        if self.spike_rate and _mix(self.seed, _TAG_SPIKE, src + 2,
                                    dst + 2, cycle) < self.spike_rate:
            extra += self.spike_extra
        return extra

    def jittered(self, core: int, cycle: int) -> bool:
        """Does *core*'s fetch stage stall at *cycle* (slow-core jitter)?"""
        if not self.jitter_rate:
            return False
        if self.jitter_cores is not None and core not in self.jitter_cores:
            return False
        return _mix(self.seed, _TAG_JITTER, core, cycle) < self.jitter_rate

    def ack_lost(self, src: int, dst: int, cycle: int) -> bool:
        """Is the delivery ack of a message arriving at *cycle* lost?"""
        if not self.ack_loss_rate:
            return False
        return _mix(self.seed, _TAG_ACK, src + 2, dst + 2,
                    cycle) < self.ack_loss_rate

    def retry_wait(self, attempt: int) -> int:
        """Re-send timeout after drop number *attempt* (0-based): capped
        exponential backoff."""
        return min(self.retry_timeout << attempt, self.backoff_cap)

    @property
    def active(self) -> bool:
        """Does the plan inject anything at all?  A fully-zero plan must
        behave exactly like ``faults=None``."""
        return bool(self.drop_rate or self.spike_rate or self.jitter_rate
                    or self.ack_loss_rate or self.deaths or self.spikes)

    def first_effect_cycle(self) -> float:
        """Earliest cycle at which the plan can perturb anything —
        ``inf`` for an inert plan.

        A fault-free snapshot captured strictly *before* this cycle can
        be forked into a run of this plan (:func:`repro.snapshot.
        resume`): every decision point at earlier cycles provably
        returns the fault-free answer, so attaching the plan at the
        snapshot is indistinguishable from having carried it from
        cycle 0.
        """
        if not self.active:
            return float("inf")
        candidates: List[float] = []
        if (self.drop_rate or self.spike_rate or self.jitter_rate
                or self.ack_loss_rate):
            # probabilistic axes can fire at the first gated cycle
            # (cycle numbering starts at 1)
            candidates.append(max(self.start_cycle, 1))
        candidates.extend(d.cycle for d in self.deaths)
        candidates.extend(max(s.start, self.start_cycle, 1)
                          for s in self.spikes)
        return min(candidates)

    # -- CLI spec parsing ------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Build a plan from the CLI mini-language, e.g.
        ``seed=7,drop=0.02,die=3@500``.

        Keys: ``seed=N``, ``drop=P``, ``spike=P``, ``spike_extra=N``,
        ``jitter=P``, ``ackloss=P``, ``die=CORE@CYCLE`` (repeatable),
        ``timeout=N``, ``cap=N``, ``resends=N``, ``redispatch=0|1``,
        ``redispatch_latency=N``, ``start=CYCLE`` (plan inert before it).
        """
        kwargs: Dict[str, Any] = {}
        deaths: List[CoreDeath] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ReproError("bad --faults token %r (want key=value)"
                                 % token)
            key, _, value = token.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "die":
                    core_s, _, cycle_s = value.partition("@")
                    if not cycle_s:
                        raise ValueError("want CORE@CYCLE")
                    deaths.append(CoreDeath(core=int(core_s),
                                            cycle=int(cycle_s)))
                elif key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "drop":
                    kwargs["drop_rate"] = float(value)
                elif key == "spike":
                    kwargs["spike_rate"] = float(value)
                elif key == "spike_extra":
                    kwargs["spike_extra"] = int(value)
                elif key == "jitter":
                    kwargs["jitter_rate"] = float(value)
                elif key == "ackloss":
                    kwargs["ack_loss_rate"] = float(value)
                elif key == "timeout":
                    kwargs["retry_timeout"] = int(value)
                elif key == "cap":
                    kwargs["backoff_cap"] = int(value)
                elif key == "resends":
                    kwargs["max_resends"] = int(value)
                elif key == "redispatch":
                    kwargs["redispatch"] = bool(int(value))
                elif key == "redispatch_latency":
                    kwargs["redispatch_latency"] = int(value)
                elif key == "start":
                    kwargs["start_cycle"] = int(value)
                else:
                    raise ReproError("unknown --faults key %r" % key)
            except ValueError as exc:
                raise ReproError("bad --faults value %r for %s: %s"
                                 % (value, key, exc)) from None
        if deaths:
            kwargs["deaths"] = tuple(deaths)
        return cls(**kwargs)
