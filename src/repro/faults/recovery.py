"""Resilience mechanisms: retry/backoff, dedupe, section re-dispatch.

The :class:`FaultEngine` sits between a :class:`~repro.sim.processor.
Processor` and its :class:`~repro.faults.models.FaultPlan` and implements
the recovery protocols the plan's faults demand:

* **ack / timeout / re-send** — a dropped message is detected by the
  missing ack; the sender re-sends after a capped exponential backoff.
  Because every fault decision is a pure hash of its coordinates
  (:mod:`repro.faults.models`), the whole drop/retry ladder of one
  message is computable at send time, so it is modelled as *additive
  latency* on the hop: the sum of the backoff timeouts of the dropped
  attempts plus the final delivering flight.  Both schedulers therefore
  see identical delivery cycles without simulating per-attempt state.

* **idempotent re-send on ack loss** — a delivered message whose ack is
  lost is sent again; the receiver dedupes by request id.  The renaming
  protocol is idempotent by construction (filling a cell is a
  single-assignment event), so ack loss is pure accounting: a counted
  duplicate, no semantic effect.

* **fail-stop + section re-dispatch** — when a core dies, its open
  (incomplete) sections restart from their section-entry architectural
  snapshot on a live core.  This is sound *because renaming makes the
  run single-assignment* (the paper's §3 argument): a section's
  execution is a pure function of its entry register snapshot and the
  values its renaming requests return, so re-running it produces the
  same values.  The re-dispatched incarnation re-uses the unfilled
  destination cells of the dead incarnation (keyed by instruction index),
  so consumers that already hold references — forked children's
  snapshots, parked renaming requests — are eventually filled with the
  same single-assignment values.

The engine never imports :mod:`repro.sim` (the processor is duck-typed),
keeping the dependency one-way: sim -> faults.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import SimulationError
from .models import FaultPlan


class FaultStats:
    """Counters of injected faults and recovery work, identical across
    scheduler modes (they are driven from mode-identical decision
    points)."""

    __slots__ = ("drops", "retries", "backoff_cycles", "spike_count",
                 "spike_cycles", "jitter_cycles", "ack_losses",
                 "dup_sends_deduped", "deaths", "redispatches",
                 "replayed_instructions")

    def __init__(self) -> None:
        self.drops = 0                  #: message send attempts dropped
        self.retries = 0                #: re-sends after a timeout
        self.backoff_cycles = 0         #: cycles spent waiting for timeouts
        self.spike_count = 0            #: messages hit by a latency spike
        self.spike_cycles = 0           #: extra cycles those spikes added
        self.jitter_cycles = 0          #: core-cycles lost to fetch jitter
        self.ack_losses = 0             #: delivered messages whose ack died
        self.dup_sends_deduped = 0      #: duplicates dropped by rid dedupe
        self.deaths = 0                 #: cores fail-stopped
        self.redispatches = 0           #: sections restarted elsewhere
        self.replayed_instructions = 0  #: instructions fetched before death
        #                                  and thrown away (lost work)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class FaultEngine:
    """Runtime side of a :class:`FaultPlan`, owned by one Processor."""

    def __init__(self, proc: Any, plan: FaultPlan) -> None:
        self.proc = proc
        self.plan = plan
        self.stats = FaultStats()
        #: scheduled deaths not yet applied, soonest first
        self._deaths = sorted(plan.deaths, key=lambda d: (d.cycle, d.core))
        self.any_dead = False

    # ------------------------------------------------------------------
    # per-cycle hook (both run loops, right after the fold)
    # ------------------------------------------------------------------

    def begin_cycle(self, now: int) -> None:
        """Apply every scheduled death whose cycle has arrived."""
        while self._deaths and self._deaths[0].cycle <= now:
            death = self._deaths.pop(0)
            self._kill_core(self.proc.cores[death.core], now)

    def next_scheduled(self, now: int) -> Optional[int]:
        """Earliest future scheduled-fault cycle: bounds the event
        scheduler's all-parked cycle skip so a death is never jumped
        over."""
        if self._deaths:
            return max(self._deaths[0].cycle, now + 1)
        return None

    # ------------------------------------------------------------------
    # message perturbation (hop / DMH reply latency)
    # ------------------------------------------------------------------

    def perturb_hop(self, src: int, dst: int, now: int, base: int,
                    rid: int, sid: int) -> int:
        """Effective latency of a message on link src->dst sent at *now*
        whose fault-free flight is *base* cycles.

        Folds the whole deterministic drop/retry ladder into the return
        value: each dropped attempt costs its backoff timeout, then the
        delivering attempt pays base plus any latency spike.  After
        ``max_resends`` drops the send is forced through (escalation
        path), so delivery — hence simulator progress — is guaranteed.
        """
        plan = self.plan
        if now < plan.start_cycle:
            # Plan not yet active: gate the whole ladder on the *send*
            # cycle, including the ack-loss draw of a message that would
            # arrive after start_cycle — a message in flight across the
            # boundary must perturb identically in a warm-forked run,
            # whose snapshot predates the send.
            return base
        stats = self.stats
        tracer = self.proc.tracer
        # cycle-domain metrics log (repro.obs.metrics) — duck-typed via
        # getattr so this module keeps its no-sim-import rule
        metrics_log = getattr(self.proc, "metrics_faults", None)
        delay = 0
        attempt = 0
        while (attempt < plan.max_resends
               and plan.dropped(src, dst, now + delay, attempt)):
            wait = plan.retry_wait(attempt)
            stats.drops += 1
            stats.retries += 1
            stats.backoff_cycles += wait
            if metrics_log is not None:
                metrics_log.append((now + delay, "drop", src, dst))
                metrics_log.append((now + delay + wait, "retry", src, dst))
            if tracer is not None:
                tracer.emit(now + delay, "fault_injected", fault="drop",
                            rid=rid, src=src, dst=dst, attempt=attempt)
                tracer.emit(now + delay + wait, "msg_retry", rid=rid,
                            sid=sid, src=src, dst=dst,
                            attempt=attempt + 1, wait=wait)
            delay += wait
            attempt += 1
        extra = plan.spike_extra_at(src, dst, now + delay)
        if extra:
            stats.spike_count += 1
            stats.spike_cycles += extra
            if tracer is not None:
                tracer.emit(now + delay, "fault_injected", fault="spike",
                            rid=rid, src=src, dst=dst, extra=extra)
        total = delay + base + extra
        if plan.ack_lost(src, dst, now + total):
            # The message arrived but its ack did not: the sender re-sends
            # and the receiver drops the duplicate by request id.  The
            # renaming protocol is idempotent, so this is accounting only.
            stats.ack_losses += 1
            stats.dup_sends_deduped += 1
            if tracer is not None:
                tracer.emit(now + total, "fault_injected", fault="ack_loss",
                            rid=rid, src=src, dst=dst)
        return total

    def fetch_blocked(self, core: Any, now: int) -> bool:
        """Slow-core jitter: does *core*'s fetch stage lose cycle *now*?

        Only counted when the core actually has fetchable work — a parked
        core's skipped cycles must stay no-ops for the event scheduler to
        remain bit-identical to the naive loop.
        """
        if now < self.plan.start_cycle:
            return False
        if not self.plan.jittered(core.id, now):
            return False
        if not core._runnable_sections(now):
            return False
        self.stats.jitter_cycles += 1
        if self.proc.tracer is not None:
            self.proc.tracer.emit(now, "fault_injected", fault="jitter",
                                  core=core.id)
        return True

    # ------------------------------------------------------------------
    # fail-stop + re-dispatch
    # ------------------------------------------------------------------

    def _kill_core(self, core: Any, now: int) -> None:
        if core.dead:
            return
        # Close the pending occupancy span at the last cycle the core was
        # alive; from `now` on it is simply not accounted, exactly like
        # the naive loop which skips dead cores.
        if core._span_start is not None:
            core._close_span(now - 1)
        core.dead = True
        core.parked = True
        self.any_dead = True
        self.stats.deaths += 1
        if self.proc.tracer is not None:
            self.proc.tracer.emit(now, "core_dead", core=core.id)
        victims = sorted(core.open_secs, key=lambda s: s.order_index)
        if self.plan.redispatch:
            for sec in victims:
                self._redispatch(sec, core, now)
        # Without redispatch the victims stay marooned: the run either
        # completes (the dead core hosted nothing live) or exhausts the
        # cycle budget with a diagnostic naming the dead core.

    def _redispatch(self, sec: Any, dead_core: Any, now: int) -> None:
        target = self.pick_live_core()
        self.stats.replayed_instructions += len(sec.instructions)
        first_fetch = now + self.plan.redispatch_latency + 1
        dead_core.open_secs.remove(sec)
        dead_core.hosted.remove(sec)
        sec.redispatch_reset(target.id, first_fetch)
        target.hosted.append(sec)
        target.open_secs.append(sec)
        self.stats.redispatches += 1
        metrics_log = getattr(self.proc, "metrics_faults", None)
        if metrics_log is not None:
            metrics_log.append((now, "redispatch", dead_core.id, target.id))
        if self.proc.tracer is not None:
            self.proc.tracer.emit(now, "section_redispatch", sid=sec.sid,
                                  src=dead_core.id, dst=target.id,
                                  first_fetch=first_fetch)
        if target.parked:
            # Same contract as fork_section: schedule the time wake and
            # mark the span blocked from the cycle the work became
            # visible, so occupancy accounting matches the naive loop.
            self.proc.schedule_wake(first_fetch, target)
            if target._blocked_from is None or now < target._blocked_from:
                target._blocked_from = now

    def pick_live_core(self) -> Any:
        """Least-loaded live core (ties to the lowest id) — the failover
        placement."""
        live = [c for c in self.proc.cores if not c.dead]
        if not live:
            raise SimulationError("every core has fail-stopped — nothing "
                                  "left to run on")
        return min(live, key=lambda c: (len(c.open_secs), c.id))

    def live_core_from(self, core_id: int) -> int:
        """First live core at or after *core_id* (wrapping): keeps the
        round-robin and random placement policies off dead cores."""
        cores = self.proc.cores
        n = len(cores)
        for step in range(n):
            candidate = (core_id + step) % n
            if not cores[candidate].dead:
                return candidate
        raise SimulationError("every core has fail-stopped — nothing "
                              "left to run on")
