"""Chaos sweep: graceful-degradation curves over a fault grid.

Shared by ``repro chaos`` and ``benchmarks/bench_faults_sweep.py``: run
each workload fault-free, then across a (drop-rate x core-deaths) grid,
checking that every faulted run still produces **bit-identical
architectural results** (outputs + final memory) and recording how much
slower it got and how much recovery work it did.

Every simulation goes through the batch engine (:mod:`repro.runner`):
the fault-free bases are one batch, the grid cells another, so a
``pool_size`` fans the 90-cell E9 grid over worker processes and a
``cache`` makes an unchanged re-sweep execute zero simulations — the
records are built purely from job payloads and are bit-identical however
the jobs were scheduled or served.
"""

from __future__ import annotations

import hashlib
from typing import (TYPE_CHECKING, Any, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from ..errors import ReproError
from .models import CoreDeath, FaultPlan

if TYPE_CHECKING:   # runtime imports stay local (sim imports faults)
    from ..runner.engine import BatchReport
    from ..runner.job import Job
    from ..sim.config import SimConfig


def memory_digest(memory: Dict[int, int]) -> str:
    """Stable sha256 of a final-memory map (the golden tests' scheme)."""
    blob = ";".join("%d:%d" % (addr, memory[addr])
                    for addr in sorted(memory)).encode()
    return hashlib.sha256(blob).hexdigest()


def deaths_for(base_cycles: int, n_cores: int,
               count: int) -> List[CoreDeath]:
    """Deterministic death schedule: kill the *count* highest-numbered
    cores, spread across the fault-free run's midlife (faulted runs only
    get longer, so these cycles always land mid-run)."""
    deaths = []
    for k in range(count):
        cycle = max(1, base_cycles * (k + 1) // (count + 2))
        deaths.append(CoreDeath(core=n_cores - 1 - k, cycle=cycle))
    return deaths


def _grid_config(n_cores: int, scheduler: str,
                 plan: Optional[FaultPlan] = None) -> "SimConfig":
    from ..sim import SimConfig
    return SimConfig(n_cores=n_cores, stack_shortcut=True,
                     kernel=scheduler, faults=plan)


def _workload_programs(shorts: Sequence[str], scale: int,
                       data_seed: int) -> Tuple[Dict[str, str],
                                                Dict[str, int]]:
    """Canonical (fork-transformed) listings + dataset sizes, one compile
    per workload however many grid cells reuse it."""
    from ..fork import fork_transform
    from ..workloads import get_workload

    listings: Dict[str, str] = {}
    sizes: Dict[str, int] = {}
    for short in shorts:
        inst = get_workload(short).instance(scale=scale, seed=data_seed)
        sizes[short] = inst.n
        listings[short] = fork_transform(inst.program).listing()
    return listings, sizes


def _base_jobs(listings: Dict[str, str], shorts: Sequence[str],
               n_cores: int, scheduler: str) -> List["Job"]:
    """Fault-free reference jobs, one per workload."""
    from ..runner import Job

    return [Job(asm=listings[short],
                config=_grid_config(n_cores, scheduler),
                job_id="base:%s" % short)
            for short in shorts]


def _run_jobs(jobs: Sequence["Job"], pool_size: Optional[int],
              cache: Optional[Any]
              ) -> Tuple[List[Dict[str, Any]], "BatchReport"]:
    """Run a batch; raise (chaos contract) if any job failed."""
    from ..runner import run_batch

    report = run_batch(jobs, pool_size=pool_size, cache=cache)
    if not report.ok:
        worst = report.failures[0]
        raise ReproError("chaos sweep job %s failed: %s"
                         % (worst.job_id, worst.error))
    payloads: List[Dict[str, Any]] = []
    for outcome in report.outcomes:
        assert outcome.payload is not None   # report.ok guarantees it
        payloads.append(outcome.payload)
    return payloads, report


def _grid_plans(shorts: Sequence[str], drops: Iterable[float],
                death_counts: Iterable[int],
                base_cycles: Dict[str, int], n_cores: int,
                seed: int) -> List[Tuple[str, float, int, FaultPlan]]:
    cells: List[Tuple[str, float, int, FaultPlan]] = []
    for short in shorts:
        for drop in drops:
            for n_deaths in death_counts:
                plan = FaultPlan(
                    seed=seed, drop_rate=drop,
                    deaths=tuple(deaths_for(base_cycles[short], n_cores,
                                            n_deaths)))
                cells.append((short, drop, n_deaths, plan))
    return cells


def chaos_spec(shorts: Sequence[str], drops: Iterable[float],
               death_counts: Iterable[int], n_cores: int = 16,
               seed: int = 1234, scale: int = 0, data_seed: int = 1,
               scheduler: str = "event",
               pool_size: Optional[int] = None,
               cache: Optional[Any] = None) -> Dict[str, Any]:
    """A ``repro batch`` job spec covering the whole chaos grid.

    Runs the fault-free base phase first (death schedules depend on base
    cycle counts), then emits base + grid cells as concrete job entries
    whose configs embed the fault plans — feed the result to
    ``repro batch --jobs N`` to execute the E9 grid on a pool.
    """
    drops, death_counts = list(drops), list(death_counts)
    listings, _ = _workload_programs(shorts, scale, data_seed)
    base_jobs = _base_jobs(listings, shorts, n_cores, scheduler)
    payloads, _ = _run_jobs(base_jobs, pool_size, cache)
    base_cycles = {short: payloads[i]["cycles"]
                   for i, short in enumerate(shorts)}
    entries: List[Dict[str, Any]] = [
        {"id": "base:%s" % short, "workload": short,
         "scale": scale, "seed": data_seed,
         "config": _grid_config(n_cores, scheduler).to_dict()}
        for short in shorts]
    for short, drop, n_deaths, plan in _grid_plans(
            shorts, drops, death_counts, base_cycles, n_cores, seed):
        entries.append({
            "id": "chaos:%s:drop=%.3f:deaths=%d" % (short, drop, n_deaths),
            "workload": short, "scale": scale, "seed": data_seed,
            "config": _grid_config(n_cores, scheduler, plan).to_dict(),
        })
    return {"jobs": entries}


def chaos_sweep(shorts: Sequence[str], drops: Iterable[float],
                death_counts: Iterable[int], n_cores: int = 16,
                seed: int = 1234, scale: int = 0, data_seed: int = 1,
                scheduler: str = "event",
                pool_size: Optional[int] = None,
                cache: Optional[Any] = None) -> Dict[str, Any]:
    """The degradation grid.  Returns a JSON-ready payload whose
    ``records`` carry, per (workload, drop, deaths) cell: cycles,
    slowdown vs fault-free, the fault/recovery counters, and whether the
    architectural results stayed bit-identical.  ``batch`` summarizes the
    engine's work (executed vs cache-served vs pool size)."""
    drops, death_counts = list(drops), list(death_counts)
    listings, sizes = _workload_programs(shorts, scale, data_seed)
    base_jobs = _base_jobs(listings, shorts, n_cores, scheduler)
    base_payloads, base_report = _run_jobs(base_jobs, pool_size, cache)
    base = dict(zip(shorts, base_payloads))

    cells = _grid_plans(shorts, drops, death_counts,
                        {s: base[s]["cycles"] for s in shorts},
                        n_cores, seed)
    from ..runner import Job
    grid_jobs = [Job(asm=listings[short],
                     config=_grid_config(n_cores, scheduler, plan),
                     job_id="chaos:%s:drop=%.3f:deaths=%d"
                            % (short, drop, n_deaths))
                 for short, drop, n_deaths, plan in cells]
    grid_payloads, grid_report = _run_jobs(grid_jobs, pool_size, cache)

    records: List[Dict[str, Any]] = []
    for (short, drop, n_deaths, _), payload in zip(cells, grid_payloads):
        stats = payload.get("fault_stats") or {}
        ref = base[short]
        records.append({
            "benchmark": short, "n": sizes[short],
            "drop_rate": drop, "deaths": n_deaths,
            "cycles": payload["cycles"],
            "base_cycles": ref["cycles"],
            "slowdown": payload["cycles"] / ref["cycles"],
            "retries": stats.get("retries", 0),
            "backoff_cycles": stats.get("backoff_cycles", 0),
            "redispatches": stats.get("redispatches", 0),
            "replayed_instructions":
                stats.get("replayed_instructions", 0),
            "identical": (payload["outputs"] == ref["outputs"]
                          and payload["memory_digest"]
                          == ref["memory_digest"]),
        })
    return {"n_cores": n_cores, "seed": seed, "scale": scale,
            "scheduler": scheduler, "workloads": list(shorts),
            "records": records,
            "batch": {
                "pool_size": grid_report.pool_size,
                "executed": base_report.executed + grid_report.executed,
                "cache_hits": (base_report.cache_hits
                               + grid_report.cache_hits),
                "wall_s": base_report.wall_s + grid_report.wall_s,
            }}


# ----------------------------------------------------------------------
# warm-start grid: fork every cell from one pre-fault snapshot
# ----------------------------------------------------------------------

def deaths_in_tail(base_cycles: int, start_cycle: int, n_cores: int,
                   count: int) -> List[CoreDeath]:
    """Death schedule confined to the ``(start_cycle, base_cycles]``
    tail, so one fault-free snapshot at *start_cycle* covers every
    death-count cell of a workload's grid row."""
    span = max(base_cycles - start_cycle, count + 2)
    deaths = []
    for k in range(count):
        cycle = start_cycle + max(1, span * (k + 1) // (count + 2))
        deaths.append(CoreDeath(core=n_cores - 1 - k, cycle=cycle))
    return deaths


def _summarize(result: Any) -> Dict[str, Any]:
    """The cell-identity fingerprint both execution paths are compared
    on: full architectural state plus the fault/recovery counters."""
    return {"cycles": result.cycles,
            "outputs": result.outputs,
            "final_regs": result.final_regs,
            "memory_digest": memory_digest(result.final_memory),
            "fault_stats": result.fault_stats}


def _warm_cells_forked(proc: Any, snap_cycle: int,
                       plans: Sequence[FaultPlan]
                       ) -> Optional[List[Dict[str, Any]]]:
    """Run one grid cell per *plan* by ``os.fork``-ing the restored
    processor — every child gets a copy-on-write view of the shared
    pre-fault state, so the per-cell cost is the faulted tail alone,
    with zero per-cell deserialization.  Returns None where fork is
    unavailable (the caller falls back to restore-per-cell)."""
    import os
    import pickle

    if not hasattr(os, "fork"):     # pragma: no cover - non-POSIX
        return None
    from ..snapshot import _attach_plan

    summaries: List[Dict[str, Any]] = []
    for plan in plans:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:                # pragma: no cover - child process
            status = 1
            try:
                os.close(read_fd)
                _attach_plan(proc, snap_cycle, plan)
                blob = pickle.dumps(_summarize(proc.run()))
                with os.fdopen(write_fd, "wb") as sink:
                    sink.write(blob)
                status = 0
            finally:
                os._exit(status)    # never unwind into the parent's stack
        os.close(write_fd)
        with os.fdopen(read_fd, "rb") as source:
            blob = source.read()
        _, exit_status = os.waitpid(pid, 0)
        if exit_status != 0 or not blob:
            raise ReproError("warm-start cell (fork) failed for plan %r"
                             % (plan,))
        summaries.append(pickle.loads(blob))
    return summaries


def warmstart_sweep(shorts: Sequence[str], drops: Iterable[float],
                    death_counts: Iterable[int], n_cores: int = 16,
                    seed: int = 1234, scale: int = 0, data_seed: int = 1,
                    scheduler: str = "event",
                    start_frac: float = 0.85) -> Dict[str, Any]:
    """The chaos grid again (E9 shape), but every cell forks from one
    pre-fault snapshot instead of replaying the deterministic prefix.

    Per workload: run fault-free once to learn the cycle count, capture
    a snapshot at ``start_frac`` of it (prefix-only, via
    :func:`repro.snapshot.capture_prefix`), restore it once, then fork
    every cell off the restored state (``os.fork`` copy-on-write; a
    restore-per-cell fallback keeps non-POSIX hosts working).  Cell
    plans are gated with ``start_cycle`` just past the snapshot
    (drops/ack losses and deaths all land in the tail) so the fork is
    provably sound (:meth:`FaultPlan.first_effect_cycle`).  Each cell is
    also replayed cold from cycle 0 under honest wall-clock timing and
    the two results are checked bit-identical (cycles, outputs, final
    registers, memory digest, fault counters).  ``summary.
    speedup_vs_replay`` is the grid-wide cold/warm wall ratio, with the
    per-workload capture + restore cost charged to the warm side.
    """
    from time import perf_counter

    from ..isa import assemble
    from ..sim import simulate
    from ..snapshot import capture_prefix, resume

    drops, death_counts = list(drops), list(death_counts)
    if not 0.0 < start_frac < 1.0:
        raise ReproError("start_frac must be in (0, 1), got %r"
                         % (start_frac,))
    listings, sizes = _workload_programs(shorts, scale, data_seed)
    programs = {short: assemble(listings[short]) for short in shorts}

    records: List[Dict[str, Any]] = []
    cold_wall = warm_wall = capture_wall = 0.0
    snapshot_bytes = 0
    for short in shorts:
        base_result, _ = simulate(programs[short],
                                  _grid_config(n_cores, scheduler))
        base = _summarize(base_result)
        start = max(1, int(base["cycles"] * start_frac))

        t0 = perf_counter()
        snap = capture_prefix(programs[short], start,
                              _grid_config(n_cores, scheduler))
        template = snap.restore()   # shared pre-fault state, forked per cell
        capture_wall += perf_counter() - t0
        snapshot_bytes += len(snap.to_bytes())

        plans = [FaultPlan(seed=seed, drop_rate=drop, start_cycle=start + 1,
                           deaths=tuple(deaths_in_tail(base["cycles"], start,
                                                       n_cores, n_deaths)))
                 for drop in drops for n_deaths in death_counts]

        t0 = perf_counter()
        warms = _warm_cells_forked(template, snap.cycle, plans)
        if warms is None:           # pragma: no cover - non-POSIX fallback
            warms = []
            for plan in plans:
                result, _ = resume(snap, faults=plan)
                warms.append(_summarize(result))
        cell_walls_warm = perf_counter() - t0
        warm_wall += cell_walls_warm
        per_cell_warm = cell_walls_warm / len(plans)

        for plan, warm in zip(plans, warms):
            t0 = perf_counter()
            cold, _ = simulate(
                programs[short],
                _grid_config(n_cores, scheduler,
                             FaultPlan.from_dict(plan.to_dict())))
            cell_cold = perf_counter() - t0
            cold_wall += cell_cold
            identical = (
                warm == _summarize(cold)
                and warm["outputs"] == base["outputs"]
                and warm["memory_digest"] == base["memory_digest"])
            stats = warm["fault_stats"] or {}
            records.append({
                "benchmark": short, "n": sizes[short],
                "drop_rate": plan.drop_rate, "deaths": len(plan.deaths),
                "start_cycle": start,
                "cycles": warm["cycles"],
                "base_cycles": base["cycles"],
                "slowdown": warm["cycles"] / base["cycles"],
                "retries": stats.get("retries", 0),
                "redispatches": stats.get("redispatches", 0),
                "cold_wall_s": cell_cold,
                "warm_wall_s": per_cell_warm,
                "speedup": (cell_cold / per_cell_warm
                            if per_cell_warm else 0.0),
                "identical": identical,
            })
    warm_total = warm_wall + capture_wall
    return {"n_cores": n_cores, "seed": seed, "scale": scale,
            "scheduler": scheduler, "start_frac": start_frac,
            "workloads": list(shorts), "records": records,
            "summary": {
                "cells": len(records),
                "cold_wall_s": cold_wall,
                "warm_wall_s": warm_wall,
                "capture_wall_s": capture_wall,
                "snapshot_bytes": snapshot_bytes,
                "all_identical": all(r["identical"] for r in records),
                "speedup_vs_replay": (cold_wall / warm_total
                                      if warm_total else 0.0),
            }}
