"""Chaos sweep: graceful-degradation curves over a fault grid.

Shared by ``repro chaos`` and ``benchmarks/bench_faults_sweep.py``: run
each workload fault-free, then across a (drop-rate x core-deaths) grid,
checking that every faulted run still produces **bit-identical
architectural results** (outputs + final memory) and recording how much
slower it got and how much recovery work it did.

Every simulation goes through the batch engine (:mod:`repro.runner`):
the fault-free bases are one batch, the grid cells another, so a
``pool_size`` fans the 90-cell E9 grid over worker processes and a
``cache`` makes an unchanged re-sweep execute zero simulations — the
records are built purely from job payloads and are bit-identical however
the jobs were scheduled or served.
"""

from __future__ import annotations

import hashlib
from typing import (TYPE_CHECKING, Any, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from ..errors import ReproError
from .models import CoreDeath, FaultPlan

if TYPE_CHECKING:   # runtime imports stay local (sim imports faults)
    from ..runner.engine import BatchReport
    from ..runner.job import Job
    from ..sim.config import SimConfig


def memory_digest(memory: Dict[int, int]) -> str:
    """Stable sha256 of a final-memory map (the golden tests' scheme)."""
    blob = ";".join("%d:%d" % (addr, memory[addr])
                    for addr in sorted(memory)).encode()
    return hashlib.sha256(blob).hexdigest()


def deaths_for(base_cycles: int, n_cores: int,
               count: int) -> List[CoreDeath]:
    """Deterministic death schedule: kill the *count* highest-numbered
    cores, spread across the fault-free run's midlife (faulted runs only
    get longer, so these cycles always land mid-run)."""
    deaths = []
    for k in range(count):
        cycle = max(1, base_cycles * (k + 1) // (count + 2))
        deaths.append(CoreDeath(core=n_cores - 1 - k, cycle=cycle))
    return deaths


def _grid_config(n_cores: int, scheduler: str,
                 plan: Optional[FaultPlan] = None) -> "SimConfig":
    from ..sim import SimConfig
    return SimConfig(n_cores=n_cores, stack_shortcut=True,
                     kernel=scheduler, faults=plan)


def _workload_programs(shorts: Sequence[str], scale: int,
                       data_seed: int) -> Tuple[Dict[str, str],
                                                Dict[str, int]]:
    """Canonical (fork-transformed) listings + dataset sizes, one compile
    per workload however many grid cells reuse it."""
    from ..fork import fork_transform
    from ..workloads import get_workload

    listings: Dict[str, str] = {}
    sizes: Dict[str, int] = {}
    for short in shorts:
        inst = get_workload(short).instance(scale=scale, seed=data_seed)
        sizes[short] = inst.n
        listings[short] = fork_transform(inst.program).listing()
    return listings, sizes


def _base_jobs(listings: Dict[str, str], shorts: Sequence[str],
               n_cores: int, scheduler: str) -> List["Job"]:
    """Fault-free reference jobs, one per workload."""
    from ..runner import Job

    return [Job(asm=listings[short],
                config=_grid_config(n_cores, scheduler),
                job_id="base:%s" % short)
            for short in shorts]


def _run_jobs(jobs: Sequence["Job"], pool_size: Optional[int],
              cache: Optional[Any]
              ) -> Tuple[List[Dict[str, Any]], "BatchReport"]:
    """Run a batch; raise (chaos contract) if any job failed."""
    from ..runner import run_batch

    report = run_batch(jobs, pool_size=pool_size, cache=cache)
    if not report.ok:
        worst = report.failures[0]
        raise ReproError("chaos sweep job %s failed: %s"
                         % (worst.job_id, worst.error))
    payloads: List[Dict[str, Any]] = []
    for outcome in report.outcomes:
        assert outcome.payload is not None   # report.ok guarantees it
        payloads.append(outcome.payload)
    return payloads, report


def _grid_plans(shorts: Sequence[str], drops: Iterable[float],
                death_counts: Iterable[int],
                base_cycles: Dict[str, int], n_cores: int,
                seed: int) -> List[Tuple[str, float, int, FaultPlan]]:
    cells: List[Tuple[str, float, int, FaultPlan]] = []
    for short in shorts:
        for drop in drops:
            for n_deaths in death_counts:
                plan = FaultPlan(
                    seed=seed, drop_rate=drop,
                    deaths=tuple(deaths_for(base_cycles[short], n_cores,
                                            n_deaths)))
                cells.append((short, drop, n_deaths, plan))
    return cells


def chaos_spec(shorts: Sequence[str], drops: Iterable[float],
               death_counts: Iterable[int], n_cores: int = 16,
               seed: int = 1234, scale: int = 0, data_seed: int = 1,
               scheduler: str = "event",
               pool_size: Optional[int] = None,
               cache: Optional[Any] = None) -> Dict[str, Any]:
    """A ``repro batch`` job spec covering the whole chaos grid.

    Runs the fault-free base phase first (death schedules depend on base
    cycle counts), then emits base + grid cells as concrete job entries
    whose configs embed the fault plans — feed the result to
    ``repro batch --jobs N`` to execute the E9 grid on a pool.
    """
    drops, death_counts = list(drops), list(death_counts)
    listings, _ = _workload_programs(shorts, scale, data_seed)
    base_jobs = _base_jobs(listings, shorts, n_cores, scheduler)
    payloads, _ = _run_jobs(base_jobs, pool_size, cache)
    base_cycles = {short: payloads[i]["cycles"]
                   for i, short in enumerate(shorts)}
    entries: List[Dict[str, Any]] = [
        {"id": "base:%s" % short, "workload": short,
         "scale": scale, "seed": data_seed,
         "config": _grid_config(n_cores, scheduler).to_dict()}
        for short in shorts]
    for short, drop, n_deaths, plan in _grid_plans(
            shorts, drops, death_counts, base_cycles, n_cores, seed):
        entries.append({
            "id": "chaos:%s:drop=%.3f:deaths=%d" % (short, drop, n_deaths),
            "workload": short, "scale": scale, "seed": data_seed,
            "config": _grid_config(n_cores, scheduler, plan).to_dict(),
        })
    return {"jobs": entries}


def chaos_sweep(shorts: Sequence[str], drops: Iterable[float],
                death_counts: Iterable[int], n_cores: int = 16,
                seed: int = 1234, scale: int = 0, data_seed: int = 1,
                scheduler: str = "event",
                pool_size: Optional[int] = None,
                cache: Optional[Any] = None) -> Dict[str, Any]:
    """The degradation grid.  Returns a JSON-ready payload whose
    ``records`` carry, per (workload, drop, deaths) cell: cycles,
    slowdown vs fault-free, the fault/recovery counters, and whether the
    architectural results stayed bit-identical.  ``batch`` summarizes the
    engine's work (executed vs cache-served vs pool size)."""
    drops, death_counts = list(drops), list(death_counts)
    listings, sizes = _workload_programs(shorts, scale, data_seed)
    base_jobs = _base_jobs(listings, shorts, n_cores, scheduler)
    base_payloads, base_report = _run_jobs(base_jobs, pool_size, cache)
    base = dict(zip(shorts, base_payloads))

    cells = _grid_plans(shorts, drops, death_counts,
                        {s: base[s]["cycles"] for s in shorts},
                        n_cores, seed)
    from ..runner import Job
    grid_jobs = [Job(asm=listings[short],
                     config=_grid_config(n_cores, scheduler, plan),
                     job_id="chaos:%s:drop=%.3f:deaths=%d"
                            % (short, drop, n_deaths))
                 for short, drop, n_deaths, plan in cells]
    grid_payloads, grid_report = _run_jobs(grid_jobs, pool_size, cache)

    records: List[Dict[str, Any]] = []
    for (short, drop, n_deaths, _), payload in zip(cells, grid_payloads):
        stats = payload.get("fault_stats") or {}
        ref = base[short]
        records.append({
            "benchmark": short, "n": sizes[short],
            "drop_rate": drop, "deaths": n_deaths,
            "cycles": payload["cycles"],
            "base_cycles": ref["cycles"],
            "slowdown": payload["cycles"] / ref["cycles"],
            "retries": stats.get("retries", 0),
            "backoff_cycles": stats.get("backoff_cycles", 0),
            "redispatches": stats.get("redispatches", 0),
            "replayed_instructions":
                stats.get("replayed_instructions", 0),
            "identical": (payload["outputs"] == ref["outputs"]
                          and payload["memory_digest"]
                          == ref["memory_digest"]),
        })
    return {"n_cores": n_cores, "seed": seed, "scale": scale,
            "scheduler": scheduler, "workloads": list(shorts),
            "records": records,
            "batch": {
                "pool_size": grid_report.pool_size,
                "executed": base_report.executed + grid_report.executed,
                "cache_hits": (base_report.cache_hits
                               + grid_report.cache_hits),
                "wall_s": base_report.wall_s + grid_report.wall_s,
            }}
