"""Chaos sweep: graceful-degradation curves over a fault grid.

Shared by ``repro chaos`` and ``benchmarks/bench_faults_sweep.py``: run
each workload fault-free, then across a (drop-rate x core-deaths) grid,
checking that every faulted run still produces **bit-identical
architectural results** (outputs + final memory) and recording how much
slower it got and how much recovery work it did.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Sequence

from .models import CoreDeath, FaultPlan


def memory_digest(memory: Dict[int, int]) -> str:
    """Stable sha256 of a final-memory map (the golden tests' scheme)."""
    blob = ";".join("%d:%d" % (addr, memory[addr])
                    for addr in sorted(memory)).encode()
    return hashlib.sha256(blob).hexdigest()


def deaths_for(base_cycles: int, n_cores: int,
               count: int) -> List[CoreDeath]:
    """Deterministic death schedule: kill the *count* highest-numbered
    cores, spread across the fault-free run's midlife (faulted runs only
    get longer, so these cycles always land mid-run)."""
    deaths = []
    for k in range(count):
        cycle = max(1, base_cycles * (k + 1) // (count + 2))
        deaths.append(CoreDeath(core=n_cores - 1 - k, cycle=cycle))
    return deaths


def chaos_sweep(shorts: Sequence[str], drops: Iterable[float],
                death_counts: Iterable[int], n_cores: int = 16,
                seed: int = 1234, scale: int = 0, data_seed: int = 1,
                scheduler: str = "event") -> Dict[str, Any]:
    """The degradation grid.  Returns a JSON-ready payload whose
    ``records`` carry, per (workload, drop, deaths) cell: cycles,
    slowdown vs fault-free, the fault/recovery counters, and whether the
    architectural results stayed bit-identical."""
    from ..fork import fork_transform
    from ..sim import SimConfig, simulate
    from ..workloads import get_workload

    event_driven = scheduler == "event"
    records: List[Dict[str, Any]] = []
    for short in shorts:
        inst = get_workload(short).instance(scale=scale, seed=data_seed)
        prog = fork_transform(inst.program)
        base, _ = simulate(prog, SimConfig(
            n_cores=n_cores, stack_shortcut=True,
            event_driven=event_driven))
        base_digest = memory_digest(base.final_memory)
        for drop in drops:
            for n_deaths in death_counts:
                plan = FaultPlan(
                    seed=seed, drop_rate=drop,
                    deaths=tuple(deaths_for(base.cycles, n_cores,
                                            n_deaths)))
                result, _ = simulate(prog, SimConfig(
                    n_cores=n_cores, stack_shortcut=True,
                    event_driven=event_driven, faults=plan))
                stats = result.fault_stats or {}
                records.append({
                    "benchmark": short, "n": inst.n,
                    "drop_rate": drop, "deaths": n_deaths,
                    "cycles": result.cycles,
                    "base_cycles": base.cycles,
                    "slowdown": result.cycles / base.cycles,
                    "retries": stats.get("retries", 0),
                    "backoff_cycles": stats.get("backoff_cycles", 0),
                    "redispatches": stats.get("redispatches", 0),
                    "replayed_instructions":
                        stats.get("replayed_instructions", 0),
                    "identical": (result.outputs == base.outputs
                                  and memory_digest(result.final_memory)
                                  == base_digest),
                })
    return {"n_cores": n_cores, "seed": seed, "scale": scale,
            "scheduler": scheduler, "workloads": list(shorts),
            "records": records}
