"""repro.faults — deterministic fault injection and resilient execution.

Public surface:

* :class:`~repro.faults.models.FaultPlan` (with :class:`LinkSpike` and
  :class:`CoreDeath`) — *what* goes wrong, attached to a run via
  :attr:`repro.sim.SimConfig.faults`;
* :class:`~repro.faults.recovery.FaultEngine` — *how* the simulator
  recovers (retry/backoff, rid dedupe, section re-dispatch);
* :func:`~repro.faults.sweep.chaos_sweep` — the degradation grid behind
  ``repro chaos`` and ``benchmarks/bench_faults_sweep.py``.

The contract (tests/faults/): any faulted run that completes is
bit-identical in outputs and final memory to the fault-free run, under
both schedulers — sequential consistency survives chaos.
"""

from .models import CoreDeath, FaultPlan, LinkSpike
from .recovery import FaultEngine, FaultStats
from .sweep import (chaos_spec, chaos_sweep, deaths_for, deaths_in_tail,
                    memory_digest, warmstart_sweep)

__all__ = ["CoreDeath", "FaultPlan", "LinkSpike", "FaultEngine",
           "FaultStats", "chaos_spec", "chaos_sweep", "deaths_for",
           "deaths_in_tail", "memory_digest", "warmstart_sweep"]
