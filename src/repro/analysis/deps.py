"""Whole-program section dependence graph and static speedup bound.

The paper distributes one sequential execution over sections (one per
``fork``), and values cross sections through exactly two channels: the
fork-time register copies and backward renaming requests (register and
memory).  This module lifts those channels to a *static* graph whose
nodes are the section entry points the program text can ever start a
section at — the program entry plus every fork's resume point — and
whose edges over-approximate every cross-section value flow:

``reg``
    Register flow resolved with reaching definitions over the
    interprocedural ``dataflow`` view: producer node *P* contains a
    definition of *r* that reaches consumer *C*'s entry, and *r* is
    (flow-view) live into *C* outside the fork-copied set.  These are
    the precise edges the renaming network's register requests follow.
``reg-forward`` (may)
    The simulator installs an *imported* register into the importing
    section's fetch register file (``core._rename_one``), so a request
    can be answered by a section that merely read *r*, never wrote it.
    A forward edge covers that forwarding: *r* is live into both *P*
    and *C*.  Documented may-edge — value provenance, not creation.
``fork-copy``
    Fork-copied registers live into *C* travel from the node whose
    region contains the creating fork as a fork-time snapshot, never
    as a request.
``mem`` (may)
    *P*'s region contains a store (dump-to-memory / stack stores /
    ``push``/``call``) and *C*'s region contains a load.  Memory is
    unrenamed beyond the MAAT walk, so store/load edges are may-alias
    by construction.
``mem-cache`` (implicit, documented)
    DMH line fills are cached into the MAATs of *every* section the
    request walk visited (``Processor._install_line``), so a memory
    request's dynamic producer can be any older section, including one
    that never touched the line's address.  Rather than materialising
    the complete graph, this edge class is implicit: a dynamic memory
    dependence not covered by an explicit ``mem`` edge is attributed to
    it (and counted against precision, never against soundness).

On top of the graph the module derives:

* a **static critical path** (heaviest chain through the SCC
  condensation of the explicit edges, weighted by per-node work) and a
  **core-pressure profile** (how many sections each node spawns) — the
  diagnostics the DSE layer wants;
* an analytic Amdahl-style **speedup bound**: with ``T1`` total dynamic
  instructions and ``L_max`` the longest single section (both from one
  cheap functional :class:`~repro.machine.forked.ForkedMachine` run —
  no cycle simulation), the simulator can never beat

      cycles(N) >= max(ceil(L_max / fetch_width),
                       ceil(T1 / (min(N, sections) * retire_width)))

  because one core fetches a section's instructions at most
  ``fetch_width`` per cycle and at most ``min(N, sections)`` cores ever
  retire.  ``bound(N) = T1 / that`` therefore dominates the measured
  speedup ``instructions / cycles(N)`` — an O(1) arithmetic query per
  design point.  The static critical path deliberately does **not**
  tighten the bound: may-edges over-approximate, and subtracting an
  over-approximation would break soundness.

:func:`validate_deps` proves the graph differentially: every dependence
PR 2's event stream observes (a renaming request answered by another
section) must be covered by an explicit edge or a documented may-edge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, FrozenSet, Iterable, List,
                    Optional, Sequence, Set, Tuple)

from ..isa.program import Program
from ..isa.registers import FORK_COPIED_REGS
from .cfg import CFG
from .dataflow import Liveness, ReachingDefs, liveness

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import SimConfig

#: explicit edge kinds, in rendering order
DEP_EDGE_KINDS = ("reg", "reg-forward", "fork-copy", "mem")

#: format version of :meth:`SectionDepGraph.to_json_dict`
DEPS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class DepEdge:
    """One static dependence edge between section nodes.

    ``src``/``dst`` are node entry addresses; ``what`` is the register
    name for the register kinds and ``"*"`` for memory.  ``may`` marks
    the documented over-approximating kinds.
    """

    src: int
    dst: int
    kind: str
    what: str
    may: bool

    def describe(self) -> str:
        flag = " (may)" if self.may else ""
        return "%d -> %d [%s %s]%s" % (self.src, self.dst, self.kind,
                                       self.what, flag)


@dataclass
class SectionNode:
    """One static section entry point.

    ``region`` is the set of instruction addresses a section starting
    here may execute: reachability over the ``flow`` view, which follows
    calls and returns but never crosses into other sections (a ``fork``
    continues at its *target*; the resume point belongs to the child).
    """

    entry: int
    label: str
    fork_addr: Optional[int]       #: creating fork site (None for the root)
    region: FrozenSet[int]
    live_in: FrozenSet[str]        #: flow-view live registers at entry
    #: dynamic profile (attached by :func:`profile_program`)
    sections: int = 0              #: dynamic sections entering here
    instructions: int = 0          #: total dynamic instructions of those
    max_length: int = 0            #: longest single dynamic section

    @property
    def is_root(self) -> bool:
        return self.fork_addr is None

    @property
    def weight(self) -> int:
        """Work estimate: dynamic instructions when profiled, else the
        static region size."""
        return self.instructions if self.instructions else len(self.region)

    def describe(self) -> str:
        kind = "root" if self.is_root else "fork@%d" % self.fork_addr
        return "node @%d (%s, %s): region=%d live-in=%d" % (
            self.entry, self.label or "?", kind, len(self.region),
            len(self.live_in))


@dataclass(frozen=True)
class SpeedupBound:
    """Analytic speedup bound, queryable in microseconds.

    ``t1`` — total dynamic instructions; ``l_max`` — longest single
    section; ``sections`` — dynamic section count.  All three come from
    one functional profile run; :meth:`bound` is then pure arithmetic.
    """

    t1: int
    l_max: int
    sections: int
    fetch_width: int = 1
    retire_width: int = 1

    def min_cycles(self, n_cores: int) -> int:
        """A lower bound on the simulator's cycle count at *n_cores*."""
        if n_cores < 1:
            raise ValueError("need at least one core")
        if not self.t1:
            return 0
        span = -(-self.l_max // self.fetch_width)          # ceil division
        retiring = min(n_cores, self.sections) * self.retire_width
        throughput = -(-self.t1 // retiring)
        return max(span, throughput)

    def bound(self, n_cores: int) -> float:
        """Upper bound on ``instructions / cycles(n_cores)``."""
        floor = self.min_cycles(n_cores)
        return self.t1 / floor if floor else 0.0

    def table(self, core_counts: Iterable[int]) -> Dict[int, float]:
        return {n: self.bound(n) for n in core_counts}

    def describe(self) -> str:
        return ("speedup bound: T1=%d L_max=%d sections=%d -> "
                "bound(64)=%.2fx bound(256)=%.2fx"
                % (self.t1, self.l_max, self.sections,
                   self.bound(64), self.bound(256)))


class SectionDepGraph:
    """The whole-program section dependence graph of one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.cfg = CFG(program)
        self.flow: Liveness = liveness(self.cfg, "flow")
        self.rdefs = ReachingDefs(self.cfg)
        self.nodes: Dict[int, SectionNode] = {}
        self.edges: List[DepEdge] = []
        self._edge_index: Set[Tuple[int, int, str, str]] = set()
        self._build_nodes()
        self._build_edges()

    # -- construction -----------------------------------------------------

    def _flow_region(self, start: int) -> FrozenSet[int]:
        """Instructions a section starting at *start* may execute:
        reachability over the ``flow`` view (calls followed, returns
        over-approximated to every matching return site)."""
        seen: Set[int] = set()
        stack = [start]
        code_len = len(self.program.code)
        while stack:
            addr = stack.pop()
            if addr in seen or not 0 <= addr < code_len:
                continue
            seen.add(addr)
            for dst, _ in self.cfg.succs(addr, "flow"):
                if dst not in seen:
                    stack.append(dst)
        return frozenset(seen)

    def _node_label(self, entry: int, fork_addr: Optional[int]) -> str:
        label = self.program.label_of(entry)
        if label:
            return label
        name = self.cfg.function_of(entry)
        if fork_addr is None:
            return name or "entry"
        return "%s+%d" % (name, entry) if name else "@%d" % entry

    def _build_nodes(self) -> None:
        entries: List[Tuple[int, Optional[int]]] = [
            (self.program.entry, None)]
        for fork in self.cfg.fork_sites:
            resume = self.cfg.resume_of(fork)
            if resume is not None:
                entries.append((resume, fork))
        for entry, fork_addr in entries:
            if entry in self.nodes:      # entry colliding with a resume
                continue
            self.nodes[entry] = SectionNode(
                entry=entry,
                label=self._node_label(entry, fork_addr),
                fork_addr=fork_addr,
                region=self._flow_region(entry),
                live_in=self.flow.regs_in(entry))

    def _add_edge(self, src: int, dst: int, kind: str, what: str,
                  may: bool) -> None:
        key = (src, dst, kind, what)
        if key not in self._edge_index:
            self._edge_index.add(key)
            self.edges.append(DepEdge(src=src, dst=dst, kind=kind,
                                      what=what, may=may))

    def _build_edges(self) -> None:
        # per-node static def and read sets, for producer mapping
        code = self.program.code
        defs_in: Dict[int, Dict[str, List[int]]] = {}
        stores_in: Dict[int, bool] = {}
        loads_in: Dict[int, bool] = {}
        for entry, node in self.nodes.items():
            regs: Dict[str, List[int]] = {}
            stores = loads = False
            for addr in node.region:
                instr = code[addr]
                for reg in instr.reg_writes():
                    regs.setdefault(reg, []).append(addr)
                stores = stores or instr.writes_memory()
                loads = loads or instr.reads_memory()
            defs_in[entry] = regs
            stores_in[entry] = stores
            loads_in[entry] = loads

        for entry, node in self.nodes.items():
            requested = node.live_in - FORK_COPIED_REGS
            # -- register flow (precise + forwarding may-edges) -----------
            for reg in sorted(requested):
                reaching_addrs = {
                    d.addr for d in self.rdefs.reaching(entry, reg)
                    if not d.is_entry}
                entry_reaches = any(
                    d.is_entry for d in self.rdefs.reaching(entry, reg))
                for src_entry, src_node in self.nodes.items():
                    src_defs = defs_in[src_entry].get(reg, ())
                    if any(a in reaching_addrs for a in src_defs):
                        self._add_edge(src_entry, entry, "reg", reg,
                                       may=False)
                    elif src_defs or reg in src_node.live_in:
                        # the producer may forward a cached import or a
                        # non-reaching (but dynamically closest) write
                        self._add_edge(src_entry, entry, "reg-forward",
                                       reg, may=True)
                if entry_reaches:
                    # the machine-reset value lives in the root section's
                    # seeded register file
                    self._add_edge(self.program.entry, entry,
                                   "reg-forward", reg, may=True)
            # -- fork copies ----------------------------------------------
            if node.fork_addr is not None:
                for reg in sorted(node.live_in & FORK_COPIED_REGS):
                    for src_entry, src_node in self.nodes.items():
                        if node.fork_addr in src_node.region:
                            self._add_edge(src_entry, entry, "fork-copy",
                                           reg, may=False)
            # -- memory flow ----------------------------------------------
            if loads_in[entry]:
                for src_entry in self.nodes:
                    if stores_in[src_entry]:
                        self._add_edge(src_entry, entry, "mem", "*",
                                       may=True)

    # -- queries ----------------------------------------------------------

    def node(self, entry: int) -> SectionNode:
        return self.nodes[entry]

    def edges_between(self, src: int, dst: int) -> List[DepEdge]:
        return [e for e in self.edges if e.src == src and e.dst == dst]

    def covers_reg(self, src: int, dst: int, reg: str) -> Optional[str]:
        """Edge kind covering a dynamic register dependence, or None."""
        for kind in ("reg", "fork-copy", "reg-forward"):
            if (src, dst, kind, reg) in self._edge_index:
                return kind
        return None

    def covers_mem(self, src: int, dst: int) -> str:
        """Edge kind covering a dynamic memory dependence (never None:
        the implicit ``mem-cache`` class covers line-caching answers)."""
        if (src, dst, "mem", "*") in self._edge_index:
            return "mem"
        return "mem-cache"

    # -- critical path and core pressure ----------------------------------

    def _condense(self) -> Tuple[List[List[int]], Dict[int, int],
                                 Dict[int, Set[int]]]:
        """SCC condensation of the explicit edges (iterative Tarjan).

        Returns (components in topological order, node -> component id,
        component DAG successor sets)."""
        succs: Dict[int, List[int]] = {e: [] for e in self.nodes}
        for edge in self.edges:
            succs[edge.src].append(edge.dst)
        index: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        comps: List[List[int]] = []
        comp_of: Dict[int, int] = {}
        counter = [0]

        for root in self.nodes:
            if root in index:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, pos = work[-1]
                if pos == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                targets = succs[node]
                while pos < len(targets):
                    dst = targets[pos]
                    pos += 1
                    if dst not in index:
                        work[-1] = (node, pos)
                        work.append((dst, 0))
                        advanced = True
                        break
                    if dst in on_stack:
                        low[node] = min(low[node], index[dst])
                if advanced:
                    continue
                work.pop()
                if low[node] == index[node]:
                    comp: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        comp.append(member)
                        comp_of[member] = len(comps)
                        if member == node:
                            break
                    comps.append(comp)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        # Tarjan emits components in reverse topological order
        order = list(range(len(comps) - 1, -1, -1))
        remap = {old: new for new, old in enumerate(order)}
        comps = [comps[old] for old in order]
        comp_of = {n: remap[c] for n, c in comp_of.items()}
        dag: Dict[int, Set[int]] = {i: set() for i in range(len(comps))}
        for edge in self.edges:
            a, b = comp_of[edge.src], comp_of[edge.dst]
            if a != b:
                dag[a].add(b)
        return comps, comp_of, dag

    def critical_path(self) -> List[int]:
        """Heaviest chain of node entries through the condensation DAG,
        weighted by node work (profiled instructions when attached, else
        static region size).  Diagnostics only — may-edges make this an
        over-connected graph, so the chain is *not* a sound bound term."""
        if not self.nodes:
            return []
        comps, _comp_of, dag = self._condense()
        weight = [sum(self.nodes[n].weight for n in comp) for comp in comps]
        best = list(weight)
        nxt: List[Optional[int]] = [None] * len(comps)
        for i in range(len(comps) - 1, -1, -1):
            for j in dag[i]:
                if weight[i] + best[j] > best[i]:
                    best[i] = weight[i] + best[j]
                    nxt[i] = j
        start = max(range(len(comps)), key=lambda i: best[i])
        path: List[int] = []
        cursor: Optional[int] = start
        while cursor is not None:
            path.extend(sorted(comps[cursor]))
            cursor = nxt[cursor]
        return path

    def critical_path_weight(self) -> int:
        path = self.critical_path()
        return sum(self.nodes[n].weight for n in path)

    def core_pressure(self) -> Dict[int, Dict[str, int]]:
        """Per node: how much parallelism it can source.

        ``static_forks`` counts fork sites inside the node's region (the
        children one activation can spawn); ``sections`` and
        ``instructions`` are the dynamic profile when attached."""
        fork_sites = set(self.cfg.fork_sites)
        out: Dict[int, Dict[str, int]] = {}
        for entry, node in self.nodes.items():
            out[entry] = {
                "static_forks": len(node.region & fork_sites),
                "sections": node.sections,
                "instructions": node.instructions,
                "max_length": node.max_length,
            }
        return out

    # -- renderings -------------------------------------------------------

    def to_json_dict(self,
                     bound: Optional[SpeedupBound] = None,
                     core_counts: Sequence[int] = (2, 4, 16, 64, 256),
                     ) -> Dict[str, Any]:
        grouped: Dict[Tuple[int, int, str], List[str]] = {}
        for edge in self.edges:
            grouped.setdefault((edge.src, edge.dst, edge.kind),
                               []).append(edge.what)
        payload: Dict[str, Any] = {
            "schema_version": DEPS_SCHEMA_VERSION,
            "nodes": [
                {
                    "entry": node.entry,
                    "label": node.label,
                    "fork_addr": node.fork_addr,
                    "region_size": len(node.region),
                    "live_in": sorted(node.live_in),
                    "sections": node.sections,
                    "instructions": node.instructions,
                    "max_length": node.max_length,
                }
                for node in sorted(self.nodes.values(),
                                   key=lambda n: n.entry)
            ],
            "edges": [
                {"src": src, "dst": dst, "kind": kind,
                 "what": sorted(set(whats)),
                 "may": kind in ("reg-forward", "mem")}
                for (src, dst, kind), whats in sorted(grouped.items())
            ],
            "implicit_may_edges": [
                "mem-cache: DMH line fills are cached into every visited "
                "section's MAAT, so any older section may answer a memory "
                "request"],
            "critical_path": self.critical_path(),
            "critical_path_weight": self.critical_path_weight(),
            "core_pressure": {
                str(k): v for k, v in sorted(self.core_pressure().items())},
        }
        if bound is not None:
            payload["bound"] = {
                "t1": bound.t1,
                "l_max": bound.l_max,
                "sections": bound.sections,
                "fetch_width": bound.fetch_width,
                "retire_width": bound.retire_width,
                "speedup": {str(n): bound.bound(n) for n in core_counts},
            }
        return payload

    def to_json(self, bound: Optional[SpeedupBound] = None) -> str:
        return json.dumps(self.to_json_dict(bound), indent=2,
                          sort_keys=True)

    def to_dot(self) -> str:
        """Graphviz rendering: solid register edges, dashed forwarding,
        bold fork copies, dotted memory."""
        styles = {"reg": "solid", "reg-forward": "dashed",
                  "fork-copy": "bold", "mem": "dotted"}
        lines = ["digraph section_deps {", "  rankdir=LR;",
                 "  node [shape=box, fontname=monospace];"]
        for node in sorted(self.nodes.values(), key=lambda n: n.entry):
            shape = ', peripheries=2' if node.is_root else ""
            lines.append(
                '  n%d [label="%s\\n@%d  work=%d"%s];'
                % (node.entry, node.label, node.entry, node.weight, shape))
        grouped: Dict[Tuple[int, int, str], List[str]] = {}
        for edge in self.edges:
            grouped.setdefault((edge.src, edge.dst, edge.kind),
                               []).append(edge.what)
        for (src, dst, kind), whats in sorted(grouped.items()):
            label = ",".join(sorted(set(whats)))
            lines.append('  n%d -> n%d [style=%s, label="%s"];'
                         % (src, dst, styles[kind], label))
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        counts: Dict[str, int] = {k: 0 for k in DEP_EDGE_KINDS}
        for edge in self.edges:
            counts[edge.kind] += 1
        return ("section deps: %d nodes, %d edges (%s), "
                "critical path %d node(s) / weight %d"
                % (len(self.nodes), len(self.edges),
                   " ".join("%s=%d" % kv for kv in counts.items()),
                   len(self.critical_path()),
                   self.critical_path_weight()))


def build_deps(program: Program) -> SectionDepGraph:
    """Convenience constructor (mirrors :func:`~repro.analysis.build_cfg`)."""
    return SectionDepGraph(program)


# -------------------------------------------------------------------------
# Profile: one cheap functional run attaches dynamic weights
# -------------------------------------------------------------------------


def profile_program(graph: SectionDepGraph,
                    max_steps: Optional[int] = None) -> SpeedupBound:
    """Run the functional :class:`ForkedMachine` once and attach the
    dynamic profile (section counts and lengths per node); returns the
    :class:`SpeedupBound` derived from it.

    This is the *only* execution the bound needs — a functional replay,
    orders of magnitude cheaper than a cycle simulation, after which
    every ``bound(N)`` query is O(1) arithmetic.
    """
    from ..machine.forked import ForkedMachine
    kwargs = {} if max_steps is None else {"max_steps": max_steps}
    machine = ForkedMachine(graph.program, **kwargs)
    machine.run()
    total = 0
    longest = 0
    count = 0
    for node in graph.nodes.values():
        node.sections = 0
        node.instructions = 0
        node.max_length = 0
    for info in machine.section_table():
        node = graph.nodes.get(info.start_ip)
        if node is None:
            raise AssertionError(
                "dynamic section %d starts at %d, which is no static "
                "section entry" % (info.sid, info.start_ip))
        node.sections += 1
        node.instructions += info.length
        node.max_length = max(node.max_length, info.length)
        total += info.length
        longest = max(longest, info.length)
        count += 1
    return SpeedupBound(t1=total, l_max=longest, sections=count)


def analyze_program(program: Program,
                    max_steps: Optional[int] = None
                    ) -> Tuple[SectionDepGraph, SpeedupBound]:
    """Graph + profiled bound in one call (the CLI/benchmark entry)."""
    graph = SectionDepGraph(program)
    bound = profile_program(graph, max_steps=max_steps)
    return graph, bound


# -------------------------------------------------------------------------
# Differential validation against the simulator's event stream
# -------------------------------------------------------------------------


@dataclass(frozen=True)
class DepObservation:
    """One dynamic cross-section dependence, mapped to static nodes."""

    rid: int
    kind: str                    #: "reg" or "mem"
    what: str                    #: register name or hex address
    producer_entry: int
    consumer_entry: int
    covered_by: Optional[str]    #: edge kind, or None (soundness hole)

    @property
    def covered(self) -> bool:
        return self.covered_by is not None


@dataclass
class DepValidationReport:
    """Coverage of every observed dependence by the static graph."""

    program: Program
    graph: SectionDepGraph
    scheduler: str
    observations: List[DepObservation] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return all(obs.covered for obs in self.observations)

    @property
    def missed(self) -> List[DepObservation]:
        return [obs for obs in self.observations if not obs.covered]

    def coverage(self) -> Dict[str, int]:
        """Observed dependences per covering edge kind (``None`` keyed
        as ``"missed"``); precision = precise / total."""
        counts: Dict[str, int] = {}
        for obs in self.observations:
            key = obs.covered_by or "missed"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def precision(self) -> Tuple[int, int]:
        """(dependences on precise edges, total observed dependences).

        Precise means the non-may kinds: ``reg`` and ``fork-copy`` for
        registers, the explicit ``mem`` edge for memory."""
        precise = sum(1 for obs in self.observations
                      if obs.covered_by in ("reg", "fork-copy", "mem"))
        return precise, len(self.observations)

    def format(self) -> List[str]:
        lines = []
        for obs in self.missed:
            lines.append(
                "UNCOVERED r%d %s %s: producer @%d -> consumer @%d"
                % (obs.rid, obs.kind, obs.what, obs.producer_entry,
                   obs.consumer_entry))
        hit, total = self.precision()
        ratio = hit / total if total else 1.0
        cover = " ".join("%s=%d" % kv
                         for kv in sorted(self.coverage().items()))
        lines.append(
            "deps[%s]: %s, %d observed dependence(s), precise %d/%d "
            "(%.0f%%) [%s]"
            % (self.scheduler, "sound" if self.sound else "UNSOUND",
               total, hit, total, 100.0 * ratio, cover or "none"))
        return lines


def validate_deps(program: Program,
                  config: "Optional[SimConfig]" = None,
                  graph: Optional[SectionDepGraph] = None,
                  ) -> DepValidationReport:
    """Simulate with event tracing and check that every renaming request
    answered by another section is covered by a static dependence edge
    (or a documented may-edge class).

    DMH-answered requests carry no producer section and are skipped —
    they are the machine's memory, not a cross-section dependence.
    """
    from ..obs.events import collect_requests
    from ..sim import SimConfig, simulate
    if graph is None:
        graph = SectionDepGraph(program)
    if config is None:
        config = SimConfig(events=True)
    elif not config.events:
        import dataclasses
        config = dataclasses.replace(config, events=True)
    result, proc = simulate(program, config)
    entry_of = {sec.sid: sec.start_ip for sec in proc.sections}
    report = DepValidationReport(program=program, graph=graph,
                                 scheduler=config.kernel or "event")
    for rid, req in sorted(collect_requests(result.events or ()).items()):
        producer = req["producer"]
        if producer is None:            # answered by the DMH
            continue
        consumer_entry = entry_of[req["sid"]]
        producer_entry = entry_of[producer]
        if req["kind"] == "reg":
            reg = req["what"]
            covered = graph.covers_reg(producer_entry, consumer_entry, reg)
            what = str(reg)
        else:
            covered = graph.covers_mem(producer_entry, consumer_entry)
            what = "0x%x" % req["what"]
        report.observations.append(DepObservation(
            rid=rid, kind=req["kind"], what=what,
            producer_entry=producer_entry,
            consumer_entry=consumer_entry, covered_by=covered))
    return report
