"""Iterative dataflow over the fork-aware CFG.

All analyses use the classic worklist scheme over a powerset lattice of
the 17 architectural locations (:data:`~repro.isa.registers.ALL_REGS`),
encoded as int bitmasks so a transfer function is two bit operations.

Two twists relative to the textbook formulation, both forced by the
paper's section semantics:

* **Edge masks.**  Propagation along an edge is filtered by the edge
  kind.  ``endfork-resume`` edges (a finished section exporting its
  final state to the next section) carry only *non-copied* registers:
  the resume section took its copies of :data:`FORK_COPIED_REGS` at the
  fork, so a write to a copied register inside the forked region can
  never be observed after the matching ``endfork`` — it is dead there.
* **Multiple roots.**  Every fork resume point starts a section, so for
  the ``flow`` view the fixpoint is seeded from all of them, and the
  live-*in* set at a resume point is exactly the paper's
  live-across-fork set (the values that must travel into the new
  section as fork copies or backward renaming requests).
* **Fork kill sets.**  ``fork-resume`` edges are filtered by a backward
  *must-write* analysis (:func:`must_writes`): if the forked flow (the
  current section continuing at the fork target) writes a register on
  every path to its ``endfork``, that write interposes in the total
  order between the fork and the resume section, so the pre-fork value
  can never be the closest preceding write a resume-side read observes.

Reaching definitions run forward over the ``dataflow`` view with one
*entry pseudo-definition* per register (definition site ``ENTRY_DEF``),
modelling the machine's zero-initialised register file; a use reached
by a pseudo-def is a possibly-uninitialised read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..isa.registers import ALL_REGS, FORK_COPIED_REGS, RETURN_REG
from .cfg import CFG

#: bit index of each architectural location
REG_BIT: Dict[str, int] = {reg: i for i, reg in enumerate(ALL_REGS)}

#: mask with every location set
ALL_MASK = (1 << len(ALL_REGS)) - 1

#: mask of the fork-copied registers
COPIED_MASK = sum(1 << REG_BIT[r] for r in FORK_COPIED_REGS)

#: what an ``endfork-resume`` edge lets through
NONCOPIED_MASK = ALL_MASK & ~COPIED_MASK

#: pseudo definition site for "value present at machine reset"
ENTRY_DEF = -1


def mask_of(regs: Iterable[str]) -> int:
    """Encode a register collection as a bitmask."""
    mask = 0
    for reg in regs:
        mask |= 1 << REG_BIT[reg]
    return mask


def regs_of(mask: int) -> FrozenSet[str]:
    """Decode a bitmask back to register names."""
    return frozenset(reg for reg, bit in REG_BIT.items() if mask >> bit & 1)


def edge_mask(kind: str) -> int:
    """What the edge kind lets a backward liveness fact carry."""
    return NONCOPIED_MASK if kind == "endfork-resume" else ALL_MASK


@dataclass
class Liveness:
    """Per-instruction live-in / live-out bitmasks for one view."""

    view: str
    live_in: List[int]
    live_out: List[int]

    def regs_in(self, addr: int) -> FrozenSet[str]:
        return regs_of(self.live_in[addr])

    def regs_out(self, addr: int) -> FrozenSet[str]:
        return regs_of(self.live_out[addr])


def use_def_masks(cfg: CFG) -> Tuple[List[int], List[int]]:
    """(use, def) bitmasks per instruction, implicit operands included."""
    uses: List[int] = []
    defs: List[int] = []
    for instr in cfg.program.code:
        uses.append(mask_of(instr.reg_reads()))
        defs.append(mask_of(instr.reg_writes()))
    return uses, defs


def must_writes(cfg: CFG) -> List[int]:
    """Registers written on *every* ``flow`` path from each instruction to
    its section end (backward must-analysis, greatest fixpoint).

    ``MW[a] = def[a] | AND over flow successors MW[s]``; an instruction
    with no flow successors (``endfork``, ``hlt``, an unmatched ``ret``)
    contributes only its own defs.  Instructions trapped in a cycle with
    no terminating path keep the vacuous top value — a section that never
    ends has no resume-side observer.
    """
    n = len(cfg.program.code)
    _, defs = use_def_masks(cfg)
    mw = [ALL_MASK] * n
    changed = True
    while changed:
        changed = False
        for addr in range(n - 1, -1, -1):
            succs = cfg.succs(addr, "flow")
            inter = ALL_MASK if succs else 0
            for dst, _ in succs:
                inter &= mw[dst]
            new = defs[addr] | inter
            if new != mw[addr]:
                mw[addr] = new
                changed = True
    return mw


def fork_kill_masks(cfg: CFG, mw: "List[int] | None" = None) -> Dict[int, int]:
    """Per fork site, the registers whose pre-fork values can never be
    observed past the fork's resume point: :func:`must_writes` of the
    fork target.  Dataflow facts crossing a ``fork-resume`` edge are
    masked by the complement.

    Only *non-copied* registers can be killed: a fork-copied register
    reaches the resume section as a snapshot taken at the fork itself, so
    the forked flow's later writes never interpose for it.
    """
    if mw is None:
        mw = must_writes(cfg)
    out: Dict[int, int] = {}
    for fork in cfg.fork_sites:
        target = cfg.program.code[fork].target
        out[fork] = (mw[target] & NONCOPIED_MASK
                     if target is not None else 0)
    return out


def liveness(cfg: CFG, view: str = "dataflow") -> Liveness:
    """Backward may-liveness over *view*.

    ``live_in[a] = use[a] | (live_out[a] & ~def[a])`` with
    ``live_out[a] = U over edges (a -> d, k): edge_mask(k) & live_in[d]``.

    ``ret``, ``endfork``, and ``hlt`` additionally *use*
    :data:`~repro.isa.registers.RETURN_REG`: rax at an activation's end
    is its declared result slot — the caller (or the harness, at ``hlt``)
    may observe it even when no in-program path reads it, so a trailing
    ``return 0`` is never flagged dead just because every present caller
    discards the value.
    """
    n = len(cfg.program.code)
    uses, defs = use_def_masks(cfg)
    exit_mask = mask_of([RETURN_REG])
    for instr in cfg.program.code:
        if instr.kind in ("ret", "endfork", "hlt"):
            uses[instr.addr] |= exit_mask
    kills = fork_kill_masks(cfg) if view == "dataflow" else {}
    live_in = [0] * n
    live_out = [0] * n
    # seed with every instruction; order back-to-front converges fast on
    # the mostly-forward code the assembler produces
    work = list(range(n))
    in_work = [True] * n
    while work:
        addr = work.pop()
        in_work[addr] = False
        out = 0
        for dst, kind in cfg.succs(addr, view):
            carried = edge_mask(kind) & live_in[dst]
            if kind == "fork-resume":
                carried &= ~kills[addr]
            out |= carried
        live_out[addr] = out
        new_in = uses[addr] | (out & ~defs[addr])
        if new_in != live_in[addr]:
            live_in[addr] = new_in
            for pred, _ in cfg.preds(addr, view):
                if not in_work[pred]:
                    in_work[pred] = True
                    work.append(pred)
    return Liveness(view=view, live_in=live_in, live_out=live_out)


def live_across_forks(cfg: CFG,
                      flow: "Liveness | None" = None
                      ) -> Dict[int, FrozenSet[str]]:
    """Per fork site, the registers live into the resume section.

    This is the ``flow``-view live-in at the resume point: everything the
    new section may read before writing, i.e. the values that must arrive
    either as fork copies or as backward renaming requests.
    """
    if flow is None:
        flow = liveness(cfg, "flow")
    out: Dict[int, FrozenSet[str]] = {}
    for fork_addr in cfg.fork_sites:
        resume = cfg.resume_of(fork_addr)
        out[fork_addr] = (flow.regs_in(resume)
                          if resume is not None else frozenset())
    return out


@dataclass(frozen=True)
class Definition:
    """One definition site: instruction *addr* writing *reg*.

    ``addr == ENTRY_DEF`` is the pseudo-definition at machine reset.
    """

    addr: int
    reg: str

    @property
    def is_entry(self) -> bool:
        return self.addr == ENTRY_DEF


class ReachingDefs:
    """Forward reaching definitions over the ``dataflow`` view."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        code = cfg.program.code
        n = len(code)
        _, def_masks = use_def_masks(cfg)
        # enumerate definition sites; pseudo-defs first so their bit
        # indices equal the register bit indices
        self.defs: List[Definition] = [
            Definition(ENTRY_DEF, reg) for reg in ALL_REGS]
        for instr in code:
            for reg in sorted(instr.reg_writes()):
                self.defs.append(Definition(instr.addr, reg))
        self._def_bit: Dict[Definition, int] = {
            d: i for i, d in enumerate(self.defs)}
        defs_of_reg: Dict[str, int] = {reg: 0 for reg in ALL_REGS}
        for d, bit in self._def_bit.items():
            defs_of_reg[d.reg] |= 1 << bit
        # defs of copied registers do not cross endfork-resume edges: the
        # resume section's copies were taken at the fork, not the endfork
        self._noncopied_defs = 0
        for d, bit in self._def_bit.items():
            if d.reg not in FORK_COPIED_REGS:
                self._noncopied_defs |= 1 << bit
        # defs of registers the forked flow must-writes do not cross the
        # fork-resume edge: that write interposes in the total order
        self._fork_def_kill: Dict[int, int] = {}
        for fork, regmask in fork_kill_masks(cfg).items():
            bits = 0
            for reg in ALL_REGS:
                if regmask >> REG_BIT[reg] & 1:
                    bits |= defs_of_reg[reg]
            self._fork_def_kill[fork] = bits
        gen = [0] * n
        kill = [0] * n
        for instr in code:
            for reg in instr.reg_writes():
                bit = self._def_bit[Definition(instr.addr, reg)]
                gen[instr.addr] |= 1 << bit
                kill[instr.addr] |= defs_of_reg[reg] & ~(1 << bit)
        self.rd_in = [0] * n
        self.rd_out = [0] * n
        if not n:
            return
        entry = cfg.program.entry
        entry_mask = sum(
            1 << self._def_bit[Definition(ENTRY_DEF, reg)]
            for reg in ALL_REGS)
        self.rd_in[entry] = entry_mask
        self.rd_out[entry] = (entry_mask & ~kill[entry]) | gen[entry]
        work = [entry]
        in_work = [False] * n
        in_work[entry] = True
        self._reachable = {entry}
        while work:
            addr = work.pop()
            in_work[addr] = False
            out = self.rd_out[addr]
            for dst, kind in cfg.succs(addr, "dataflow"):
                if kind == "endfork-resume":
                    carried = out & self._noncopied_defs
                elif kind == "fork-resume":
                    carried = out & ~self._fork_def_kill[addr]
                else:
                    carried = out
                first = dst not in self._reachable
                self._reachable.add(dst)
                new_in = self.rd_in[dst] | carried
                if first or new_in != self.rd_in[dst]:
                    self.rd_in[dst] = new_in
                    self.rd_out[dst] = (new_in & ~kill[dst]) | gen[dst]
                    if not in_work[dst]:
                        in_work[dst] = True
                        work.append(dst)

    def reachable(self, addr: int) -> bool:
        """Is *addr* reachable from the program entry (dataflow view)?"""
        return addr in self._reachable

    def reaching(self, addr: int, reg: str) -> List[Definition]:
        """Definitions of *reg* that may reach the entry of *addr*."""
        mask = self.rd_in[addr]
        return [d for d, bit in self._def_bit.items()
                if d.reg == reg and mask >> bit & 1]

    def def_use_chains(self) -> Dict[Definition, List[Tuple[int, str]]]:
        """Each definition's possible uses as ``(use addr, reg)`` pairs."""
        chains: Dict[Definition, List[Tuple[int, str]]] = {
            d: [] for d in self.defs}
        for instr in self.cfg.program.code:
            if not self.reachable(instr.addr):
                continue
            for reg in instr.reg_reads():
                for d in self.reaching(instr.addr, reg):
                    chains[d].append((instr.addr, reg))
        return chains
