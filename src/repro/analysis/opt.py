"""Analysis-driven assembly optimizer: fork-mask-aware dead-store
elimination plus basic-block copy/immediate propagation.

Both passes reuse PR 3's dataflow facts, which already encode the
paper's section semantics — that is what makes them safe here when a
textbook x86 optimizer would not be:

* Liveness runs over the ``dataflow`` view, whose ``fork-resume`` edges
  (filtered by must-write kill sets) and masked ``endfork-resume``
  edges model *every* position a backward renaming request can observe
  a value from.  A register result is removed only when no such
  position exists — dead across sections, not merely dead in this one.
* Copy propagation is restricted to one basic block.  Blocks never
  span a control transfer (``fork`` included), so a substituted read
  executes in the same dynamic section as the copy it replaces, where
  source and destination provably hold the same value.

What is *deliberately* preserved:

* anything that writes memory, and ``push``/``pop``/``call``/``ret``
  (stack protocol), ``out`` (observable channel), ``cqo``/``idiv``
  (implicit register pairs), every control transfer;
* ``rsp`` results (the stack-chain serialisation the paper leans on);
* flag-setting stores whose flags are still live.

The rebuilt :class:`~repro.isa.program.Program` remaps addresses:
labels of a removed instruction reattach to the next kept one, control
operands are re-resolved through the same forward map, and the entry
point moves with it.  Removing an instruction a jump targets is safe
precisely because liveness is a property of the *location*: the merge
over all predecessors (the jump included) already said the result is
dead there.

The safety contract is **architectural identity**: identical output
stream, return value and final memory.  Final *registers* are excluded
by design — a dead value vanishing is the whole point.  The proof is
differential (tests/analysis/test_opt.py): the functional oracles and
all three simulator kernels, fault-free and under chaos plans, agree
bit-for-bit on the contract fields while committed cycles drop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..isa.instructions import Instruction
from ..isa.operands import Imm, LabelRef, Mem, Operand, Reg
from ..isa.program import Program
from ..isa.registers import STACK_POINTER
from .cfg import CFG
from .dataflow import ReachingDefs, liveness, mask_of

#: opcodes whose *source* position may legally hold an immediate (the
#: assembler grammar accepts ``$imm`` there, and the executor evaluates
#: it) — the whitelist immediate propagation is allowed to rewrite into
_IMM_SOURCE_OPCODES = frozenset(
    ("mov", "add", "sub", "and", "or", "xor", "imul", "cmp", "out",
     "push"))

#: opcodes never touched by dead-store elimination even when their
#: register result is dead (stack protocol, observable side effects,
#: implicit multi-register semantics)
_DSE_PROTECTED_KINDS = frozenset(
    ("push", "pop", "call", "ret", "cqo", "idiv", "out", "fork",
     "endfork", "jmp", "jcc", "hlt"))


@dataclass
class OptReport:
    """What one :func:`optimize_program` run did."""

    program: Program                       #: the rebuilt program
    original: Program
    iterations: int = 0
    copies_propagated: int = 0
    immediates_propagated: int = 0
    removed: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def removed_count(self) -> int:
        return len(self.removed)

    @property
    def changed(self) -> bool:
        return bool(self.removed or self.copies_propagated
                    or self.immediates_propagated)

    def describe(self) -> str:
        return ("optimizer: %d -> %d instruction(s) in %d pass(es) "
                "(%d dead store(s) removed, %d copy/%d immediate "
                "propagation(s))"
                % (len(self.original.code), len(self.program.code),
                   self.iterations, self.removed_count,
                   self.copies_propagated, self.immediates_propagated))


_Binding = Tuple[str, Union[str, int]]     # ("reg", src) | ("imm", value)


def _substitute(instr: Instruction, env: Dict[str, _Binding],
                ) -> Tuple[Optional[Instruction], int, int]:
    """Rewrite *instr*'s read-only operand positions through *env*.

    Returns (replacement instruction or None, copies used, immediates
    used).  Only explicit ``Reg`` sources and ``Mem`` address registers
    are rewritten; destinations — including read-modify-write ones —
    are never touched.
    """
    if not instr.operands:
        return None, 0, 0
    info = instr.info
    copies = imms = 0
    new_ops: List[Operand] = []
    changed = False
    last = len(instr.operands) - 1
    for i, op in enumerate(instr.operands):
        is_dest = info.writes_dest and i == last
        if isinstance(op, Reg) and not is_dest:
            binding = env.get(op.name)
            if binding is None:
                new_ops.append(op)
                continue
            kind, value = binding
            if kind == "reg":
                new_ops.append(Reg(str(value)))
                copies += 1
                changed = True
            elif (instr.opcode in _IMM_SOURCE_OPCODES and i == 0
                    and not (instr.opcode == "cmp"
                             and isinstance(instr.operands[1], Imm))):
                new_ops.append(Imm(int(value)))
                imms += 1
                changed = True
            else:
                new_ops.append(op)
        elif isinstance(op, Mem):
            base, index = op.base, op.index
            if base is not None and env.get(base, ("", 0))[0] == "reg":
                base = str(env[base][1])
            if index is not None and env.get(index, ("", 0))[0] == "reg":
                index = str(env[index][1])
            if (base, index) != (op.base, op.index):
                new_ops.append(Mem(disp=op.disp, base=base, index=index,
                                   scale=op.scale, symbol=op.symbol))
                copies += 1
                changed = True
            else:
                new_ops.append(op)
        else:
            new_ops.append(op)
    if not changed:
        return None, 0, 0
    replacement = Instruction(opcode=instr.opcode, operands=tuple(new_ops),
                              addr=instr.addr, labels=instr.labels,
                              source_line=instr.source_line)
    return replacement, copies, imms


def _propagate_block(code: List[Instruction], cfg: CFG,
                     ) -> Tuple[int, int]:
    """One local copy/immediate-propagation sweep; mutates *code* in
    place, returns (copies, immediates).

    The environment is carried along maximal fall-through chains and
    reset whenever an address can be reached any other way (jump
    target, call return site, fork resume, …): an address whose sole
    ``dataflow`` predecessor is the plain fall from the previous
    instruction is only ever executed with the environment's bindings
    holding, even when that predecessor is a not-taken branch."""
    copies = imms = 0
    env: Dict[str, _Binding] = {}
    for addr in range(len(code)):
        preds = cfg.preds(addr, "dataflow")
        if len(preds) != 1 or preds[0] != (addr - 1, "fall"):
            env = {}
        instr = code[addr]
        replacement, c, i = _substitute(instr, env)
        if replacement is not None:
            code[addr] = instr = replacement
            copies += c
            imms += i
        # kill every binding the instruction invalidates, then record a
        # fresh one for plain register/immediate moves
        written = instr.reg_writes()
        if written:
            for dst in list(env):
                binding = env[dst]
                if dst in written or (binding[0] == "reg"
                                      and binding[1] in written):
                    del env[dst]
        if (instr.opcode == "mov" and len(instr.operands) == 2
                and isinstance(instr.operands[1], Reg)):
            dest = instr.operands[1].name
            src = instr.operands[0]
            if isinstance(src, Reg) and src.name != dest:
                env[dest] = ("reg", src.name)
            elif isinstance(src, Imm) and src.symbol is None:
                env[dest] = ("imm", src.value)
    return copies, imms


def _dead_addrs(cfg: CFG) -> Set[int]:
    """Addresses whose register result (and flags, if written) no
    dataflow-view path ever reads — the fork-mask-aware dead set."""
    data = liveness(cfg, "dataflow")
    rdefs = ReachingDefs(cfg)
    flags_bit = mask_of(["rflags"])
    dead: Set[int] = set()
    code = cfg.program.code
    last = len(code) - 1
    for instr in code:
        addr = instr.addr
        if addr == last or not rdefs.reachable(addr):
            continue            # keep the final instruction as an anchor
        if instr.kind in _DSE_PROTECTED_KINDS:
            continue
        info = instr.info
        if not info.writes_dest or not instr.operands:
            continue
        if instr.writes_memory() or instr.reads_memory():
            continue            # stores are observable; loads stay to
            #                     keep this pass register-only
        dest = instr.operands[-1]
        if not isinstance(dest, Reg) or dest.name == STACK_POINTER:
            continue
        live_out = data.live_out[addr]
        if live_out & mask_of([dest.name]):
            continue
        if info.writes_flags and live_out & flags_bit:
            continue
        dead.add(addr)
    return dead


def _rebuild(original: Program, code: List[Instruction],
             dead: Set[int]) -> Program:
    """Drop *dead* addresses and rebuild a consistent program: forward
    address remapping for control targets, labels and symbols."""
    n = len(code)
    kept = [addr for addr in range(n) if addr not in dead]
    forward: List[int] = [0] * (n + 1)
    new_index = {old: new for new, old in enumerate(kept)}
    cursor = len(kept)
    for addr in range(n, -1, -1):
        if addr < n and addr in new_index:
            cursor = new_index[addr]
        forward[addr] = cursor

    new_code: List[Instruction] = []
    pending_labels: List[str] = []
    for addr in range(n):
        instr = code[addr]
        if addr in dead:
            pending_labels.extend(instr.labels)
            continue
        operands = tuple(
            LabelRef(op.name, forward[op.target])
            if isinstance(op, LabelRef) and op.target is not None else op
            for op in instr.operands)
        labels = tuple(dict.fromkeys(pending_labels + list(instr.labels)))
        pending_labels = []
        new_code.append(Instruction(
            opcode=instr.opcode, operands=operands,
            addr=len(new_code), labels=labels,
            source_line=instr.source_line))
    code_symbols = {name: forward[addr]
                    for name, addr in original.code_symbols.items()}
    return Program(code=new_code, data=dict(original.data),
                   code_symbols=code_symbols,
                   data_symbols=dict(original.data_symbols),
                   entry=forward[original.entry],
                   source=original.source)


def optimize_program(program: Program, max_passes: int = 8) -> OptReport:
    """Iterate propagation + dead-store elimination to a fixpoint.

    The input program is never mutated; every pass rebuilds analyses
    from scratch (propagation exposes new dead stores, removal exposes
    new copies) until a pass changes nothing or *max_passes* is hit.
    """
    current = program
    report = OptReport(program=program, original=program)
    for _ in range(max_passes):
        cfg = CFG(current)
        code = list(current.code)
        copies, imms = _propagate_block(code, cfg)
        if copies or imms:
            # re-analyse on the propagated code before judging deadness
            # (addresses are unchanged, so untouched instructions are
            # shared with the previous program)
            current = Program(code=code,
                              data=dict(current.data),
                              code_symbols=dict(current.code_symbols),
                              data_symbols=dict(current.data_symbols),
                              entry=current.entry, source=current.source)
            cfg = CFG(current)
            code = list(current.code)
        dead = _dead_addrs(cfg)
        report.iterations += 1
        report.copies_propagated += copies
        report.immediates_propagated += imms
        if not dead and not copies and not imms:
            break
        for addr in sorted(dead):
            report.removed.append((addr, str(code[addr])))
        current = _rebuild(current, code, dead)
    report.program = current
    return report
