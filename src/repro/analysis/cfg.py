"""Fork-aware control-flow graph over an assembled :class:`Program`.

The graph is built at instruction granularity and grouped into basic
blocks.  Because the paper's execution model threads *values* across
sections (renaming requests walk the total order backward), the CFG
exposes three *views* — three successor relations over the same code —
each matching one question the analyses ask:

``dataflow``
    Where may a value written here be consumed?  Contains the sequential
    edges plus ``call -> target``, ``ret -> return sites``, and the two
    fork-specific relations: ``fork -> target`` (the forking flow
    continues into the callee) **and** ``fork -> resume`` (the resume
    section observes pre-fork values through copies and renaming), plus
    ``endfork -> resume sites`` (a finished section's final register
    state is exported to the successor section — the cross-section
    producer->consumer forwarding of the paper).  ``endfork -> resume``
    edges are *masked*: fork-copied registers do not travel through them
    (the resume's copies were taken at the fork, not at the endfork).

``flow``
    Which instructions may *one section* execute?  A section starts at
    the program entry or at a fork's resume point and runs until an
    ``endfork``/``hlt``; at a ``fork`` the current section continues at
    the *target*, never at the resume point.  Liveness over this view at
    a resume point is exactly the paper's live-across-fork set: the
    values that must travel into the new section as fork copies or
    backward renaming requests.

``summary``
    Textual flow with calls summarised (``call -> fall-through``) and
    ``fork -> target``.  A walk over this view stays at one stack depth,
    which is what the fork/call protocol checks need: a ``ret`` reached
    from a fork target would pop a return address that no fork ever
    pushed.

Edges carry a *kind* so the solvers can mask what propagates along them
(see :data:`EDGE_KINDS`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..fork.transform import FunctionRegion, find_functions
from ..isa.program import Program

#: every edge kind a view may contain
EDGE_KINDS = (
    "fall",             # straight-line successor
    "branch",           # jmp / taken jcc
    "call",             # call -> callee entry
    "ret",              # ret -> return site of a matching call
    "call-summary",     # call -> fall-through (callee summarised away)
    "fork-target",      # fork -> callee entry (same section continues)
    "fork-resume",      # fork -> resume point (values cross by copy/renaming)
    "endfork-resume",   # endfork -> resume site (final state exported)
)

VIEWS = ("dataflow", "flow", "summary")

Edge = Tuple[int, str]  # (destination address, edge kind)


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions (dataflow view)."""

    bid: int
    start: int                       #: first instruction address
    end: int                         #: one past the last instruction
    function: str = ""               #: enclosing function region name

    def addrs(self) -> range:
        return range(self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start

    def describe(self) -> str:
        return "block %d [%d..%d) in %s" % (self.bid, self.start, self.end,
                                            self.function or "?")


class CFG:
    """Control-flow graph of one program, with the three views above."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.regions: List[FunctionRegion] = find_functions(program)
        self._region_of: Dict[int, FunctionRegion] = {}
        for region in self.regions:
            for addr in range(region.start, region.end):
                self._region_of[addr] = region
        #: fork instruction addresses, in code order
        self.fork_sites: List[int] = [
            i.addr for i in program.code if i.kind == "fork"]
        #: call instruction addresses, in code order
        self.call_sites: List[int] = [
            i.addr for i in program.code if i.kind == "call"]
        self._succs: Dict[str, List[List[Edge]]] = {
            view: [[] for _ in program.code] for view in VIEWS}
        self._preds: Dict[str, List[List[Edge]]] = {}
        self._summary_cache: Dict[int, FrozenSet[int]] = {}
        self._build_edges()
        self.blocks: List[BasicBlock] = []
        self.block_of: List[int] = []
        self._build_blocks()

    # -- construction -----------------------------------------------------

    def _build_edges(self) -> None:
        code = self.program.code
        n = len(code)
        for instr in code:
            addr = instr.addr
            kind = instr.kind
            dataflow: List[Edge] = []
            flow: List[Edge] = []
            summary: List[Edge] = []
            fall = addr + 1 if addr + 1 < n else None
            if kind == "jmp":
                edge = (instr.target, "branch")
                dataflow.append(edge)
                flow.append(edge)
                summary.append(edge)
            elif kind == "jcc":
                edge = (instr.target, "branch")
                dataflow.append(edge)
                flow.append(edge)
                summary.append(edge)
                if fall is not None:
                    for bag in (dataflow, flow, summary):
                        bag.append((fall, "fall"))
            elif kind == "call":
                edge = (instr.target, "call")
                dataflow.append(edge)
                flow.append(edge)
                if fall is not None:
                    summary.append((fall, "call-summary"))
            elif kind == "ret":
                pass  # ret edges need summary reach; added in pass two
            elif kind == "fork":
                edge = (instr.target, "fork-target")
                dataflow.append(edge)
                flow.append(edge)
                summary.append(edge)
                if fall is not None:
                    dataflow.append((fall, "fork-resume"))
            elif kind == "endfork":
                pass  # endfork edges need summary reach; added in pass two
            elif kind == "hlt":
                pass
            else:
                if fall is not None:
                    for bag in (dataflow, flow, summary):
                        bag.append((fall, "fall"))
            self._succs["dataflow"][addr] = dataflow
            self._succs["flow"][addr] = flow
            self._succs["summary"][addr] = summary
        # Pass two: ret and endfork edges target the sites of the calls
        # and forks that may have created the current activation, which
        # takes summary-view reachability — only available now that the
        # summary edges above exist.
        for addr, sites in self._return_sites().items():
            for site in sites:
                self._succs["dataflow"][addr].append((site, "ret"))
                self._succs["flow"][addr].append((site, "ret"))
        for addr, sites in self._resume_sites().items():
            for site in sites:
                self._succs["dataflow"][addr].append(
                    (site, "endfork-resume"))
        for view in VIEWS:
            preds: List[List[Edge]] = [[] for _ in code]
            for addr, edges in enumerate(self._succs[view]):
                for dst, ekind in edges:
                    preds[dst].append((addr, ekind))
            self._preds[view] = preds

    def _return_sites(self) -> Dict[int, List[int]]:
        """ret address -> possible return sites (call site + 1).

        A ``ret`` may execute under any function whose entry reaches it at
        the same stack depth (fall-through chains included), so the return
        sites are those of every such function's call sites.
        """
        code = self.program.code
        n = len(code)
        calls_of: Dict[Tuple[int, int], List[int]] = {}
        for addr in self.call_sites:
            region = self._region_of.get(code[addr].target)
            if region is not None and addr + 1 < n:
                calls_of.setdefault((region.start, region.end),
                                    []).append(addr + 1)
        out: Dict[int, List[int]] = {}
        for region in self.regions:
            sites = calls_of.get((region.start, region.end))
            if not sites:
                continue
            for addr in self._summary_reach(region.start):
                if code[addr].kind == "ret":
                    bag = out.setdefault(addr, [])
                    for site in sites:
                        if site not in bag:
                            bag.append(site)
        return out

    def _resume_sites(self) -> Dict[int, List[int]]:
        """endfork address -> resume sites of forks that may create the
        section ending here (mirrors :meth:`_return_sites` for forks)."""
        code = self.program.code
        n = len(code)
        out: Dict[int, List[int]] = {}
        for fork_addr in self.fork_sites:
            resume = fork_addr + 1
            if resume >= n:
                continue
            for addr in self._summary_reach(code[fork_addr].target):
                if code[addr].kind == "endfork":
                    bag = out.setdefault(addr, [])
                    if resume not in bag:
                        bag.append(resume)
        return out

    def _summary_reach(self, start: int) -> FrozenSet[int]:
        """Instructions reachable from *start* in the summary view (one
        stack depth: calls summarised, forks followed into their target)."""
        cached = self._summary_cache
        hit = cached.get(start)
        if hit is not None:
            return hit
        seen: Set[int] = set()
        stack = [start]
        while stack:
            addr = stack.pop()
            if addr in seen or not 0 <= addr < len(self.program.code):
                continue
            seen.add(addr)
            for dst, _ in self._succs["summary"][addr]:
                if dst not in seen:
                    stack.append(dst)
        result = frozenset(seen)
        cached[start] = result
        return result

    def _build_blocks(self) -> None:
        code = self.program.code
        n = len(code)
        if not n:
            return
        leaders: Set[int] = {0, self.program.entry}
        for addr, instr in enumerate(code):
            if instr.labels:
                leaders.add(addr)
            for dst, _ in self._succs["dataflow"][addr]:
                leaders.add(dst)
            if instr.is_control and addr + 1 < n:
                leaders.add(addr + 1)
        ordered = sorted(leaders)
        self.block_of = [0] * n
        for bid, start in enumerate(ordered):
            end = ordered[bid + 1] if bid + 1 < len(ordered) else n
            region = self._region_of.get(start)
            block = BasicBlock(bid=bid, start=start, end=end,
                               function=region.name if region else "")
            self.blocks.append(block)
            for addr in range(start, end):
                self.block_of[addr] = bid

    # -- queries ----------------------------------------------------------

    def succs(self, addr: int, view: str = "dataflow") -> List[Edge]:
        """Successor edges of the instruction at *addr* under *view*."""
        return self._succs[view][addr]

    def preds(self, addr: int, view: str = "dataflow") -> List[Edge]:
        """Predecessor edges of the instruction at *addr* under *view*."""
        return self._preds[view][addr]

    def resume_of(self, fork_addr: int) -> Optional[int]:
        """Resume point (the new section's entry) of the fork at *fork_addr*."""
        resume = fork_addr + 1
        return resume if resume < len(self.program.code) else None

    def function_of(self, addr: int) -> str:
        region = self._region_of.get(addr)
        return region.name if region is not None else ""

    def region_of(self, addr: int) -> Optional[FunctionRegion]:
        return self._region_of.get(addr)

    def flow_reach(self, start: int) -> FrozenSet[int]:
        """Instructions one section starting at *start* may execute
        (summary view reachability: calls summarised, forks followed)."""
        return self._summary_reach(start)

    def block(self, addr: int) -> BasicBlock:
        return self.blocks[self.block_of[addr]]

    def describe(self) -> str:
        lines = ["cfg: %d instructions, %d blocks, %d forks, %d calls"
                 % (len(self.program.code), len(self.blocks),
                    len(self.fork_sites), len(self.call_sites))]
        for blk in self.blocks:
            last = blk.end - 1
            edges = ", ".join(
                "%d(%s)" % (dst, kind)
                for dst, kind in self._succs["dataflow"][last])
            lines.append("  %s -> %s" % (blk.describe(), edges or "exit"))
        return "\n".join(lines)


def build_cfg(program: Program) -> CFG:
    """Convenience constructor (mirrors the other subsystem entry points)."""
    return CFG(program)
