"""Differential validation: static live-across sets vs. dynamic traces.

The soundness theorem behind the linter is:

    If a section reads register *r* before writing it, then *r* is in the
    ``flow``-view live-in set at the section's first instruction.

A section's dynamic execution follows exactly the edges of the ``flow``
view (fall/branch, ``call -> target``, ``ret -> return site``,
``fork -> target``), so any read-before-write the dynamics perform lies
on some static path — and may-liveness covers every static path.

This module checks that theorem against the two dynamic oracles:

* :func:`validate_machine` replays the functional :class:`ForkedMachine`
  trace and accumulates each section's read-before-write set directly
  from the architectural reads.
* :func:`validate_sim` runs the distributed cycle simulator with event
  tracing on and takes the ``request_issue`` events of kind ``"reg"`` —
  the registers a section *actually requested* through the renaming
  network (PR 2's event stream).  The simulator seeds each new section
  with its fork-copied registers, so requests only ever cover non-copied
  registers; the precision report compares against the matching slice of
  the prediction.

Soundness violations (a dynamic read the static set missed) are hard
failures; precision (how much of the prediction the dynamics exercised)
is reported but never fails — may-liveness is allowed to over-approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set,
                    Tuple)

from ..isa.program import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import SimConfig
from ..isa.registers import FORK_COPIED_REGS
from .cfg import CFG
from .dataflow import Liveness, liveness


@dataclass(frozen=True)
class SectionCheck:
    """One section's observed reads against the static prediction."""

    sid: int
    start_ip: int
    observed: FrozenSet[str]     #: registers dynamically read before write
    predicted: FrozenSet[str]    #: static flow live-in at ``start_ip``
    missed: FrozenSet[str]       #: observed - predicted (soundness holes)

    @property
    def sound(self) -> bool:
        return not self.missed


@dataclass
class ValidationReport:
    """All per-section checks for one program plus the shared analyses."""

    program: Program
    cfg: CFG
    flow: Liveness
    source: str                  #: "machine" or "sim"
    checks: List[SectionCheck]

    @property
    def sound(self) -> bool:
        return all(c.sound for c in self.checks)

    @property
    def missed(self) -> List[Tuple[int, str]]:
        """Every soundness hole as ``(sid, reg)``, in section order."""
        return [(c.sid, reg) for c in self.checks for reg in sorted(c.missed)]

    def precision(self) -> Tuple[int, int]:
        """(dynamically exercised, statically predicted) register counts,
        summed over sections.  Ratio 1.0 means the prediction is exact."""
        observed = sum(len(c.observed & c.predicted) for c in self.checks)
        predicted = sum(len(c.predicted) for c in self.checks)
        return observed, predicted

    def format(self) -> List[str]:
        lines = []
        for c in self.checks:
            status = "ok" if c.sound else "UNSOUND missing %s" % sorted(c.missed)
            lines.append(
                "section %d @%d: observed %d / predicted %d — %s"
                % (c.sid, c.start_ip, len(c.observed), len(c.predicted),
                   status))
        hit, total = self.precision()
        ratio = hit / total if total else 1.0
        lines.append(
            "%s: %s, precision %d/%d (%.0f%%) over %d section(s)"
            % (self.source, "sound" if self.sound else "UNSOUND",
               hit, total, 100.0 * ratio, len(self.checks)))
        return lines


def _build(program: Program) -> Tuple[CFG, Liveness]:
    cfg = CFG(program)
    return cfg, liveness(cfg, "flow")


def _check(sid: int, start_ip: int, observed: FrozenSet[str],
           predicted: FrozenSet[str]) -> SectionCheck:
    return SectionCheck(sid=sid, start_ip=start_ip, observed=observed,
                        predicted=predicted,
                        missed=observed - predicted)


def validate_machine(program: Program,
                     max_steps: Optional[int] = None) -> ValidationReport:
    """Replay the functional section machine and check every section's
    read-before-write set against the static flow live-in."""
    from ..machine.forked import ForkedMachine
    cfg, flow = _build(program)
    kwargs = {} if max_steps is None else {"max_steps": max_steps}
    machine = ForkedMachine(program, **kwargs)
    observed: Dict[int, Set[str]] = {}
    written: Dict[int, Set[str]] = {}
    for entry in machine.step_entries():
        sid = entry.section
        seen = written.setdefault(sid, set())
        first = observed.setdefault(sid, set())
        for reg in entry.reg_reads:
            if reg not in seen:
                first.add(reg)
        seen.update(entry.reg_writes)
    checks = [
        _check(info.sid, info.start_ip,
               frozenset(observed.get(info.sid, ())),
               flow.regs_in(info.start_ip))
        for info in machine.section_table()
    ]
    return ValidationReport(program=program, cfg=cfg, flow=flow,
                            source="machine", checks=checks)


def validate_sim(program: Program,
                 config: "Optional[SimConfig]" = None,
                 kernel: Optional[str] = None) -> ValidationReport:
    """Run the cycle simulator with event tracing and check the renaming
    requests each section issued (PR 2's event stream) against the static
    flow live-in.

    ``kernel`` selects the simulation kernel (``"naive"``, ``"event"``
    or ``"vector"``) so the theorem is provable against every kernel,
    not just the default scheduler; it overrides the kernel of an
    explicit *config*.

    The simulator satisfies fork-copied registers from the fork-time
    snapshot, so requests only cover non-copied registers; ``predicted``
    is restricted to that slice (for the root section, which is seeded
    with the whole architectural file, the predicted request set is
    empty).
    """
    import dataclasses
    from ..obs.events import collect_reg_requests
    from ..sim import SimConfig, simulate
    cfg, flow = _build(program)
    if config is None:
        config = SimConfig(events=True, kernel=kernel)
    else:
        if kernel is not None and config.kernel != kernel:
            config = dataclasses.replace(config, kernel=kernel)
        if not config.events:
            config = dataclasses.replace(config, events=True)
    result, proc = simulate(program, config)
    requested = collect_reg_requests(result.events or ())
    checks: List[SectionCheck] = []
    for sec in proc.sections:
        observed = requested.get(sec.sid, frozenset())
        if sec.sid == 1:
            predicted: FrozenSet[str] = frozenset()
        else:
            predicted = flow.regs_in(sec.start_ip) - FORK_COPIED_REGS
        checks.append(_check(sec.sid, sec.start_ip, observed, predicted))
    source = ("sim" if config.kernel in (None, "event")
              else "sim[%s]" % config.kernel)
    return ValidationReport(program=program, cfg=cfg, flow=flow,
                            source=source, checks=checks)
