"""Static dataflow analysis and fork-hazard linting over assembled programs.

The subsystem layers:

* :mod:`repro.analysis.cfg` — fork/endfork-aware control-flow graph with
  three successor views (``dataflow``, ``flow``, ``summary``);
* :mod:`repro.analysis.dataflow` — iterative liveness and reaching
  definitions over bitmask lattices, with edge-kind masking for the
  paper's section semantics;
* :mod:`repro.analysis.lint` — the hazard rules and ``repro lint`` report;
* :mod:`repro.analysis.validate` — differential checks of the static
  live-across-fork sets against the functional machine's trace and the
  cycle simulator's renaming-request event stream.

Typical use::

    from repro.analysis import lint_program, validate_machine

    report = lint_program(program)
    if report.failed:
        print("\\n".join(report.format("prog.s")))
    assert validate_machine(program).sound
"""

from .cfg import CFG, BasicBlock, build_cfg
from .dataflow import (
    Definition,
    Liveness,
    ReachingDefs,
    live_across_forks,
    liveness,
    mask_of,
    regs_of,
)
from .lint import FAILING, Finding, LintReport, lint_program
from .validate import (
    SectionCheck,
    ValidationReport,
    validate_machine,
    validate_sim,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "Definition",
    "FAILING",
    "Finding",
    "LintReport",
    "Liveness",
    "ReachingDefs",
    "SectionCheck",
    "ValidationReport",
    "build_cfg",
    "lint_program",
    "live_across_forks",
    "liveness",
    "mask_of",
    "regs_of",
    "validate_machine",
    "validate_sim",
]
