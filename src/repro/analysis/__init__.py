"""Static dataflow analysis and fork-hazard linting over assembled programs.

The subsystem layers:

* :mod:`repro.analysis.cfg` — fork/endfork-aware control-flow graph with
  three successor views (``dataflow``, ``flow``, ``summary``);
* :mod:`repro.analysis.dataflow` — iterative liveness and reaching
  definitions over bitmask lattices, with edge-kind masking for the
  paper's section semantics;
* :mod:`repro.analysis.lint` — the hazard rules and ``repro lint`` report;
* :mod:`repro.analysis.validate` — differential checks of the static
  live-across-fork sets against the functional machine's trace and the
  cycle simulator's renaming-request event stream (any kernel);
* :mod:`repro.analysis.deps` — the whole-program section dependence
  graph, static critical path / core pressure, the analytic speedup
  bound (``repro deps``) and its differential validation;
* :mod:`repro.analysis.opt` — the analysis-driven assembly optimizer
  (fork-mask-aware dead-store elimination + copy propagation) behind
  ``repro simulate --optimize``.

Typical use::

    from repro.analysis import lint_program, validate_machine

    report = lint_program(program)
    if report.failed:
        print("\\n".join(report.format("prog.s")))
    assert validate_machine(program).sound
"""

from .cfg import CFG, BasicBlock, build_cfg
from .dataflow import (
    Definition,
    Liveness,
    ReachingDefs,
    live_across_forks,
    liveness,
    mask_of,
    regs_of,
)
from .deps import (
    DepEdge,
    DepValidationReport,
    SectionDepGraph,
    SectionNode,
    SpeedupBound,
    analyze_program,
    build_deps,
    profile_program,
    validate_deps,
)
from .lint import FAILING, Finding, LintReport, lint_program
from .opt import OptReport, optimize_program
from .validate import (
    SectionCheck,
    ValidationReport,
    validate_machine,
    validate_sim,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "Definition",
    "DepEdge",
    "DepValidationReport",
    "FAILING",
    "Finding",
    "LintReport",
    "Liveness",
    "OptReport",
    "ReachingDefs",
    "SectionCheck",
    "SectionDepGraph",
    "SectionNode",
    "SpeedupBound",
    "ValidationReport",
    "analyze_program",
    "build_cfg",
    "build_deps",
    "lint_program",
    "live_across_forks",
    "liveness",
    "mask_of",
    "optimize_program",
    "profile_program",
    "regs_of",
    "validate_deps",
    "validate_machine",
    "validate_sim",
]
