"""Fork-hazard linter over the static analyses.

Hazard taxonomy (each finding carries one of these rule names):

``fork-ret-mix`` (error)
    The flow forked into a function reaches a ``ret``.  A ``fork`` pushes
    no return address, so that ``ret`` pops whatever the caller left on
    the stack and jumps to it.
``resume-ret-mix`` (error)
    The resume section of a fork reaches a ``ret``, and the enclosing
    function is itself only ever entered by fork (or never entered) —
    so no matching return address can be on the stack.  Suppressed for
    call-entered functions: there the resume legitimately returns with
    the caller's return address via memory renaming.
``uninit-read`` (warning)
    A register read may observe the machine-reset value (a reaching
    definition is the entry pseudo-def).  ``rsp`` is exempt (the machine
    initialises it) and so are ``push`` saves of a register (spilling a
    possibly-uninitialised callee-save register is standard idiom).
``dead-store`` (warning)
    A register result that no path ever reads.  Under the section model
    liveness crosses ``endfork`` only for non-copied registers, so this
    also catches values recomputed pointlessly before an ``endfork``.
``dead-save`` (warning)
    A ``push``/``pop`` pair bracketing a fork that the liveness-driven
    elision in :mod:`repro.fork.transform` could remove — the fork's
    register copies already preserve the value.
``fork-clobber`` (info)
    The forked flow may overwrite a fork-copied register that is live
    into the resume section.  The resume keeps its fork-time copy (by
    design), but a reader used to call/ret semantics may expect the
    callee's final value; the paper's own Figure 5 does this to ``rbx``,
    so this is informational.  ``rsp``/``rbp`` are exempt — re-deriving
    the frame is what every callee does.
``stack-serialization`` (info)
    Paper claim (iii): the resume section contains stack-pointer
    updates, whose rsp chain serialises it against its sibling sections
    unless the stack shortcut applies.  Reported with the count of rsp
    writers reachable by the resume flow.

Severity policy: ``error``/``warning`` findings fail ``repro lint``
(exit 1); ``info`` findings are advisory properties of the section
model, not defects, and never fail CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from ..isa.program import Program
from ..isa.registers import FORK_COPIED_REGS, RETURN_REG, STACK_POINTER
from .cfg import CFG
from .dataflow import (Liveness, ReachingDefs, live_across_forks, liveness,
                       mask_of)

SEVERITIES = ("error", "warning", "info")

#: severities that make ``repro lint`` fail
FAILING = frozenset(("error", "warning"))


@dataclass(frozen=True)
class Finding:
    """One linter finding, anchored at an instruction."""

    rule: str
    severity: str
    addr: int
    line: int              #: 1-based source line (0 when unknown)
    function: str
    message: str

    def format(self, path: str = "<program>") -> str:
        where = "%s:%d" % (path, self.line) if self.line else path
        return "%s: %s: [%s] %s" % (where, self.severity, self.rule,
                                    self.message)


@dataclass
class LintReport:
    """All findings for one program plus the analyses that produced them."""

    program: Program
    cfg: CFG
    findings: List[Finding]
    live_across: Dict[int, FrozenSet[str]]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def infos(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "info"]

    @property
    def failed(self) -> bool:
        return any(f.severity in FAILING for f in self.findings)

    def format(self, path: str = "<program>",
               show_info: bool = True) -> List[str]:
        lines = [f.format(path) for f in self.findings
                 if show_info or f.severity != "info"]
        lines.append("%s: %d error(s), %d warning(s), %d info note(s) "
                     "across %d fork site(s)"
                     % (path, len(self.errors), len(self.warnings),
                        len(self.infos), len(self.cfg.fork_sites)))
        return lines


def lint_program(program: Program) -> LintReport:
    """Run every hazard rule; findings come sorted by (addr, rule)."""
    cfg = CFG(program)
    flow = liveness(cfg, "flow")
    data = liveness(cfg, "dataflow")
    rdefs = ReachingDefs(cfg)
    across = live_across_forks(cfg, flow)
    findings: List[Finding] = []
    findings.extend(_protocol_mix(cfg))
    findings.extend(_uninit_reads(cfg, rdefs))
    findings.extend(_dead_stores(cfg, data, rdefs))
    findings.extend(_dead_saves(cfg))
    findings.extend(_fork_clobbers(cfg, across))
    findings.extend(_stack_serialization(cfg, across))
    findings.sort(key=lambda f: (f.addr, f.rule))
    return LintReport(program=program, cfg=cfg, findings=findings,
                      live_across=across)


def _finding(cfg: CFG, rule: str, severity: str, addr: int,
             message: str) -> Finding:
    instr = cfg.program.code[addr]
    return Finding(rule=rule, severity=severity, addr=addr,
                   line=instr.source_line, function=cfg.function_of(addr),
                   message=message)


def _protocol_mix(cfg: CFG) -> List[Finding]:
    code = cfg.program.code
    call_entered: Set[str] = set()
    for call in cfg.call_sites:
        region = cfg.region_of(code[call].target)
        if region is not None:
            call_entered.add(region.name)
    out: List[Finding] = []
    for fork in cfg.fork_sites:
        target = code[fork].target
        if target is None:
            continue
        for addr in sorted(cfg.flow_reach(target)):
            if code[addr].kind == "ret":
                out.append(_finding(
                    cfg, "fork-ret-mix", "error", fork,
                    "forked flow into %r reaches `ret` at addr %d (line %d)"
                    " — fork pushes no return address for it to pop"
                    % (cfg.function_of(target), addr,
                       code[addr].source_line)))
                break
        resume = cfg.resume_of(fork)
        if resume is None:
            continue
        region = cfg.region_of(fork)
        if region is None or region.name in call_entered:
            continue
        if region.start <= cfg.program.entry < region.end:
            continue  # the root section may ret into the halt sentinel
        for addr in sorted(cfg.flow_reach(resume)):
            if code[addr].kind == "ret":
                out.append(_finding(
                    cfg, "resume-ret-mix", "error", fork,
                    "resume section of this fork reaches `ret` at addr %d "
                    "but %r is never entered by call — no return address "
                    "exists" % (addr, region.name)))
                break
    return out


def _uninit_reads(cfg: CFG, rdefs: ReachingDefs) -> List[Finding]:
    out: List[Finding] = []
    for instr in cfg.program.code:
        if not rdefs.reachable(instr.addr) or instr.kind == "push":
            continue
        for reg in instr.reg_reads():
            if reg == STACK_POINTER:
                continue
            if any(d.is_entry for d in rdefs.reaching(instr.addr, reg)):
                out.append(_finding(
                    cfg, "uninit-read", "warning", instr.addr,
                    "`%s` may read %s before any write reaches it "
                    "(machine-reset value)" % (instr, reg)))
    return out


def _dead_stores(cfg: CFG, data: Liveness, rdefs: ReachingDefs
                 ) -> List[Finding]:
    from ..isa.operands import Reg
    flags_bit = mask_of(["rflags"])
    out: List[Finding] = []
    for instr in cfg.program.code:
        if not rdefs.reachable(instr.addr):
            continue
        if instr.kind in ("push", "pop", "call", "ret", "cqo", "idiv"):
            continue
        info = instr.info
        if not info.writes_dest or not instr.operands:
            continue
        dest = instr.operands[-1]
        if not isinstance(dest, Reg) or dest.name == STACK_POINTER:
            continue
        live_out = data.live_out[instr.addr]
        if live_out & mask_of([dest.name]):
            continue
        if info.writes_flags and live_out & flags_bit:
            continue  # the store is dead but its flags are not
        out.append(_finding(
            cfg, "dead-store", "warning", instr.addr,
            "`%s` writes %s but no path reads it" % (instr, dest.name)))
    return out


def _dead_saves(cfg: CFG) -> List[Finding]:
    from ..fork.transform import plan_save_elisions
    out: List[Finding] = []
    for action in plan_save_elisions(cfg.program):
        push = cfg.program.code[action.push_addr]
        out.append(_finding(
            cfg, "dead-save", "warning", action.push_addr,
            "`%s` (with the pop at addr %d) is a dead save across a fork: "
            "%s" % (push, action.pop_addr, action.describe())))
    return out


def _fork_clobbers(cfg: CFG,
                   across: Dict[int, FrozenSet[str]]) -> List[Finding]:
    code = cfg.program.code
    exempt = {STACK_POINTER, "rbp"}
    out: List[Finding] = []
    for fork in cfg.fork_sites:
        target = code[fork].target
        if target is None:
            continue
        reach = cfg.flow_reach(target)
        for reg in sorted((across[fork] & FORK_COPIED_REGS) - exempt):
            clobber = next(
                (a for a in sorted(reach)
                 if reg in code[a].reg_writes() and code[a].kind != "pop"),
                None)
            if clobber is not None:
                out.append(_finding(
                    cfg, "fork-clobber", "info", fork,
                    "%s is live into the resume section and the forked "
                    "flow may overwrite it (addr %d: `%s`); the resume "
                    "keeps its fork-time copy"
                    % (reg, clobber, code[clobber])))
    return out


def _stack_serialization(cfg: CFG,
                         across: Dict[int, FrozenSet[str]]) -> List[Finding]:
    code = cfg.program.code
    out: List[Finding] = []
    for fork in cfg.fork_sites:
        resume = cfg.resume_of(fork)
        if resume is None:
            continue
        writers = sum(1 for a in cfg.flow_reach(resume)
                      if STACK_POINTER in code[a].reg_writes())
        if writers:
            out.append(_finding(
                cfg, "stack-serialization", "info", fork,
                "resume section reaches %d rsp-writing instruction(s); the "
                "rsp chain serialises it against sibling sections unless "
                "the stack shortcut applies (paper claim iii)" % writers))
    return out


def exit_use_regs() -> FrozenSet[str]:
    """Registers treated as read at program exit (documented for tests)."""
    return frozenset({RETURN_REG})
