"""Exception hierarchy shared by every repro subsystem.

Keeping a single root (:class:`ReproError`) lets callers distinguish library
failures from genuine Python bugs with one ``except`` clause, while each
subsystem still raises a precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of all errors raised by the repro library."""


class AssemblerError(ReproError):
    """A source program could not be assembled.

    Carries the offending line number (1-based) when known.
    """

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class ExecutionError(ReproError):
    """A machine hit an illegal state while running a program."""


class MemoryError_(ExecutionError):
    """Bad memory access: misaligned, unmapped, or out of range."""


class CompileError(ReproError):
    """A MiniC program failed to compile.

    Carries the source position (line, column), both 1-based, when known.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.src_line = line
        self.src_col = col
        if line:
            message = "%d:%d: %s" % (line, col, message)
        super().__init__(message)


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""
