"""Exception hierarchy shared by every repro subsystem.

Keeping a single root (:class:`ReproError`) lets callers distinguish library
failures from genuine Python bugs with one ``except`` clause, while each
subsystem still raises a precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of all errors raised by the repro library."""


class AssemblerError(ReproError):
    """A source program could not be assembled.

    Carries the offending line number (1-based) when known.
    """

    def __init__(self, message: str, line: int = 0):
        self.line = line
        self.raw_message = message
        if line:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class ExecutionError(ReproError):
    """A machine hit an illegal state while running a program."""


class MemoryError_(ExecutionError):
    """Bad memory access: misaligned, unmapped, or out of range."""


class CompileError(ReproError):
    """A MiniC program failed to compile.

    Carries the source position (line, column), both 1-based, when known.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.src_line = line
        self.src_col = col
        self.raw_message = message
        if line:
            message = "%d:%d: %s" % (line, col, message)
        super().__init__(message)


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class SanitizerError(ExecutionError):
    """The runtime section sanitizer caught a renaming-invariant violation.

    Raised by :class:`~repro.machine.forked.ForkedMachine` in sanitize
    mode when a section reads a register that is neither written earlier
    in the same section nor in the static live-across set of the
    section's start — i.e. a read the renaming protocol was never asked
    to satisfy.  Carries the offending instruction address and source
    line when known.
    """

    def __init__(self, message: str, addr: int = -1, line: int = 0):
        self.addr = addr
        self.line = line
        super().__init__(message)
