"""Snapshot/restore of live simulator state — time travel for the sim.

The simulator is deterministic: a run is a pure function of (program,
config, initial registers).  That makes full-state checkpoints sound in a
way they never are for wall-clock systems — a snapshot captured at cycle
*k* and resumed later is provably bit-identical to the cold run on every
compared :class:`~repro.sim.stats.SimResult` field (events, metrics and
fault_stats included; tests/sim/test_snapshot_differential.py).

What a snapshot holds
---------------------

The *whole* live machine, captured between cycles: every core (pipeline
queues, register planes of all three kernels, occupancy spans), the
section tree with MAATs and per-section register frames, in-flight
renaming requests and NoC messages, the fold cursor, the placement RNG,
the event/vector kernels' park-wake heaps and lazy request agendas, and
— when a :class:`~repro.faults.FaultPlan` is attached — the fault
engine's cursor (deaths already applied, accumulated FaultStats).  The
capture is a deep serialization of the :class:`~repro.sim.processor.
Processor` object graph; nothing is reconstructed on restore, so resume
simply re-enters the run loop.

Wire format
-----------

``to_bytes`` emits a versioned binary envelope::

    b"RSNP" | u32 schema | u32 header_len | header JSON | zlib(state)

The header carries the checkpoint cycle, kernel, the full
``SimConfig.to_dict()`` provenance, a sha256 of the program listing and
a sha256 + length of the raw state so corruption fails loudly.  Blobs
are content-addressed payloads: ``ResultCache.put_blob`` keys them by
the sha256 of exactly these bytes.

The state payload is a pickle.  Restore only snapshots you produced —
the same trust model as any pickle-backed cache (the repo's ResultCache
job tier is JSON precisely because job specs cross trust boundaries;
snapshots do not).

Determinism contract
--------------------

Semantic, not byte-level: two captures of the same machine state may
differ in serialized bytes (hash-order containers), but ``restore`` +
``run`` is bit-identical to the cold run.  Capture labels that land
inside an event/vector all-parked cycle jump are materialized at the
next executed loop top with the cycle counter rewritten — sound because
the skipped cycles are provably no-ops.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Tuple, Union

from .errors import ReproError

if TYPE_CHECKING:     # pragma: no cover - import cycle guard (sim -> here)
    from .faults.models import FaultPlan
    from .isa.program import Program
    from .sim.config import SimConfig
    from .sim.processor import Processor
    from .sim.stats import SimResult

#: bump when the envelope layout or the captured object graph changes
#: incompatibly; readers reject other versions loudly
SNAPSHOT_SCHEMA_VERSION = 1

_MAGIC = b"RSNP"
_HEAD = struct.Struct(">II")    # schema version, header length


class SnapshotError(ReproError):
    """A snapshot could not be captured, decoded or resumed."""


def program_digest(program: "Program") -> str:
    """Content address of a program: sha256 of its canonical listing
    (the same round-trippable form the batch runner keys jobs by)."""
    return hashlib.sha256(program.listing().encode("utf-8")).hexdigest()


@dataclass
class Snapshot:
    """Full simulator state at the top of cycle ``cycle + 1``.

    ``state`` is the raw (uncompressed) pickle of the Processor graph;
    the envelope compresses it.  ``config`` is the run's
    ``SimConfig.to_dict()`` — provenance and resume-time validation,
    not a live object.
    """

    cycle: int
    kernel: str
    config: Dict[str, Any]
    program_sha: str
    state: bytes = field(repr=False)

    # -- capture -------------------------------------------------------

    @classmethod
    def capture(cls, proc: "Processor",
                cycle: Optional[int] = None) -> "Snapshot":
        """Serialize *proc* as a snapshot labelled *cycle* (default: the
        processor's current cycle).

        A label below the current cycle is only sound when every cycle
        in between was a no-op (the all-parked jump case); the run-loop
        hooks guarantee that — external callers should pass ``None``.
        The processor is left exactly as found: the label, the captured
        checkpoint list and the pending-checkpoint cursor are swapped in
        only for the duration of the pickle, so snapshots never nest
        and a restored run re-captures only *future* checkpoints.
        """
        label = proc.cycle if cycle is None else cycle
        if label > proc.cycle:
            raise SnapshotError(
                "cannot label a snapshot at future cycle %d "
                "(processor is at cycle %d)" % (label, proc.cycle))
        saved_cycle = proc.cycle
        saved_taken = proc.checkpoints
        saved_pending = proc._pending_checkpoints
        saved_abort = proc._abort_after_checkpoints
        proc.cycle = label
        proc.checkpoints = []
        proc._pending_checkpoints = [c for c in saved_pending if c > label]
        proc._abort_after_checkpoints = False
        try:
            state = pickle.dumps(proc, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:        # unpicklable state is a repo bug
            raise SnapshotError("failed to capture snapshot at cycle %d: %s"
                                % (label, exc)) from exc
        finally:
            proc.cycle = saved_cycle
            proc.checkpoints = saved_taken
            proc._pending_checkpoints = saved_pending
            proc._abort_after_checkpoints = saved_abort
        kernel = proc.cfg.kernel or "event"
        return cls(cycle=label, kernel=kernel, config=proc.cfg.to_dict(),
                   program_sha=program_digest(proc.program), state=state)

    # -- restore -------------------------------------------------------

    def restore(self) -> "Processor":
        """Deserialize the captured processor, ready to :meth:`~repro.
        sim.processor.Processor.run` (which continues from the captured
        cycle; see :func:`resume` for the validated entry point)."""
        try:
            proc = pickle.loads(self.state)
        except Exception as exc:
            raise SnapshotError("corrupt snapshot state: %s" % exc) from exc
        if getattr(proc, "cycle", None) != self.cycle:
            raise SnapshotError(
                "snapshot state is at cycle %r, envelope says %d"
                % (getattr(proc, "cycle", None), self.cycle))
        return proc

    # -- versioned binary envelope ------------------------------------

    def to_bytes(self) -> bytes:
        """Encode as the versioned binary envelope (see module docs)."""
        header = {
            "cycle": self.cycle,
            "kernel": self.kernel,
            "config": self.config,
            "program_sha": self.program_sha,
            "codec": "zlib",
            "state_sha256": hashlib.sha256(self.state).hexdigest(),
            "state_len": len(self.state),
        }
        blob = json.dumps(header, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return b"".join((_MAGIC,
                         _HEAD.pack(SNAPSHOT_SCHEMA_VERSION, len(blob)),
                         blob, zlib.compress(self.state, 6)))

    @classmethod
    def from_bytes(cls, data: bytes) -> "Snapshot":
        """Decode and integrity-check an envelope; rejects foreign magic,
        other schema versions and payloads whose digest does not match."""
        if len(data) < len(_MAGIC) + _HEAD.size or not data.startswith(_MAGIC):
            raise SnapshotError("not a repro snapshot (bad magic)")
        schema, header_len = _HEAD.unpack_from(data, len(_MAGIC))
        if schema != SNAPSHOT_SCHEMA_VERSION:
            raise SnapshotError(
                "snapshot schema v%d; this build reads v%d"
                % (schema, SNAPSHOT_SCHEMA_VERSION))
        start = len(_MAGIC) + _HEAD.size
        try:
            header = json.loads(data[start:start + header_len])
            state = zlib.decompress(data[start + header_len:])
        except (ValueError, zlib.error) as exc:
            raise SnapshotError("corrupt snapshot envelope: %s" % exc) \
                from exc
        if len(state) != header.get("state_len") or \
                hashlib.sha256(state).hexdigest() != header.get("state_sha256"):
            raise SnapshotError("snapshot state digest mismatch")
        return cls(cycle=int(header["cycle"]), kernel=str(header["kernel"]),
                   config=dict(header["config"]),
                   program_sha=str(header["program_sha"]), state=state)

    def key(self) -> str:
        """Content address of the envelope — the exact key
        ``ResultCache.put_blob(snap.to_bytes())`` files it under."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def save(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(self.to_bytes())
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Snapshot":
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            raise SnapshotError("cannot read snapshot %s: %s"
                                % (path, exc)) from exc
        return cls.from_bytes(data)


class _CaptureDone(Exception):
    """Internal: raised by the run-loop checkpoint hook to abandon a
    capture-only run (see :func:`capture_prefix`)."""


def capture_prefix(program: "Program", cycle: int,
                   config: Optional["SimConfig"] = None,
                   initial_regs: Optional[Dict[str, int]] = None,
                   ) -> Snapshot:
    """Run *program* just far enough to capture a snapshot at *cycle*
    and abandon the run — the cheap way to mint a warm-start point
    (paying the prefix, not the whole run).

    If the run finishes before *cycle*, the returned snapshot is the
    final state (same clamping as an over-long ``checkpoint_cycles``
    label).
    """
    import dataclasses

    from .sim.config import SimConfig
    from .sim.processor import Processor

    cfg = dataclasses.replace(config or SimConfig(),
                              checkpoint_cycles=(cycle,))
    if cfg.optimize:
        from .analysis.opt import optimize_program
        program = optimize_program(program).program
    if cfg.kernel == "vector":
        from .sim.vectorized import VectorProcessor
        proc: "Processor" = VectorProcessor(program, config=cfg,
                                            initial_regs=initial_regs)
    else:
        proc = Processor(program, config=cfg, initial_regs=initial_regs)
    proc._abort_after_checkpoints = True
    try:
        proc.run()
    except _CaptureDone:
        pass
    if not proc.checkpoints:    # pragma: no cover - defensive
        raise SnapshotError("no checkpoint captured at cycle %d" % cycle)
    return proc.checkpoints[0]


# ----------------------------------------------------------------------
# resume
# ----------------------------------------------------------------------

def _strip_overridables(config: Dict[str, Any]) -> Dict[str, Any]:
    """Config dict minus the knobs :func:`resume` may legally override."""
    stripped = dict(config)
    for name in ("faults", "checkpoint_cycles"):
        stripped.pop(name, None)
    return stripped


def _attach_plan(proc: "Processor", snap_cycle: int,
                 plan: "FaultPlan") -> None:
    """Attach *plan* to a restored fault-free processor (the chaos-grid
    warm fork).

    Sound only when the plan provably has no effect at or before the
    snapshot cycle: every fault decision is a pure hash gated by
    ``start_cycle`` / scheduled cycles, so a plan whose
    :meth:`~repro.faults.models.FaultPlan.first_effect_cycle` lies
    strictly beyond the snapshot behaves identically whether it was
    attached at cycle 0 or now.  Anything earlier is rejected — the
    cold run would have diverged before the capture point.
    """
    from .faults.recovery import FaultEngine
    plan.validate(proc.cfg.n_cores)
    if proc.fault_engine is not None:
        if proc.fault_engine.plan == plan:
            return      # same plan: keep the engine's captured cursor
        raise SnapshotError(
            "snapshot already carries a different fault plan; a faulted "
            "prefix cannot be re-faulted")
    first = plan.first_effect_cycle()
    if first <= snap_cycle:
        raise SnapshotError(
            "fault plan takes effect at cycle %s, at or before the "
            "snapshot cycle %d — fork from an earlier snapshot or gate "
            "the plan with start_cycle" % (first, snap_cycle))
    proc.cfg.faults = plan
    proc.fault_engine = FaultEngine(proc, plan)


def resume(snapshot: Snapshot, *, program: Optional["Program"] = None,
           config: Optional["SimConfig"] = None,
           faults: Optional["FaultPlan"] = None,
           checkpoint_cycles: Optional[Iterable[int]] = None,
           ) -> Tuple["SimResult", "Processor"]:
    """Continue *snapshot* to completion; returns ``(result, processor)``
    exactly like :func:`repro.sim.simulate`.

    *program* and *config*, when given, are cross-checked against the
    snapshot's provenance (listing digest; config dict modulo the two
    overridable knobs) so a snapshot can never silently resume under a
    different machine.  *faults* attaches a plan to a fault-free
    snapshot (validated via ``first_effect_cycle``); *checkpoint_cycles*
    re-arms future checkpoints — labels at or before the snapshot cycle
    are dropped, they already exist in the cold run's history.
    """
    if program is not None and program_digest(program) != snapshot.program_sha:
        raise SnapshotError(
            "program mismatch: snapshot was captured from a different "
            "listing (sha %s...)" % snapshot.program_sha[:12])
    if config is not None:
        mine = _strip_overridables(config.to_dict())
        theirs = _strip_overridables(snapshot.config)
        if mine != theirs:
            diff = sorted(k for k in set(mine) | set(theirs)
                          if mine.get(k) != theirs.get(k))
            raise SnapshotError(
                "config mismatch on %s: a snapshot only resumes under "
                "the machine that captured it (faults/checkpoint_cycles "
                "may be overridden)" % ", ".join(diff))
        if faults is None and config.faults is not None:
            faults = config.faults
        if checkpoint_cycles is None and config.checkpoint_cycles:
            checkpoint_cycles = config.checkpoint_cycles
    proc = snapshot.restore()
    if faults is not None:
        _attach_plan(proc, snapshot.cycle, faults)
    if checkpoint_cycles is not None:
        proc._pending_checkpoints = sorted(
            {int(c) for c in checkpoint_cycles if int(c) > snapshot.cycle})
    result = proc.run()
    return result, proc


__all__ = ["SNAPSHOT_SCHEMA_VERSION", "Snapshot", "SnapshotError",
           "capture_prefix", "program_digest", "resume"]
