"""Seeded dataset generators shared by the workloads.

Everything is deterministic in (n, seed) so traces, oracles and benchmark
numbers are reproducible run to run.
"""

from __future__ import annotations

import random
from typing import List, Tuple


def rng(n: int, seed: int) -> random.Random:
    return random.Random((seed * 1_000_003) ^ n)


def random_values(n: int, seed: int, lo: int = 0, hi: int = 1 << 20) -> List[int]:
    r = rng(n, seed)
    return [r.randrange(lo, hi) for _ in range(n)]


def random_keys(n: int, seed: int, universe_factor: int = 2) -> List[int]:
    """Keys with deliberate duplicates (universe ~ n/universe_factor...n*2)."""
    r = rng(n, seed)
    universe = max(4, n * 2 // max(1, universe_factor))
    return [r.randrange(universe) for _ in range(n)]


def random_graph_csr(n: int, seed: int,
                     avg_degree: int = 3) -> Tuple[List[int], List[int]]:
    """Undirected random graph in CSR form: (offsets[n+1], adjacency).

    Degree-bounded Erdős–Rényi-style: avg_degree*n/2 undirected edges,
    self-loops excluded, duplicates allowed (the algorithms tolerate them).
    A Hamiltonian-ish backbone keeps the graph mostly connected so BFS
    reaches most vertices.
    """
    r = rng(n, seed)
    adjacency = [[] for _ in range(n)]
    for v in range(1, n):
        u = r.randrange(v)          # backbone: attach to an earlier vertex
        adjacency[u].append(v)
        adjacency[v].append(u)
    extra = max(0, (avg_degree - 2) * n // 2)
    for _ in range(extra):
        u = r.randrange(n)
        v = r.randrange(n)
        if u != v:
            adjacency[u].append(v)
            adjacency[v].append(u)
    offsets = [0]
    flat: List[int] = []
    for v in range(n):
        flat.extend(adjacency[v])
        offsets.append(len(flat))
    return offsets, flat


def random_edge_list(n: int, seed: int,
                     m_factor: int = 3) -> List[Tuple[int, int, int]]:
    """Weighted edge list (u, v, w) over n vertices, connected backbone."""
    r = rng(n, seed)
    edges: List[Tuple[int, int, int]] = []
    for v in range(1, n):
        edges.append((r.randrange(v), v, r.randrange(1, 1 << 16)))
    for _ in range(max(0, (m_factor - 1) * n)):
        u = r.randrange(n)
        v = r.randrange(n)
        if u != v:
            edges.append((u, v, r.randrange(1, 1 << 16)))
    return edges


def random_points(n: int, seed: int, span: int = None) -> Tuple[List[int], List[int]]:
    """2D integer points in a square of side ~4*sqrt(n) (dense grid)."""
    r = rng(n, seed)
    if span is None:
        span = max(8, 4 * int(n ** 0.5))
    xs = [r.randrange(span) for _ in range(n)]
    ys = [r.randrange(span) for _ in range(n)]
    return xs, ys
