"""Table 1 workloads 02 and 05: comparison sort and integer sort.

* ``02 comparisonSort/quickSort`` — recursive Hoare-partition quicksort.
* ``05 integerSort/blockRadixSort`` — LSD radix sort, 4-bit digits.

Both emit the same two-value certificate: a sortedness flag and a
position-weighted checksum of the sorted array, which depends only on the
multiset of inputs — so any correct sort produces the oracle's output.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Workload, render_array
from .generators import random_values
from .snippets import TREE_COPY, TREE_FILL, TREE_SCAN

_CHECK_MOD = 1_000_000_007

#: tree-reduction sortedness/checksum certificate (log-depth chains)
_CERT = """
long cert_sorted(long* a, long lo, long hi) {
    if (hi - lo == 1) return lo == 0 || a[lo - 1] <= a[lo] ? 1 : 0;
    long mid = lo + (hi - lo) / 2;
    return cert_sorted(a, lo, mid) & cert_sorted(a, mid, hi);
}

long cert_sum(long* a, long lo, long hi) {
    if (hi - lo == 1) return a[lo] * (lo + 1);
    long mid = lo + (hi - lo) / 2;
    return cert_sum(a, lo, mid) + cert_sum(a, mid, hi);
}
"""

_QUICKSORT_TEMPLATE = _CERT + """
long A[%(n)d] = {%(values)s};
long n = %(n)d;

long quicksort(long* a, long lo, long hi) {
    if (hi - lo < 2) return 0;
    long pivot = a[lo + (hi - lo) / 2];
    long i = lo;
    long j = hi - 1;
    while (i <= j) {
        while (a[i] < pivot) i = i + 1;
        while (a[j] > pivot) j = j - 1;
        if (i <= j) {
            long t = a[i];
            a[i] = a[j];
            a[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    quicksort(a, lo, j + 1);
    quicksort(a, i, hi);
    return 0;
}

long main() {
    quicksort(A, 0, n);
    out(cert_sorted(A, 0, n));
    out(cert_sum(A, 0, n) %% %(mod)d);
    return 0;
}
"""

_BLOCK = 64  #: elements per radix block (PBBS blockRadixSort)

_RADIX_TEMPLATE = TREE_SCAN + TREE_COPY + TREE_FILL + _CERT + """
long A[%(n)d] = {%(values)s};
long B[%(n)d];
long BCNT[%(slots)d];
long SUMS[%(sums)d];
long n = %(n)d;
long nb = %(nb)d;

// count the digits of block b into column-major BCNT[digit * nb + b]
long count_block(long b, long shift) {
    long lo = b * %(block)d;
    long hi = lo + %(block)d;
    if (hi > n) hi = n;
    long i;
    for (i = lo; i < hi; i = i + 1) {
        long d = (A[i] >> shift) & 15;
        BCNT[d * nb + b] = BCNT[d * nb + b] + 1;
    }
    return 0;
}

long count_tree(long blo, long bhi, long shift) {
    if (bhi - blo == 1) return count_block(blo, shift);
    long mid = blo + (bhi - blo) / 2;
    count_tree(blo, mid, shift);
    count_tree(mid, bhi, shift);
    return 0;
}

// scatter block b using its scanned offsets
long scatter_block(long b, long shift) {
    long lo = b * %(block)d;
    long hi = lo + %(block)d;
    if (hi > n) hi = n;
    long i;
    for (i = lo; i < hi; i = i + 1) {
        long d = (A[i] >> shift) & 15;
        B[BCNT[d * nb + b]] = A[i];
        BCNT[d * nb + b] = BCNT[d * nb + b] + 1;
    }
    return 0;
}

long scatter_tree(long blo, long bhi, long shift) {
    if (bhi - blo == 1) return scatter_block(blo, shift);
    long mid = blo + (bhi - blo) / 2;
    scatter_tree(blo, mid, shift);
    scatter_tree(mid, bhi, shift);
    return 0;
}

long main() {
    long slots = 16 * nb;
    long shift;
    for (shift = 0; shift < 24; shift = shift + 4) {
        tree_fill(BCNT, 0, slots, 0);
        count_tree(0, nb, shift);
        exclusive_scan(BCNT, SUMS, slots);
        scatter_tree(0, nb, shift);
        tree_copy(A, B, 0, n);
    }
    out(cert_sorted(A, 0, n));
    out(cert_sum(A, 0, n) %% %(mod)d);
    return 0;
}
"""


def _sort_certificate(values: List[int]) -> List[int]:
    chk = 0
    for i, value in enumerate(sorted(values)):
        chk = (chk + value * (i + 1)) % _CHECK_MOD
    return [1, chk]


def _build_quicksort(n: int, seed: int) -> Tuple[str, List[int]]:
    values = random_values(n, seed, hi=1 << 20)
    source = _QUICKSORT_TEMPLATE % {
        "n": n, "values": render_array(values), "mod": _CHECK_MOD}
    return source, _sort_certificate(values)


def _build_radix(n: int, seed: int) -> Tuple[str, List[int]]:
    # 24-bit passes sort 20-bit keys completely.
    values = random_values(n, seed, hi=1 << 20)
    nb = (n + _BLOCK - 1) // _BLOCK
    slots = 16 * nb
    source = _RADIX_TEMPLATE % {
        "n": n, "values": render_array(values), "mod": _CHECK_MOD,
        "nb": nb, "block": _BLOCK, "slots": slots, "sums": 4 * slots + 4}
    return source, _sort_certificate(values)


QUICKSORT = Workload(
    key="02", name="comparisonSort/quickSort", short="quicksort",
    description="Recursive Hoare-partition quicksort with a sorted-order "
                "certificate.",
    data_parallel=True, builder=_build_quicksort, base_n=16)

RADIX_SORT = Workload(
    key="05", name="integerSort/blockRadixSort", short="radixsort",
    description="Block radix sort: LSD 4-bit digits with per-block counts "
                "combined by a tree prefix scan (PBBS blockRadixSort "
                "structure).",
    data_parallel=True, builder=_build_radix, base_n=16)
