"""Table 1 geometry workloads: 03 convex hull (quickhull) and
09 nearest neighbors (grid buckets).

Both algorithms are defined *deterministically* (explicit tie-breaks,
fixed scan orders) and the Python oracles mirror the MiniC code statement
for statement, so outputs compare exactly.

The nearest-neighbor code replaces PBBS's oct-tree with a uniform grid
(counting-sort buckets + expanding ring search), which exercises the same
trace structure — indirect loads, per-point independent work — without a
pointer-based tree.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Workload, render_array
from .generators import random_points
from .snippets import TREE_COPY, TREE_SCAN

# --------------------------------------------------------------------------
# 03: convex hull (quickhull)
# --------------------------------------------------------------------------

_QUICKHULL_TEMPLATE = """
long XS[%(n)d] = {%(xs)s};
long YS[%(n)d] = {%(ys)s};
long IDX[%(n)d];
long TMP[%(n)d];
long HCHK[1];
long n = %(n)d;

long cross(long o, long a, long b) {
    return (XS[a] - XS[o]) * (YS[b] - YS[o])
         - (YS[a] - YS[o]) * (XS[b] - XS[o]);
}

long hull(long a, long b, long lo, long hi) {
    if (lo >= hi) return 0;
    long best = IDX[lo];
    long bestd = cross(a, b, best);
    long i;
    for (i = lo + 1; i < hi; i = i + 1) {
        long d = cross(a, b, IDX[i]);
        if (d > bestd) {
            bestd = d;
            best = IDX[i];
        }
    }
    long c = best;
    HCHK[0] = HCHK[0] + c;
    for (i = lo; i < hi; i = i + 1) TMP[i] = IDX[i];
    long k1 = lo;
    for (i = lo; i < hi; i = i + 1) {
        if (cross(a, c, TMP[i]) > 0) {
            IDX[k1] = TMP[i];
            k1 = k1 + 1;
        }
    }
    long k2 = k1;
    for (i = lo; i < hi; i = i + 1) {
        if (cross(c, b, TMP[i]) > 0) {
            IDX[k2] = TMP[i];
            k2 = k2 + 1;
        }
    }
    return hull(a, c, lo, k1) + 1 + hull(c, b, k1, k2);
}

long main() {
    long left = 0;
    long right = 0;
    long i;
    for (i = 1; i < n; i = i + 1) {
        if (XS[i] < XS[left] || (XS[i] == XS[left] && YS[i] < YS[left]))
            left = i;
        if (XS[i] > XS[right] || (XS[i] == XS[right] && YS[i] > YS[right]))
            right = i;
    }
    if (left == right) {
        out(1);
        out(left);
        return 0;
    }
    long k1 = 0;
    for (i = 0; i < n; i = i + 1) {
        if (cross(left, right, i) > 0) {
            IDX[k1] = i;
            k1 = k1 + 1;
        }
    }
    long k2 = k1;
    for (i = 0; i < n; i = i + 1) {
        if (cross(right, left, i) > 0) {
            IDX[k2] = i;
            k2 = k2 + 1;
        }
    }
    long count = 2 + hull(left, right, 0, k1) + hull(right, left, k1, k2);
    out(count);
    out(HCHK[0] + left + right);
    return 0;
}
"""


def _quickhull_oracle(xs: List[int], ys: List[int]) -> List[int]:
    n = len(xs)
    chk = [0]

    def cross(o, a, b):
        return ((xs[a] - xs[o]) * (ys[b] - ys[o])
                - (ys[a] - ys[o]) * (xs[b] - xs[o]))

    def hull(a, b, pts):
        if not pts:
            return 0
        best = pts[0]
        bestd = cross(a, b, best)
        for p in pts[1:]:
            d = cross(a, b, p)
            if d > bestd:
                bestd = d
                best = p
        c = best
        chk[0] += c
        left1 = [p for p in pts if cross(a, c, p) > 0]
        left2 = [p for p in pts if cross(c, b, p) > 0]
        return hull(a, c, left1) + 1 + hull(c, b, left2)

    left = right = 0
    for i in range(1, n):
        if xs[i] < xs[left] or (xs[i] == xs[left] and ys[i] < ys[left]):
            left = i
        if xs[i] > xs[right] or (xs[i] == xs[right] and ys[i] > ys[right]):
            right = i
    if left == right:
        return [1, left]
    upper = [i for i in range(n) if cross(left, right, i) > 0]
    lower = [i for i in range(n) if cross(right, left, i) > 0]
    count = 2 + hull(left, right, upper) + hull(right, left, lower)
    return [count, chk[0] + left + right]


def _build_quickhull(n: int, seed: int) -> Tuple[str, List[int]]:
    xs, ys = random_points(n, seed)
    source = _QUICKHULL_TEMPLATE % {
        "n": n, "xs": render_array(xs), "ys": render_array(ys)}
    return source, _quickhull_oracle(xs, ys)


QUICKHULL = Workload(
    key="03", name="convexHull/quickHull", short="quickhull",
    description="Recursive quickhull over 2D integer points, emitting hull "
                "size and a hull-vertex checksum.",
    data_parallel=False, builder=_build_quickhull, base_n=16)

# --------------------------------------------------------------------------
# 09: nearest neighbors (uniform grid, expanding ring search)
# --------------------------------------------------------------------------

_CELL = 4  #: grid cell side

_KNN_TEMPLATE = TREE_SCAN + TREE_COPY + """
long XS[%(n)d] = {%(xs)s};
long YS[%(n)d] = {%(ys)s};
long CNT[%(cells1)d];
long START[%(cells1)d];
long SUMS[%(sums)d];
long PTS[%(n)d];
long n = %(n)d;
long g = %(g)d;

long count_points(long lo, long hi) {
    if (hi - lo == 1) {
        long c = (YS[lo] / %(cell)d) * g + XS[lo] / %(cell)d;
        CNT[c] = CNT[c] + 1;
        return 0;
    }
    long mid = lo + (hi - lo) / 2;
    count_points(lo, mid);
    count_points(mid, hi);
    return 0;
}

long scatter_points(long lo, long hi) {
    if (hi - lo == 1) {
        long c = (YS[lo] / %(cell)d) * g + XS[lo] / %(cell)d;
        PTS[CNT[c]] = lo;
        CNT[c] = CNT[c] + 1;
        return 0;
    }
    long mid = lo + (hi - lo) / 2;
    scatter_points(lo, mid);
    scatter_points(mid, hi);
    return 0;
}

long nearest(long i) {
    long cx = XS[i] / %(cell)d;
    long cy = YS[i] / %(cell)d;
    long best = 0 - 1;
    long r = 1;
    while (best < 0 && r <= g) {
        long dy;
        for (dy = 0 - r; dy <= r; dy = dy + 1) {
            long yy = cy + dy;
            if (yy >= 0 && yy < g) {
                long dx;
                for (dx = 0 - r; dx <= r; dx = dx + 1) {
                    long xx = cx + dx;
                    if (xx >= 0 && xx < g) {
                        long cell = yy * g + xx;
                        long k;
                        for (k = START[cell]; k < CNT[cell]; k = k + 1) {
                            long j = PTS[k];
                            if (j != i) {
                                long ddx = XS[j] - XS[i];
                                long ddy = YS[j] - YS[i];
                                long d2 = ddx * ddx + ddy * ddy;
                                if (best < 0 || d2 < best) best = d2;
                            }
                        }
                    }
                }
            }
        }
        r = r + 1;
    }
    return best < 0 ? 0 : best;
}

long search_all(long lo, long hi) {
    if (hi - lo == 1) return nearest(lo);
    long mid = lo + (hi - lo) / 2;
    return search_all(lo, mid) + search_all(mid, hi);
}

long main() {
    long cells = g * g;
    count_points(0, n);
    exclusive_scan(CNT, SUMS, cells);
    tree_copy(START, CNT, 0, cells);
    scatter_points(0, n);
    out(search_all(0, n) %% 1000000007);
    return 0;
}
"""


def _knn_oracle(xs: List[int], ys: List[int], grid: int) -> List[int]:
    n = len(xs)
    cells = grid * grid
    count = [0] * (cells + 1)
    for i in range(n):
        count[(ys[i] // _CELL) * grid + xs[i] // _CELL] += 1
    start = [0] * (cells + 1)
    acc = 0
    for c in range(cells):
        start[c] = acc
        acc += count[c]
    end = list(start)
    pts = [0] * n
    for i in range(n):
        cc = (ys[i] // _CELL) * grid + xs[i] // _CELL
        pts[end[cc]] = i
        end[cc] += 1
    total = 0
    for i in range(n):
        cx, cy = xs[i] // _CELL, ys[i] // _CELL
        best = -1
        r = 1
        while best < 0 and r <= grid:
            for dy in range(-r, r + 1):
                yy = cy + dy
                if 0 <= yy < grid:
                    for dx in range(-r, r + 1):
                        xx = cx + dx
                        if 0 <= xx < grid:
                            cell = yy * grid + xx
                            for k in range(start[cell], end[cell]):
                                j = pts[k]
                                if j != i:
                                    d2 = ((xs[j] - xs[i]) ** 2
                                          + (ys[j] - ys[i]) ** 2)
                                    if best < 0 or d2 < best:
                                        best = d2
            r += 1
        if best >= 0:
            total += best
    return [total % 1_000_000_007]


def _build_knn(n: int, seed: int) -> Tuple[str, List[int]]:
    xs, ys = random_points(n, seed)
    grid = max(xs + ys) // _CELL + 1
    cells = grid * grid
    source = _KNN_TEMPLATE % {
        "n": n, "xs": render_array(xs), "ys": render_array(ys),
        "g": grid, "cells1": cells + 1, "sums": 4 * cells + 4,
        "cell": _CELL}
    return source, _knn_oracle(xs, ys, grid)


KNN = Workload(
    key="09", name="nearestNeighbors/octTree2Neighbors", short="knn",
    description="Nearest neighbor per point via uniform-grid buckets "
                "(tree-built with plusScan) and expanding ring search "
                "(oct-tree substitute).",
    data_parallel=True, builder=_build_knn, base_n=16)
