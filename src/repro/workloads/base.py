"""Workload framework for the Table 1 / Figure 7 benchmark suite.

Each workload packages:

* a MiniC program (the PBBS algorithm re-written in the library's C
  subset),
* a seeded dataset generator with geometric size scaling (the paper runs
  each benchmark on 11 doubling datasets),
* a Python oracle implementing the *same algorithm deterministically*, so
  the compiled program's ``out()`` stream can be checked exactly.

A :class:`WorkloadInstance` owns the compiled, data-patched program and
exposes trace streaming for the ILP analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..machine import SequentialMachine, run_sequential
from ..minic import compile_source


@dataclass
class WorkloadInstance:
    """One (workload, dataset size) pair, ready to run."""

    key: str
    name: str
    n: int                       #: dataset size parameter
    source: str                  #: generated MiniC source
    expected_output: List[int]   #: the Python oracle's out() stream

    def __post_init__(self):
        self._program = None

    @property
    def program(self):
        if self._program is None:
            self._program = compile_source(self.source)
        return self._program

    def run(self, record_trace: bool = False):
        """Run sequentially; the result's output must equal the oracle's."""
        return run_sequential(self.program, record_trace=record_trace)

    def trace_entries(self, max_steps: Optional[int] = None):
        """Stream trace entries for the ILP analyzer (one fresh run)."""
        kwargs = {} if max_steps is None else {"max_steps": max_steps}
        return SequentialMachine(self.program, **kwargs).step_entries()

    def verify(self) -> "WorkloadInstance":
        """Raise if the compiled program disagrees with the oracle."""
        result = self.run()
        got = result.signed_output
        if got != self.expected_output:
            raise AssertionError(
                "%s(n=%d): program output %r != oracle %r"
                % (self.key, self.n, got[:8], self.expected_output[:8]))
        return self


@dataclass
class Workload:
    """A Table 1 benchmark: builder + metadata."""

    key: str                     #: "01".."10", the paper's numbering
    name: str                    #: PBBS name, e.g. "comparisonSort/quickSort"
    short: str                   #: library identifier, e.g. "quicksort"
    description: str
    #: does parallel-model ILP grow with the dataset (paper: benchmarks
    #: 1, 2, 5, 6, 9 and 10 are data parallel)?
    data_parallel: bool
    #: build(n, seed) -> (minic source, oracle output)
    builder: Callable[[int, int], "tuple"] = None
    #: dataset size for scale 0; scale k uses base_n << k
    base_n: int = 16

    def instance(self, scale: int = 0, seed: int = 1,
                 n: Optional[int] = None) -> WorkloadInstance:
        size = n if n is not None else self.base_n << scale
        source, expected = self.builder(size, seed)
        return WorkloadInstance(key=self.key, name=self.name, n=size,
                                source=source, expected_output=expected)


def render_array(values: Iterable[int]) -> str:
    """Comma-separated initializer body for a MiniC global array."""
    return ", ".join(str(int(v)) for v in values)
