"""Table 1 graph workloads: 01 BFS, 06 maximal independent set,
07 maximal matching, 08 minimum spanning tree (Kruskal).

BFS and MIS — the two the paper marks as data parallel — are written in
the PBBS parallel style: their per-vertex work is driven by
divide-and-conquer recursions (the sequential elision of a parallel_for),
so dependency chains follow the data (graph edges, BFS levels), not a loop
counter.  Matching and MST keep their inherently sequential greedy loops,
matching the paper's observation that their ILP does not grow with the
dataset.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Workload, render_array
from .generators import random_edge_list, random_graph_csr
from .snippets import TREE_FILL

# --------------------------------------------------------------------------
# 01: breadth-first search (level-synchronous, tree-driven)
# --------------------------------------------------------------------------

_BFS_TEMPLATE = TREE_FILL + """
long OFF[%(n1)d] = {%(offsets)s};
long ADJ[%(m)d] = {%(adjacency)s};
long DIST[%(n)d];
long n = %(n)d;

long advance(long lo, long hi, long level) {
    if (hi - lo == 1) {
        long v = lo;
        if (DIST[v] >= 0) return 0;
        long e;
        for (e = OFF[v]; e < OFF[v + 1]; e = e + 1) {
            if (DIST[ADJ[e]] == level) {
                DIST[v] = level + 1;
                return 1;
            }
        }
        return 0;
    }
    long mid = lo + (hi - lo) / 2;
    return advance(lo, mid, level) + advance(mid, hi, level);
}

long visited(long lo, long hi) {
    if (hi - lo == 1) return DIST[lo] >= 0 ? 1 : 0;
    long mid = lo + (hi - lo) / 2;
    return visited(lo, mid) + visited(mid, hi);
}

long distsum(long lo, long hi) {
    if (hi - lo == 1) return DIST[lo] >= 0 ? DIST[lo] : 0;
    long mid = lo + (hi - lo) / 2;
    return distsum(lo, mid) + distsum(mid, hi);
}

long main() {
    tree_fill(DIST, 0, n, 0 - 1);
    DIST[0] = 0;
    long level = 0;
    long changed = 1;
    while (changed) {
        changed = advance(0, n, level);
        level = level + 1;
    }
    out(visited(0, n));
    out(distsum(0, n));
    return 0;
}
"""


def _bfs_oracle(offsets: List[int], adjacency: List[int], n: int) -> List[int]:
    # Level-synchronous relaxation computes plain BFS distances.
    dist = [-1] * n
    dist[0] = 0
    queue = [0]
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        for e in range(offsets[u], offsets[u + 1]):
            v = adjacency[e]
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
    visited = sum(1 for d in dist if d >= 0)
    return [visited, sum(d for d in dist if d >= 0)]


def _build_bfs(n: int, seed: int) -> Tuple[str, List[int]]:
    offsets, adjacency = random_graph_csr(n, seed)
    source = _BFS_TEMPLATE % {
        "n": n, "n1": n + 1, "m": max(1, len(adjacency)),
        "offsets": render_array(offsets),
        "adjacency": render_array(adjacency or [0]),
    }
    return source, _bfs_oracle(offsets, adjacency, n)


BFS = Workload(
    key="01", name="breadthFirstSearch/ndBFS", short="bfs",
    description="Level-synchronous BFS with tree-recursive vertex sweeps "
                "(parallel_for elision); emits reached count and distance "
                "sum.",
    data_parallel=True, builder=_build_bfs, base_n=16)

# --------------------------------------------------------------------------
# 06: maximal independent set (greedy by vertex id, tree-driven)
# --------------------------------------------------------------------------

_MIS_TEMPLATE = """
long OFF[%(n1)d] = {%(offsets)s};
long ADJ[%(m)d] = {%(adjacency)s};
long IN[%(n)d];
long n = %(n)d;

long mis(long lo, long hi) {
    if (hi - lo == 1) {
        long v = lo;
        long keep = 1;
        long e;
        for (e = OFF[v]; e < OFF[v + 1]; e = e + 1) {
            long u = ADJ[e];
            if (u < v && IN[u]) keep = 0;
        }
        IN[v] = keep;
        return keep;
    }
    long mid = lo + (hi - lo) / 2;
    return mis(lo, mid) + mis(mid, hi);
}

long chksum(long lo, long hi) {
    if (hi - lo == 1) return IN[lo] ? lo : 0;
    long mid = lo + (hi - lo) / 2;
    return chksum(lo, mid) + chksum(mid, hi);
}

long main() {
    out(mis(0, n));
    out(chksum(0, n));
    return 0;
}
"""


def _mis_oracle(offsets, adjacency, n) -> List[int]:
    selected = [False] * n
    for v in range(n):
        keep = True
        for e in range(offsets[v], offsets[v + 1]):
            u = adjacency[e]
            if u < v and selected[u]:
                keep = False
        selected[v] = keep
    return [sum(selected), sum(v for v in range(n) if selected[v])]


def _build_mis(n: int, seed: int) -> Tuple[str, List[int]]:
    offsets, adjacency = random_graph_csr(n, seed)
    source = _MIS_TEMPLATE % {
        "n": n, "n1": n + 1, "m": max(1, len(adjacency)),
        "offsets": render_array(offsets),
        "adjacency": render_array(adjacency or [0]),
    }
    return source, _mis_oracle(offsets, adjacency, n)


MIS = Workload(
    key="06", name="maximalIndependentSet/ndMIS", short="mis",
    description="Greedy (lowest-id-first) maximal independent set over a "
                "CSR random graph.",
    data_parallel=True, builder=_build_mis, base_n=16)

# --------------------------------------------------------------------------
# 07: maximal matching (greedy over the edge list)
# --------------------------------------------------------------------------

_MATCHING_TEMPLATE = """
long EU[%(m)d] = {%(eu)s};
long EV[%(m)d] = {%(ev)s};
long MATCH[%(n)d];
long n = %(n)d;
long m = %(m)d;

long main() {
    long v;
    for (v = 0; v < n; v = v + 1) MATCH[v] = 0 - 1;
    long count = 0;
    long chk = 0;
    long e;
    for (e = 0; e < m; e = e + 1) {
        long a = EU[e];
        long b = EV[e];
        if (MATCH[a] < 0 && MATCH[b] < 0) {
            MATCH[a] = b;
            MATCH[b] = a;
            count = count + 1;
            chk = chk + e;
        }
    }
    out(count);
    out(chk);
    return 0;
}
"""


def _matching_oracle(edges, n) -> List[int]:
    match = [-1] * n
    count = 0
    chk = 0
    for index, (u, v, _w) in enumerate(edges):
        if match[u] < 0 and match[v] < 0:
            match[u] = v
            match[v] = u
            count += 1
            chk += index
    return [count, chk]


def _build_matching(n: int, seed: int) -> Tuple[str, List[int]]:
    edges = random_edge_list(n, seed)
    source = _MATCHING_TEMPLATE % {
        "n": n, "m": len(edges),
        "eu": render_array(u for u, _, _ in edges),
        "ev": render_array(v for _, v, _ in edges),
    }
    return source, _matching_oracle(edges, n)


MATCHING = Workload(
    key="07", name="maximalMatching/ndMatching", short="matching",
    description="Greedy maximal matching over a random weighted edge list.",
    data_parallel=False, builder=_build_matching, base_n=16)

# --------------------------------------------------------------------------
# 08: minimum spanning tree (Kruskal: sort packed keys + union-find)
# --------------------------------------------------------------------------

_MST_TEMPLATE = """
long EU[%(m)d] = {%(eu)s};
long EV[%(m)d] = {%(ev)s};
long KEY[%(m)d] = {%(keys)s};
long PARENT[%(n)d];
long n = %(n)d;
long m = %(m)d;

long quicksort(long* a, long lo, long hi) {
    if (hi - lo < 2) return 0;
    long pivot = a[lo + (hi - lo) / 2];
    long i = lo;
    long j = hi - 1;
    while (i <= j) {
        while (a[i] < pivot) i = i + 1;
        while (a[j] > pivot) j = j - 1;
        if (i <= j) {
            long t = a[i];
            a[i] = a[j];
            a[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    quicksort(a, lo, j + 1);
    quicksort(a, i, hi);
    return 0;
}

long find(long x) {
    while (PARENT[x] != x) {
        PARENT[x] = PARENT[PARENT[x]];
        x = PARENT[x];
    }
    return x;
}

long main() {
    long i;
    for (i = 0; i < n; i = i + 1) PARENT[i] = i;
    quicksort(KEY, 0, m);
    long total = 0;
    long used = 0;
    for (i = 0; i < m; i = i + 1) {
        long e = KEY[i] & 16777215;
        long w = KEY[i] >> 24;
        long ru = find(EU[e]);
        long rv = find(EV[e]);
        if (ru != rv) {
            PARENT[ru] = rv;
            total = total + w;
            used = used + 1;
        }
    }
    out(used);
    out(total);
    return 0;
}
"""


def _mst_oracle(edges, n) -> List[int]:
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    order = sorted((w << 24) | i for i, (_u, _v, w) in enumerate(edges))
    total = used = 0
    for key in order:
        index = key & 0xFFFFFF
        weight = key >> 24
        u, v, _ = edges[index]
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            total += weight
            used += 1
    return [used, total]


def _build_mst(n: int, seed: int) -> Tuple[str, List[int]]:
    edges = random_edge_list(n, seed)
    keys = [(w << 24) | i for i, (_u, _v, w) in enumerate(edges)]
    source = _MST_TEMPLATE % {
        "n": n, "m": len(edges),
        "eu": render_array(u for u, _, _ in edges),
        "ev": render_array(v for _, v, _ in edges),
        "keys": render_array(keys),
    }
    return source, _mst_oracle(edges, n)


MST = Workload(
    key="08", name="minSpanningTree/parallelKruskal", short="mst",
    description="Kruskal MST: quicksort on weight-packed edge keys plus "
                "path-halving union-find.",
    data_parallel=False, builder=_build_mst, base_n=16)
