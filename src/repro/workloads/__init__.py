"""The Table 1 benchmark suite: ten PBBS algorithms in MiniC.

Registry access::

    from repro.workloads import WORKLOADS, get_workload

    inst = get_workload("quicksort").instance(scale=2, seed=1)
    inst.verify()                       # compiled program vs Python oracle
    entries = inst.trace_entries()      # stream for repro.ilp.analyze
"""

from .base import Workload, WorkloadInstance
from .generators import (
    random_edge_list,
    random_graph_csr,
    random_keys,
    random_points,
    random_values,
)
from .geometry import KNN, QUICKHULL
from .graphs import BFS, MATCHING, MIS, MST
from .hashing import DEDUP, DICTIONARY
from .sorting import QUICKSORT, RADIX_SORT

#: All ten Table 1 workloads, in the paper's numbering order.
WORKLOADS = sorted(
    (BFS, QUICKSORT, QUICKHULL, DICTIONARY, RADIX_SORT, MIS, MATCHING, MST,
     KNN, DEDUP),
    key=lambda w: w.key)

_BY_SHORT = {w.short: w for w in WORKLOADS}
_BY_KEY = {w.key: w for w in WORKLOADS}


def get_workload(name: str) -> Workload:
    """Look up a workload by short name ("bfs") or Table 1 key ("01")."""
    if name in _BY_SHORT:
        return _BY_SHORT[name]
    if name in _BY_KEY:
        return _BY_KEY[name]
    raise KeyError("unknown workload %r (known: %s)"
                   % (name, ", ".join(sorted(_BY_SHORT))))


__all__ = [
    "BFS", "DEDUP", "DICTIONARY", "KNN", "MATCHING", "MIS", "MST",
    "QUICKHULL", "QUICKSORT", "RADIX_SORT", "WORKLOADS", "Workload",
    "WorkloadInstance", "get_workload", "random_edge_list",
    "random_graph_csr", "random_keys", "random_points", "random_values",
]
