"""Table 1 hashing workloads: 04 dictionary and 10 remove duplicates.

Both use the PBBS deterministicHash structure: an open-addressing table
with linear probing and a multiplicative hash.  The dictionary inserts n
keys then probes n lookups; removeDuplicates counts distinct keys.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Workload, render_array
from .generators import random_keys
from .snippets import TREE_FILL

_HASH_MULT = 2654435761  # Knuth's multiplicative constant


def _table_size(n: int) -> int:
    size = 4
    while size < 2 * n:
        size *= 2
    return size


_DICTIONARY_TEMPLATE = """
long KEYS[%(n)d] = {%(keys)s};
long PROBES[%(n)d] = {%(probes)s};
long TABLE[%(t)d];
long n = %(n)d;
long tsize = %(t)d;

long slot(long k) {
    return (k * %(mult)d) & (tsize - 1);
}

long main() {
    long i;
    for (i = 0; i < tsize; i = i + 1) TABLE[i] = 0 - 1;
    for (i = 0; i < n; i = i + 1) {
        long k = KEYS[i];
        long h = slot(k);
        while (TABLE[h] >= 0 && TABLE[h] != k) h = (h + 1) & (tsize - 1);
        TABLE[h] = k;
    }
    long hits = 0;
    for (i = 0; i < n; i = i + 1) {
        long k = PROBES[i];
        long h = slot(k);
        while (TABLE[h] >= 0 && TABLE[h] != k) h = (h + 1) & (tsize - 1);
        if (TABLE[h] == k) hits = hits + 1;
    }
    out(hits);
    return 0;
}
"""

_DEDUP_TEMPLATE = TREE_FILL + """
long KEYS[%(n)d] = {%(keys)s};
long TABLE[%(t)d];
long n = %(n)d;
long tsize = %(t)d;

long insert(long k) {
    long h = (k * %(mult)d) & (tsize - 1);
    while (TABLE[h] >= 0 && TABLE[h] != k) h = (h + 1) & (tsize - 1);
    if (TABLE[h] == k) return 0;
    TABLE[h] = k;
    return 1;
}

long dedup(long lo, long hi) {
    if (hi - lo == 1) return insert(KEYS[lo]) ? KEYS[lo] + %(big)d : 0;
    long mid = lo + (hi - lo) / 2;
    return dedup(lo, mid) + dedup(mid, hi);
}

long main() {
    tree_fill(TABLE, 0, tsize, 0 - 1);
    long packed = dedup(0, n);
    out(packed / %(big)d);
    out(packed %% %(big)d);
    return 0;
}
"""


def _build_dictionary(n: int, seed: int) -> Tuple[str, List[int]]:
    keys = random_keys(n, seed)
    probes = random_keys(n, seed + 17)
    present = set(keys)
    hits = sum(1 for p in probes if p in present)
    source = _DICTIONARY_TEMPLATE % {
        "n": n, "t": _table_size(n), "mult": _HASH_MULT,
        "keys": render_array(keys), "probes": render_array(probes)}
    return source, [hits]


def _build_dedup(n: int, seed: int) -> Tuple[str, List[int]]:
    keys = random_keys(n, seed)
    seen = set()
    unique = chk = 0
    for k in keys:
        if k not in seen:
            seen.add(k)
            unique += 1
            chk += k
    source = _DEDUP_TEMPLATE % {
        "n": n, "t": _table_size(n), "mult": _HASH_MULT, "big": 1 << 40,
        "keys": render_array(keys)}
    return source, [unique, chk]


DICTIONARY = Workload(
    key="04", name="dictionary/deterministicHash", short="dictionary",
    description="Open-addressing hash dictionary: n inserts + n lookups "
                "with linear probing.",
    data_parallel=False, builder=_build_dictionary, base_n=16)

DEDUP = Workload(
    key="10", name="removeDuplicates/deterministicHash", short="dedup",
    description="Distinct-key count via a linear-probing hash set.",
    data_parallel=True, builder=_build_dedup, base_n=16)
