"""Shared MiniC building blocks for the parallel-structured workloads.

PBBS codes are *parallel* programs; traced sequentially (as the paper
does), their ``parallel_for``/``plusScan`` primitives become
divide-and-conquer recursions whose dependency chains are logarithmic, not
linear.  These snippets are the MiniC equivalents: a tree fill, and the
classic upsweep/downsweep exclusive prefix scan.  Workloads splice them
into their sources so the Figure 7 growth shape (parallel ILP rising with
the dataset for data-parallel benchmarks) is reproduced for the same
structural reason as in the paper.
"""

#: Fill a[lo..hi) with a value, tree-recursively (no counter chain).
TREE_FILL = """
long tree_fill(long* a, long lo, long hi, long value) {
    if (hi - lo <= 0) return 0;
    if (hi - lo == 1) {
        a[lo] = value;
        return 0;
    }
    long mid = lo + (hi - lo) / 2;
    tree_fill(a, lo, mid, value);
    tree_fill(a, mid, hi, value);
    return 0;
}
"""

#: Copy src[lo..hi) into dst, tree-recursively.
TREE_COPY = """
long tree_copy(long* dst, long* src, long lo, long hi) {
    if (hi - lo <= 0) return 0;
    if (hi - lo == 1) {
        dst[lo] = src[lo];
        return 0;
    }
    long mid = lo + (hi - lo) / 2;
    tree_copy(dst, src, lo, mid);
    tree_copy(dst, src, mid, hi);
    return 0;
}
"""

#: Work-efficient exclusive prefix scan (PBBS plusScan): an upsweep
#: computing segment sums into a segment-tree scratch array (size >= 4*len)
#: followed by a downsweep distributing offsets.  Both passes have
#: logarithmic dependency depth.
TREE_SCAN = """
long scan_upsweep(long* a, long* sums, long node, long lo, long hi) {
    if (hi - lo == 1) {
        sums[node] = a[lo];
        return sums[node];
    }
    long mid = lo + (hi - lo) / 2;
    sums[node] = scan_upsweep(a, sums, 2 * node, lo, mid)
               + scan_upsweep(a, sums, 2 * node + 1, mid, hi);
    return sums[node];
}

long scan_downsweep(long* a, long* sums, long node, long lo, long hi,
                    long offset) {
    if (hi - lo == 1) {
        a[lo] = offset;
        return 0;
    }
    long mid = lo + (hi - lo) / 2;
    scan_downsweep(a, sums, 2 * node, lo, mid, offset);
    scan_downsweep(a, sums, 2 * node + 1, mid, hi, offset + sums[2 * node]);
    return 0;
}

long exclusive_scan(long* a, long* sums, long len) {
    scan_upsweep(a, sums, 1, 0, len);
    scan_downsweep(a, sums, 1, 0, len, 0);
    return 0;
}
"""
