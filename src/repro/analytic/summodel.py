"""Closed-form model of the ``sum`` reduction run (paper Section 5)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List


def sum_sizes(n: int) -> int:
    """Array length of the n-th evaluation point: 5·2ⁿ elements."""
    _check(n)
    return 5 * (2 ** n)


def instructions(n: int) -> int:
    """Dynamic instructions of the forked sum: N(n) = 45·2ⁿ + 14·(2ⁿ−1).

    45 for ``sum(t,5)``, 104 for ``sum(t,10)``, 15090 for 1280 elements —
    the paper's numbers.
    """
    _check(n)
    return 45 * 2 ** n + 14 * (2 ** n - 1)


def fetch_cycles(n: int) -> int:
    """Total fetch time: F(n) = 30 + 12·n cycles.

    "Only fetch latency can impact the fetch time.  It is independent of
    renaming and execute latencies."
    """
    _check(n)
    return 30 + 12 * n


def retire_cycles(n: int) -> int:
    """Total retirement time: R(n) = 43 + 15·n cycles."""
    _check(n)
    return 43 + 15 * n


def fetch_ipc(n: int) -> float:
    """Fetched instructions per cycle: 1.5 at n=0, ≈120 at n=8."""
    return instructions(n) / fetch_cycles(n)


def retire_ipc(n: int) -> float:
    """Retired instructions per cycle: ≈92 at n=8."""
    return instructions(n) / retire_cycles(n)


@lru_cache(maxsize=None)
def forks(elements: int) -> int:
    """Fork instructions executed by ``sum`` over *elements* elements."""
    if elements <= 2:
        return 0
    half = elements // 2
    return 2 + forks(half) + forks(elements - half)


def sections(n: int) -> int:
    """Sections of the ``sum(t, 5·2ⁿ)`` run (forks + the root section)."""
    return forks(sum_sizes(n)) + 1


@dataclass
class SumModelPoint:
    """One row of the Section 5 evaluation."""

    n: int
    elements: int
    instructions: int
    fetch_cycles: int
    retire_cycles: int
    sections: int

    @property
    def fetch_ipc(self) -> float:
        return self.instructions / self.fetch_cycles

    @property
    def retire_ipc(self) -> float:
        return self.instructions / self.retire_cycles

    def row(self) -> str:
        return ("n=%d  %5d elements  %6d instrs  fetch %4d cy (%6.1f IPC)  "
                "retire %4d cy (%6.1f IPC)  %5d sections"
                % (self.n, self.elements, self.instructions,
                   self.fetch_cycles, self.fetch_ipc,
                   self.retire_cycles, self.retire_ipc, self.sections))


def paper_table(max_n: int = 8) -> List[SumModelPoint]:
    """The Section 5 evaluation table for n = 0..max_n."""
    return [
        SumModelPoint(
            n=n,
            elements=sum_sizes(n),
            instructions=instructions(n),
            fetch_cycles=fetch_cycles(n),
            retire_cycles=retire_cycles(n),
            sections=sections(n),
        )
        for n in range(max_n + 1)
    ]


def _check(n: int) -> None:
    if n < 0:
        raise ValueError("n must be >= 0")
