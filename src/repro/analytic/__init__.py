"""Analytical performance model of Section 5 (the sum reduction).

The paper evaluates the proposed design analytically on ``sum(t, 5·2ⁿ)``:

* dynamic instruction count   N(n) = 45·2ⁿ + 14·(2ⁿ − 1)
* fetch time                  F(n) = 30 + 12·n cycles
* retirement time             R(n) = 43 + 15·n cycles

giving fetch IPC N/F (1.5 at n=0, ≈2.5 at n=1, ≈120 at n=8) and retire IPC
N/R (≈92 at n=8).  This module implements the closed forms plus the section
/ fork counts of the sum call tree, and is validated against both the
functional machines and the cycle simulator in the benchmark suite.
"""

from .summodel import (
    SumModelPoint,
    fetch_cycles,
    fetch_ipc,
    instructions,
    paper_table,
    retire_cycles,
    retire_ipc,
    sections,
    sum_sizes,
)

__all__ = [
    "SumModelPoint", "fetch_cycles", "fetch_ipc", "instructions",
    "paper_table", "retire_cycles", "retire_ipc", "sections", "sum_sizes",
]
