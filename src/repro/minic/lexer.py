"""Lexer for MiniC, the C subset the paper's workloads are written in.

MiniC is deliberately close to the C the paper compiles (Figure 1a): ``long``
scalars and pointers, global arrays, functions, the full integer operator
set, and ``// …`` / ``/* … */`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import CompileError

KEYWORDS = frozenset((
    "long", "if", "else", "while", "for", "return", "break", "continue",
))

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<<=", ">>=",  # recognized to give a clear "not supported" error
    "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "&", "|", "^", "!", "~",
    "(", ")", "{", "}", "[", "]", ",", ";", "?", ":",
)


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` is ``"num"``, ``"ident"``, ``"kw"``,
    ``"op"`` or ``"eof"``; ``text`` is the lexeme; numbers carry ``value``."""

    kind: str
    text: str
    line: int
    col: int
    value: int = 0

    def is_op(self, *texts: str) -> bool:
        return self.kind == "op" and self.text in texts

    def is_kw(self, *texts: str) -> bool:
        return self.kind == "kw" and self.text in texts

    def describe(self) -> str:
        if self.kind == "eof":
            return "end of input"
        return "'%s'" % self.text


def tokenize(source: str) -> List[Token]:
    """Lex *source* into a token list ending with an ``eof`` token."""
    return list(_Lexer(source).tokens())


class _Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _err(self, message: str) -> CompileError:
        return CompileError(message, self.line, self.col)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def tokens(self) -> Iterator[Token]:
        src = self.source
        while True:
            self._skip_trivia()
            if self.pos >= len(src):
                yield Token("eof", "", self.line, self.col)
                return
            line, col = self.line, self.col
            ch = src[self.pos]
            if ch.isdigit():
                yield self._number(line, col)
            elif ch.isalpha() or ch == "_":
                start = self.pos
                while (self.pos < len(src)
                       and (src[self.pos].isalnum() or src[self.pos] == "_")):
                    self._advance()
                text = src[start:self.pos]
                kind = "kw" if text in KEYWORDS else "ident"
                yield Token(kind, text, line, col)
            else:
                for op in _OPERATORS:
                    if src.startswith(op, self.pos):
                        if op in ("<<=", ">>="):
                            raise self._err(
                                "compound assignment %r is not MiniC" % op)
                        self._advance(len(op))
                        yield Token("op", op, line, col)
                        break
                else:
                    raise self._err("unexpected character %r" % ch)

    def _number(self, line: int, col: int) -> Token:
        src = self.source
        start = self.pos
        if src.startswith(("0x", "0X"), self.pos):
            self._advance(2)
            while self.pos < len(src) and src[self.pos] in "0123456789abcdefABCDEF":
                self._advance()
            text = src[start:self.pos]
            if len(text) == 2:
                raise self._err("bad hex literal")
            value = int(text, 16)
        else:
            while self.pos < len(src) and src[self.pos].isdigit():
                self._advance()
            text = src[start:self.pos]
            value = int(text)
        if self.pos < len(src) and (src[self.pos].isalpha() or src[self.pos] == "_"):
            raise self._err("bad numeric literal")
        if value >= 2**63:
            raise self._err("literal %s does not fit in long" % text)
        return Token("num", text, line, col, value=value)

    def _skip_trivia(self) -> None:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif src.startswith("//", self.pos):
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance()
            elif src.startswith("/*", self.pos):
                end = src.find("*/", self.pos + 2)
                if end < 0:
                    raise self._err("unterminated /* comment")
                while self.pos < end + 2:
                    self._advance()
            else:
                return
