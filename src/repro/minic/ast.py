"""Abstract syntax tree for MiniC.

Types are represented by their pointer depth: ``0`` is ``long``, ``1`` is
``long*``, ``2`` is ``long**``, and so on.  Global and local arrays exist
only as declarations (``long a[10]``); the name decays to a pointer in
expressions, exactly like C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    line: int = 0
    col: int = 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    #: pointer depth of the expression's value, filled by semantic analysis.
    depth: int = 0


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    name: str = ""
    #: resolved by sema: "local", "param", "global", "global_array",
    #: "local_array" or "func"
    storage: str = ""


@dataclass
class Unary(Expr):
    op: str = ""            #: "-", "!", "~", "*" (deref) or "&" (address-of)
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    target: Expr = None     #: Var, Index or Unary("*")
    value: Expr = None


@dataclass
class Cond(Expr):
    """Ternary ``c ? t : f``."""

    cond: Expr = None
    then: Expr = None
    other: Expr = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class VarDecl(Stmt):
    name: str = ""
    ptr_depth: int = 0
    array_size: Optional[int] = None    #: None for scalars
    init: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None         #: VarDecl or ExprStmt
    cond: Optional[Expr] = None
    post: Optional[Expr] = None
    body: Stmt = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


# --------------------------------------------------------------------------
# Top-level declarations
# --------------------------------------------------------------------------


@dataclass
class GlobalDecl(Node):
    name: str = ""
    ptr_depth: int = 0
    array_size: Optional[int] = None
    init_values: List[int] = field(default_factory=list)


@dataclass
class Param(Node):
    name: str = ""
    ptr_depth: int = 0


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Block = None


@dataclass
class TranslationUnit(Node):
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDecl:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)
