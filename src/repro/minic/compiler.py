"""MiniC compilation driver: source → AST → checked AST → asm → Program."""

from __future__ import annotations

from typing import Optional

from ..errors import CompileError
from ..isa import Program, assemble
from . import ast
from .codegen import generate
from .parser import parse
from .sema import analyze


def compile_to_ast(source: str) -> ast.TranslationUnit:
    """Parse and type-check; returns the annotated AST."""
    return analyze(parse(source))


def compile_to_asm(source: str, require_main: bool = True,
                   fork_mode: bool = False, fork_loops: bool = False) -> str:
    """Compile MiniC source to gas-syntax assembly text.

    ``fork_mode`` compiles calls/returns as fork/endfork (Figure 5 style);
    ``fork_loops`` additionally puts each eligible loop-iteration body in
    its own section (the paper's Section 5 loop parallelization).  Programs
    built with either flag must run on a :class:`ForkedMachine` or the
    distributed simulator.
    """
    unit = compile_to_ast(source)
    has_main = any(f.name == "main" for f in unit.functions)
    if require_main:
        if not has_main:
            raise CompileError("no main() function")
        main = unit.function("main")
        if main.params:
            raise CompileError("main() takes no parameters",
                               main.line, main.col)
    return generate(unit, fork_mode=fork_mode, fork_loops=fork_loops,
                    entry_stub=has_main)


def compile_source(source: str, require_main: bool = True,
                   fork_mode: bool = False, fork_loops: bool = False) -> Program:
    """Compile MiniC source to a runnable :class:`Program`.

    The program starts at ``_start`` (call — or in fork mode, fork — main,
    then halt); ``main``'s return value lands in rax, readable as
    ``RunResult.return_value``; ``out(x)`` calls append to
    ``RunResult.output``.
    """
    asm = compile_to_asm(source, require_main=require_main,
                         fork_mode=fork_mode, fork_loops=fork_loops)
    return assemble(asm, entry="_start" if require_main else None)
