"""MiniC → toy x86-64 code generation.

The generator produces gas-syntax text (assembled by :mod:`repro.isa`), in
the style of a classic one-pass C compiler:

* rbp-based stack frames; parameters arrive in the SysV argument registers
  and are spilled to frame slots so recursion works;
* rax is the accumulator, rcx the secondary operand; expression temporaries
  are pushed on the stack — the very stack traffic whose serializing effect
  the paper analyzes in Section 3;
* conditions feed branches directly (no setcc in the toy ISA); ``&&``/``||``
  short-circuit;
* pointer arithmetic scales by the 8-byte word.

The output deliberately resembles the paper's Figure 2 listing: function
calls with ``call``/``ret``, callee frames, stack saves.  The fork
transformation (:mod:`repro.fork`) then rewrites it into Figure 5 style.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import CompileError
from ..isa.registers import ARG_REGS
from . import ast
from .sema import OUT_BUILTIN, Symbol

#: Condition code per MiniC comparison operator (signed, as in C longs).
_CMP_CC = {"==": "e", "!=": "ne", "<": "l", "<=": "le", ">": "g", ">=": "ge"}
_CC_INVERSE = {"e": "ne", "ne": "e", "l": "ge", "le": "g", "g": "le",
               "ge": "l"}

#: Entry stub: run main, keep its result in rax, stop.
ENTRY_STUB = ["_start:", "    call main", "    hlt"]

#: Entry stub in fork mode: main becomes the root section's continuation;
#: the ``hlt`` runs in the last section, after every fork has ended.
FORK_ENTRY_STUB = ["_start:", "    fork main", "    hlt"]


class CodeGen:
    """Generates a whole translation unit.  One instance per compile.

    ``fork_mode`` compiles every call as a ``fork`` and every return as an
    ``endfork`` — the Figure 5 style.  Fork mode needs no callee-saved
    bookkeeping at all: the resume path receives register copies from the
    fork, and the section never "returns", so the epilogue's stack repair
    disappears along with the return address traffic.

    ``fork_loops`` (implies nothing about calls) additionally forks every
    eligible loop body into its own section — the paper's Section 5
    loop-parallelization sketch.  A body is eligible when no ``return``
    escapes it and no ``break``/``continue`` targets the forked loop
    itself (nested loops keep theirs).  Canonical ``for`` loops further
    get the paper's register-carried iteration counter
    (:meth:`_register_forked_loop`).
    """

    def __init__(self, unit: ast.TranslationUnit, fork_mode: bool = False,
                 fork_loops: bool = False, entry_stub: bool = True):
        self.unit = unit
        self.fork_mode = fork_mode
        self.fork_loops = fork_loops
        self.entry_stub = entry_stub
        self.lines: List[str] = []
        self._label_counter = 0
        # per-function state
        self._offsets: Dict[int, int] = {}     # id(Symbol) -> rbp offset
        self._epilogue_label = ""
        self._break_label: List[str] = []
        self._continue_label: List[str] = []
        self._loop_regs_free: List[str] = list(self._LOOP_REGS)

    # -- driver -----------------------------------------------------------

    def generate(self) -> str:
        if self.entry_stub:
            self.lines = list(FORK_ENTRY_STUB if self.fork_mode else ENTRY_STUB)
        else:
            self.lines = []
        for func in self.unit.functions:
            self._function(func)
        self._data_section()
        return "\n".join(self.lines) + "\n"

    def _emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def _label(self, text: str) -> None:
        self.lines.append(text + ":")

    def _fresh(self, hint: str) -> str:
        self._label_counter += 1
        return ".L%s%d" % (hint, self._label_counter)

    # -- functions ------------------------------------------------------------

    def _function(self, func: ast.FuncDecl) -> None:
        frame_words = 0
        self._offsets = {}
        for sym in func.sym_params:
            frame_words += 1
            self._offsets[id(sym)] = -8 * frame_words
        for sym in func.sym_locals:
            words = sym.array_size if sym.is_array else 1
            frame_words += words
            self._offsets[id(sym)] = -8 * frame_words
        self._epilogue_label = self._fresh("ret_" + func.name + "_")
        self._loop_regs_free = list(self._LOOP_REGS)

        self._label(func.name)
        if self.fork_mode:
            # No need to save the caller's rbp: the resume path receives it
            # as a fork copy (the paper's replacement for save/restore).
            # A frameless function (no params, no locals) never reads rbp,
            # so it skips the frame link entirely.
            if frame_words:
                self._emit("movq %rsp, %rbp")
        else:
            self._emit("pushq %rbp")
            self._emit("movq %rsp, %rbp")
        if frame_words:
            self._emit("subq $%d, %%rsp" % (8 * frame_words))
        for i, sym in enumerate(func.sym_params):
            self._emit("movq %%%s, %d(%%rbp)" % (ARG_REGS[i],
                                                 self._offsets[id(sym)]))
        self._statement(func.body)
        # Falling off the end returns 0 (defined behaviour in MiniC).
        self._emit("movq $0, %rax")
        self._label(self._epilogue_label)
        if self.fork_mode:
            # The section simply ends: no stack repair, no return address.
            # The resume path restored rsp/rbp from the fork's copies.
            self._emit("endfork")
        else:
            self._emit("movq %rbp, %rsp")
            self._emit("popq %rbp")
            self._emit("ret")

    def _offset(self, sym: Symbol) -> int:
        return self._offsets[id(sym)]

    # -- statements ----------------------------------------------------------

    def _statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._statement(child)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, used=False)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._expr(stmt.init)
                self._emit("movq %%rax, %d(%%rbp)"
                           % self._offset(stmt.symbol))
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
            else:
                self._emit("movq $0, %rax")
            self._emit("jmp %s" % self._epilogue_label)
        elif isinstance(stmt, ast.Break):
            self._emit("jmp %s" % self._break_label[-1])
        elif isinstance(stmt, ast.Continue):
            self._emit("jmp %s" % self._continue_label[-1])
        else:  # pragma: no cover
            raise CompileError("cannot generate %r" % stmt, stmt.line, stmt.col)

    def _if(self, stmt: ast.If) -> None:
        end = self._fresh("endif")
        target = self._fresh("else") if stmt.other is not None else end
        self._branch(stmt.cond, target, when_true=False)
        self._statement(stmt.then)
        if stmt.other is not None:
            self._emit("jmp %s" % end)
            self._label(target)
            self._statement(stmt.other)
        self._label(end)

    def _while(self, stmt: ast.While) -> None:
        if self.fork_loops and _forkable_body(stmt.body):
            self._forked_loop(cond=stmt.cond, body=stmt.body, post=None)
            return
        head = self._fresh("while")
        end = self._fresh("wend")
        self._label(head)
        self._branch(stmt.cond, end, when_true=False)
        self._break_label.append(end)
        self._continue_label.append(head)
        self._statement(stmt.body)
        self._break_label.pop()
        self._continue_label.pop()
        self._emit("jmp %s" % head)
        self._label(end)

    def _for(self, stmt: ast.For) -> None:
        if self.fork_loops and _forkable_body(stmt.body):
            if stmt.init is not None:
                self._statement(stmt.init)
            if self._register_forked_loop(stmt):
                return
            self._forked_loop(cond=stmt.cond, body=stmt.body, post=stmt.post)
            return
        head = self._fresh("for")
        post = self._fresh("fpost")
        end = self._fresh("fend")
        if stmt.init is not None:
            self._statement(stmt.init)
        self._label(head)
        if stmt.cond is not None:
            self._branch(stmt.cond, end, when_true=False)
        self._break_label.append(end)
        self._continue_label.append(post)
        self._statement(stmt.body)
        self._break_label.pop()
        self._continue_label.pop()
        self._label(post)
        if stmt.post is not None:
            self._expr(stmt.post, used=False)
        self._emit("jmp %s" % head)
        self._label(end)

    def _forked_loop(self, cond, body, post) -> None:
        """Loop with each iteration body in its own section (paper §5).

        Layout — the fork's *next* instruction is the resume point, so the
        loop bookkeeping (post + back-jump) follows the fork inline while
        the body sits out of line::

            head:  <cond false -> end>
                   fork body        ; current section runs the body,
            post:  <post>           ; a new section resumes the loop here
                   jmp head
            end:   jmp after
            body:  <body> endfork
            after:
        """
        head = self._fresh("ploop")
        end = self._fresh("plend")
        body_label = self._fresh("plbody")
        after = self._fresh("plafter")
        self._label(head)
        if cond is not None:
            self._branch(cond, end, when_true=False)
        self._emit("forkloop %s" % body_label)
        if post is not None:
            self._expr(post, used=False)
        self._emit("jmp %s" % head)
        self._label(end)
        self._emit("jmp %s" % after)
        self._label(body_label)
        self._statement(body)
        self._emit("endfork")
        self._label(after)

    #: scratch pool for register-carried loop counters; all fork-copied.
    _LOOP_REGS = ("r12", "r13", "r14", "r15")

    def _register_forked_loop(self, stmt: ast.For) -> bool:
        """The paper's "vectorized for": the iteration counter lives in a
        fork-copied register, so the loop continuation section computes the
        next index and the exit test entirely in the fetch stage — one
        iteration launches every few cycles, no renaming round trip.

        Applies to the canonical shape ``for (...; i REL limit; i = i ± c)``
        where ``i`` is a local scalar the body neither assigns nor takes
        the address of, and ``limit`` is a constant or a loop-invariant
        local.  Returns False (caller falls back to the memory-carried
        forked loop) when the shape or register budget does not fit.
        """
        plan = _plan_register_loop(stmt)
        if plan is None:
            return False
        counter_sym, limit, op, step = plan
        need = 1 if isinstance(limit, ast.Num) else 2
        if len(self._loop_regs_free) < need:
            return False
        counter_reg = self._loop_regs_free.pop()
        if isinstance(limit, ast.Num):
            limit_operand = "$%d" % limit.value
            limit_reg = None
        else:
            limit_reg = self._loop_regs_free.pop()
            limit_operand = "%%%s" % limit_reg
            self._emit("movq %d(%%rbp), %%%s"
                       % (self._offset(limit.symbol), limit_reg))
        slot = self._offset(counter_sym)
        head = self._fresh("rloop")
        end = self._fresh("rlend")
        body_label = self._fresh("rlbody")
        after = self._fresh("rlafter")

        self._emit("movq %d(%%rbp), %%%s" % (slot, counter_reg))
        self._label(head)
        self._emit("cmpq %s, %%%s" % (limit_operand, counter_reg))
        self._emit("j%s %s" % (_CC_INVERSE[_CMP_CC[op]], end))
        self._emit("movq %%%s, %d(%%rbp)" % (counter_reg, slot))
        self._emit("forkloop %s" % body_label)
        # resume: pure register bookkeeping, fetch-computable
        self._emit("%s $%d, %%%s" % ("addq" if step >= 0 else "subq",
                                     abs(step), counter_reg))
        self._emit("jmp %s" % head)
        self._label(end)
        self._emit("movq %%%s, %d(%%rbp)" % (counter_reg, slot))
        self._emit("jmp %s" % after)
        self._label(body_label)
        self._statement(stmt.body)
        self._emit("endfork")
        self._label(after)
        self._loop_regs_free.append(counter_reg)
        if limit_reg is not None:
            self._loop_regs_free.append(limit_reg)
        return True

    # -- conditions -------------------------------------------------------------

    def _branch(self, cond: ast.Expr, target: str, when_true: bool) -> None:
        """Jump to *target* when cond's truth equals *when_true*."""
        if isinstance(cond, ast.Num):
            if bool(cond.value) == when_true:
                self._emit("jmp %s" % target)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._branch(cond.operand, target, not when_true)
            return
        if isinstance(cond, ast.Binary) and cond.op in _CMP_CC:
            self._compare(cond)
            cc = _CMP_CC[cond.op]
            if not when_true:
                cc = _CC_INVERSE[cc]
            self._emit("j%s %s" % (cc, target))
            return
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            if when_true:
                skip = self._fresh("and")
                self._branch(cond.left, skip, when_true=False)
                self._branch(cond.right, target, when_true=True)
                self._label(skip)
            else:
                self._branch(cond.left, target, when_true=False)
                self._branch(cond.right, target, when_true=False)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            if when_true:
                self._branch(cond.left, target, when_true=True)
                self._branch(cond.right, target, when_true=True)
            else:
                skip = self._fresh("or")
                self._branch(cond.left, skip, when_true=True)
                self._branch(cond.right, target, when_true=False)
                self._label(skip)
            return
        self._expr(cond)
        self._emit("cmpq $0, %rax")
        self._emit("j%s %s" % ("ne" if when_true else "e", target))

    def _compare(self, cond: ast.Binary) -> None:
        """Emit the cmp for a comparison, left in rax vs right."""
        operand = self._simple_operand(cond.right)
        if operand is not None:
            self._expr(cond.left)
            self._emit("cmpq %s, %%rax" % operand)
        else:
            self._binary_operands(cond.left, cond.right)
            self._emit("cmpq %rcx, %rax")

    # -- expressions ------------------------------------------------------------

    def _simple_operand(self, expr: ast.Expr) -> Optional[str]:
        """Render *expr* as a direct operand when it needs no computation."""
        if isinstance(expr, ast.Num):
            return "$%d" % expr.value
        if isinstance(expr, ast.Var):
            sym = expr.symbol
            if sym.kind in ("local", "param"):
                return "%d(%%rbp)" % self._offset(sym)
            if sym.kind == "global":
                return sym.name
        return None

    def _binary_operands(self, left: ast.Expr, right: ast.Expr) -> None:
        """Evaluate left → rax and right → rcx (via a stack temporary)."""
        self._expr(left)
        self._emit("pushq %rax")
        self._expr(right)
        self._emit("movq %rax, %rcx")
        self._emit("popq %rax")

    def _expr(self, expr: ast.Expr, used: bool = True) -> None:
        """Evaluate *expr* into rax.

        ``used=False`` marks a value-discarding context (expression
        statement, for-loop post); assignments then skip materialising
        their value into rax — the store is the whole effect.
        """
        if isinstance(expr, ast.Num):
            self._emit("movq $%d, %%rax" % expr.value)
        elif isinstance(expr, ast.Var):
            self._var_value(expr)
        elif isinstance(expr, ast.Unary):
            self._unary(expr)
        elif isinstance(expr, ast.Binary):
            self._binary(expr)
        elif isinstance(expr, ast.Assign):
            self._assign(expr, used=used)
        elif isinstance(expr, ast.Cond):
            self._ternary(expr)
        elif isinstance(expr, ast.Call):
            self._call(expr)
        elif isinstance(expr, ast.Index):
            self._address(expr)
            self._emit("movq (%rax), %rax")
        else:  # pragma: no cover
            raise CompileError("cannot generate %r" % expr, expr.line,
                               expr.col)

    def _var_value(self, expr: ast.Var) -> None:
        sym = expr.symbol
        if sym.kind in ("local", "param"):
            self._emit("movq %d(%%rbp), %%rax" % self._offset(sym))
        elif sym.kind == "global":
            self._emit("movq %s, %%rax" % sym.name)
        elif sym.kind == "global_array":
            self._emit("movq $%s, %%rax" % sym.name)
        elif sym.kind == "local_array":
            self._emit("leaq %d(%%rbp), %%rax" % self._offset(sym))
        else:  # pragma: no cover
            raise CompileError("bad storage %r" % sym.kind, expr.line,
                               expr.col)

    def _unary(self, expr: ast.Unary) -> None:
        if expr.op == "*":
            self._expr(expr.operand)
            self._emit("movq (%rax), %rax")
            return
        if expr.op == "&":
            self._address(expr.operand)
            return
        if expr.op == "!":
            self._materialize_bool(expr)
            return
        self._expr(expr.operand)
        if expr.op == "-":
            self._emit("negq %rax")
        elif expr.op == "~":
            self._emit("notq %rax")

    def _binary(self, expr: ast.Binary) -> None:
        op = expr.op
        if op in _CMP_CC or op in ("&&", "||"):
            self._materialize_bool(expr)
            return
        if op == "+" and getattr(expr, "ptr_side", None) == "right":
            # long + ptr: evaluate as ptr + long so scaling hits the long.
            expr = ast.Binary(line=expr.line, col=expr.col, op="+",
                              left=expr.right, right=expr.left)
            expr.ptr_side = "left"
            expr.is_ptr_diff = False
        scaled = getattr(expr, "ptr_side", None) == "left" and op in ("+", "-")

        simple = self._simple_operand(expr.right)
        if simple is not None and not scaled and op in (
                "+", "-", "*", "&", "|", "^"):
            self._expr(expr.left)
            mnemonic = {"+": "addq", "-": "subq", "*": "imulq",
                        "&": "andq", "|": "orq", "^": "xorq"}[op]
            self._emit("%s %s, %%rax" % (mnemonic, simple))
            if getattr(expr, "is_ptr_diff", False):
                self._emit("sarq $3, %rax")
            return
        if isinstance(expr.right, ast.Num) and op in ("<<", ">>"):
            self._expr(expr.left)
            mnemonic = "shlq" if op == "<<" else "sarq"
            self._emit("%s $%d, %%rax" % (mnemonic, expr.right.value & 63))
            return

        self._binary_operands(expr.left, expr.right)
        if scaled:
            self._emit("shlq $3, %rcx")       # scale the long by the word
        if op == "+":
            self._emit("addq %rcx, %rax")
        elif op == "-":
            self._emit("subq %rcx, %rax")
            if getattr(expr, "is_ptr_diff", False):
                self._emit("sarq $3, %rax")
        elif op == "*":
            self._emit("imulq %rcx, %rax")
        elif op in ("/", "%"):
            self._emit("cqo")
            self._emit("idivq %rcx")
            if op == "%":
                self._emit("movq %rdx, %rax")
        elif op == "<<":
            self._emit("shlq %rcx, %rax")
        elif op == ">>":
            self._emit("sarq %rcx, %rax")
        elif op == "&":
            self._emit("andq %rcx, %rax")
        elif op == "|":
            self._emit("orq %rcx, %rax")
        elif op == "^":
            self._emit("xorq %rcx, %rax")
        else:  # pragma: no cover
            raise CompileError("cannot generate operator %r" % op,
                               expr.line, expr.col)

    def _materialize_bool(self, expr: ast.Expr) -> None:
        """Evaluate a boolean-producing expression to 0/1 in rax."""
        true_label = self._fresh("btrue")
        end = self._fresh("bend")
        self._branch(expr, true_label, when_true=True)
        self._emit("movq $0, %rax")
        self._emit("jmp %s" % end)
        self._label(true_label)
        self._emit("movq $1, %rax")
        self._label(end)

    def _assign(self, expr: ast.Assign, used: bool = True) -> None:
        target = expr.target
        if isinstance(target, ast.Var):
            sym = target.symbol
            self._expr(expr.value)
            if sym.kind in ("local", "param"):
                self._emit("movq %%rax, %d(%%rbp)" % self._offset(sym))
            else:  # global scalar
                self._emit("movq %%rax, %s" % sym.name)
            return
        self._expr(expr.value)
        self._emit("pushq %rax")
        self._address(target)
        self._emit("popq %rcx")
        self._emit("movq %rcx, (%rax)")
        if used:
            self._emit("movq %rcx, %rax")  # the assignment's value

    def _ternary(self, expr: ast.Cond) -> None:
        other = self._fresh("celse")
        end = self._fresh("cend")
        self._branch(expr.cond, other, when_true=False)
        self._expr(expr.then)
        self._emit("jmp %s" % end)
        self._label(other)
        self._expr(expr.other)
        self._label(end)

    def _call(self, expr: ast.Call) -> None:
        if expr.name == OUT_BUILTIN:
            self._expr(expr.args[0])
            self._emit("out %rax")
            return
        for arg in expr.args:
            self._expr(arg)
            self._emit("pushq %rax")
        for i in reversed(range(len(expr.args))):
            self._emit("popq %%%s" % ARG_REGS[i])
        self._emit("%s %s" % ("fork" if self.fork_mode else "call",
                              expr.name))

    def _address(self, expr: ast.Expr) -> None:
        """Evaluate the address of an lvalue into rax."""
        if isinstance(expr, ast.Var):
            sym = expr.symbol
            if sym.kind in ("local", "param", "local_array"):
                self._emit("leaq %d(%%rbp), %%rax" % self._offset(sym))
            else:
                self._emit("movq $%s, %%rax" % sym.name)
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            self._expr(expr.operand)
            return
        if isinstance(expr, ast.Index):
            index = expr.index
            if isinstance(index, ast.Num):
                self._expr(expr.base)
                if index.value:
                    self._emit("addq $%d, %%rax" % (8 * index.value))
                return
            self._expr(expr.base)
            self._emit("pushq %rax")
            self._expr(index)
            self._emit("shlq $3, %rax")
            self._emit("popq %rcx")
            self._emit("addq %rcx, %rax")
            return
        raise CompileError("expression has no address", expr.line, expr.col)

    # -- data -------------------------------------------------------------------

    def _data_section(self) -> None:
        if not self.unit.globals:
            return
        self.lines.append(".data")
        for decl in self.unit.globals:
            self._label(decl.name)
            if decl.array_size is None:
                value = decl.init_values[0] if decl.init_values else 0
                self._emit(".quad %d" % value)
            else:
                values = list(decl.init_values)
                values += [0] * (decl.array_size - len(values))
                # chunk long arrays for readable listings
                for start in range(0, len(values), 16):
                    chunk = values[start:start + 16]
                    self._emit(".quad %s" % ", ".join(str(v) for v in chunk))


def _plan_register_loop(stmt: ast.For):
    """Match ``for (...; i REL limit; i = i ± c)`` with a safe body.

    Returns ``(counter_symbol, limit_expr, relop, step)`` or None.
    """
    post, cond = stmt.post, stmt.cond
    if not isinstance(post, ast.Assign) or not isinstance(post.target, ast.Var):
        return None
    counter = post.target
    if counter.symbol.kind not in ("local", "param"):
        return None
    value = post.value
    if not isinstance(value, ast.Binary) or value.op not in ("+", "-"):
        return None
    if (isinstance(value.left, ast.Var) and isinstance(value.right, ast.Num)
            and value.left.name == counter.name):
        step = value.right.value
    elif (value.op == "+" and isinstance(value.right, ast.Var)
          and isinstance(value.left, ast.Num)
          and value.right.name == counter.name):
        step = value.left.value
    else:
        return None
    if value.op == "-":
        step = -step
    if step == 0:
        return None
    if not isinstance(cond, ast.Binary) or cond.op not in ("<", "<=", ">",
                                                           ">="):
        return None
    if not (isinstance(cond.left, ast.Var)
            and cond.left.name == counter.name):
        return None
    limit = cond.right
    if isinstance(limit, ast.Num):
        invariant_names = {counter.name}
    elif (isinstance(limit, ast.Var)
          and limit.symbol.kind in ("local", "param")):
        invariant_names = {counter.name, limit.name}
    else:
        return None
    if _mutates_or_escapes(stmt.body, invariant_names):
        return None
    return counter.symbol, limit, cond.op, step


def _mutates_or_escapes(node, names) -> bool:
    """Does any statement/expression under *node* assign one of *names* or
    take its address?"""
    if node is None:
        return False
    if isinstance(node, ast.Assign):
        if isinstance(node.target, ast.Var) and node.target.name in names:
            return True
        return (_mutates_or_escapes(node.target, names)
                or _mutates_or_escapes(node.value, names))
    if isinstance(node, ast.Unary):
        if (node.op == "&" and isinstance(node.operand, ast.Var)
                and node.operand.name in names):
            return True
        return _mutates_or_escapes(node.operand, names)
    if isinstance(node, ast.Binary):
        return (_mutates_or_escapes(node.left, names)
                or _mutates_or_escapes(node.right, names))
    if isinstance(node, ast.Cond):
        return any(_mutates_or_escapes(c, names)
                   for c in (node.cond, node.then, node.other))
    if isinstance(node, ast.Call):
        return any(_mutates_or_escapes(a, names) for a in node.args)
    if isinstance(node, ast.Index):
        return (_mutates_or_escapes(node.base, names)
                or _mutates_or_escapes(node.index, names))
    if isinstance(node, ast.ExprStmt):
        return _mutates_or_escapes(node.expr, names)
    if isinstance(node, ast.VarDecl):
        # An inner declaration shadows the name: conservatively reject.
        if node.name in names:
            return True
        return _mutates_or_escapes(node.init, names)
    if isinstance(node, ast.Block):
        return any(_mutates_or_escapes(s, names) for s in node.stmts)
    if isinstance(node, ast.If):
        return any(_mutates_or_escapes(s, names)
                   for s in (node.cond, node.then, node.other))
    if isinstance(node, ast.While):
        return (_mutates_or_escapes(node.cond, names)
                or _mutates_or_escapes(node.body, names))
    if isinstance(node, ast.For):
        return any(_mutates_or_escapes(s, names)
                   for s in (node.init, node.cond, node.post, node.body))
    if isinstance(node, ast.Return):
        return _mutates_or_escapes(node.value, names)
    return False


def _forkable_body(stmt: ast.Stmt, loop_depth: int = 0) -> bool:
    """A loop body can fork iff no return escapes it and no break/continue
    targets the loop being forked (break/continue inside *nested* loops are
    fine — they resolve within the body's own section)."""
    if isinstance(stmt, ast.Return):
        return False
    if isinstance(stmt, (ast.Break, ast.Continue)):
        return loop_depth > 0
    if isinstance(stmt, ast.Block):
        return all(_forkable_body(s, loop_depth) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        if not _forkable_body(stmt.then, loop_depth):
            return False
        return stmt.other is None or _forkable_body(stmt.other, loop_depth)
    if isinstance(stmt, ast.While):
        return _forkable_body(stmt.body, loop_depth + 1)
    if isinstance(stmt, ast.For):
        return _forkable_body(stmt.body, loop_depth + 1)
    return True


def generate(unit: ast.TranslationUnit, fork_mode: bool = False,
             fork_loops: bool = False, entry_stub: bool = True) -> str:
    """Generate assembly text for an analyzed translation unit."""
    return CodeGen(unit, fork_mode=fork_mode, fork_loops=fork_loops,
                   entry_stub=entry_stub).generate()
