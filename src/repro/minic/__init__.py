"""MiniC: the C subset compiler that produces the paper's workload traces.

The paper's premise is running *unchanged C programs* in parallel; MiniC is
the library's C stand-in.  Typical use::

    from repro.minic import compile_source
    from repro.machine import run_sequential

    prog = compile_source('''
        long A[4] = {1, 2, 3, 4};
        long main() {
            long i; long s = 0;
            for (i = 0; i < 4; i = i + 1) s = s + A[i];
            return s;
        }
    ''')
    assert run_sequential(prog).return_value == 10
"""

from .ast import TranslationUnit
from .compiler import compile_source, compile_to_asm, compile_to_ast
from .lexer import Token, tokenize
from .parser import parse
from .sema import OUT_BUILTIN, Symbol, analyze

__all__ = [
    "OUT_BUILTIN", "Symbol", "Token", "TranslationUnit", "analyze",
    "compile_source", "compile_to_asm", "compile_to_ast", "parse",
    "tokenize",
]
