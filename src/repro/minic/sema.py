"""Semantic analysis for MiniC: scopes, arity, pointer-depth typing.

The analyzer decorates the AST in place:

* every expression node gets its ``depth`` (pointer depth; 0 = long),
* every :class:`~repro.minic.ast.Var` gets ``storage`` and a ``symbol``,
* pointer arithmetic nodes get ``ptr_side`` / ``is_ptr_diff`` markers the
  code generator uses to scale by the word size,
* every function gets ``sym_params`` and ``sym_locals`` symbol lists from
  which the code generator lays out the stack frame.

MiniC typing rules (C-like, pointer depth only):

* ``ptr + long`` / ``long + ptr`` / ``ptr - long`` give the pointer type,
* ``ptr - ptr`` (equal depths) gives long (the element distance),
* comparisons accept equal depths (or a literal), give long,
* all other operators require longs,
* ``*e`` needs depth >= 1; ``&lvalue`` adds one level,
* assignment requires equal depths, or an integer literal on the right.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CompileError
from . import ast

#: Name of the output builtin: ``out(x)`` emits x and evaluates to x.
OUT_BUILTIN = "out"

#: Maximum number of function parameters (the SysV argument registers).
MAX_PARAMS = 6


@dataclass
class Symbol:
    """A named entity: variable, array, parameter or function."""

    name: str
    kind: str                 #: "global", "global_array", "local",
                              #: "local_array", "param" or "func"
    ptr_depth: int = 0        #: element depth for arrays
    array_size: Optional[int] = None
    arity: int = 0            #: functions only
    index: int = 0            #: declaration ordinal (frame layout input)

    @property
    def is_array(self) -> bool:
        return self.kind in ("global_array", "local_array")

    @property
    def value_depth(self) -> int:
        """Depth of the symbol used as an expression (arrays decay)."""
        return self.ptr_depth + 1 if self.is_array else self.ptr_depth


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, Symbol] = {}

    def define(self, sym: Symbol, node: ast.Node) -> None:
        if sym.name in self.names:
            raise CompileError("redefinition of %r" % sym.name,
                               node.line, node.col)
        self.names[sym.name] = sym

    def lookup(self, name: str) -> Optional[Symbol]:
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


def analyze(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Type-check and annotate *unit* in place; returns it for chaining."""
    _Analyzer(unit).run()
    return unit


class _Analyzer:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.globals = _Scope()
        self.current_func: Optional[ast.FuncDecl] = None
        self.scope: _Scope = self.globals
        self.loop_depth = 0

    def _err(self, message: str, node: ast.Node) -> CompileError:
        return CompileError(message, node.line, node.col)

    # -- driver -----------------------------------------------------------

    def run(self) -> None:
        for decl in self.unit.globals:
            kind = "global_array" if decl.array_size is not None else "global"
            self.globals.define(Symbol(
                name=decl.name, kind=kind, ptr_depth=decl.ptr_depth,
                array_size=decl.array_size), decl)
        for func in self.unit.functions:
            if len(func.params) > MAX_PARAMS:
                raise self._err(
                    "too many parameters (max %d)" % MAX_PARAMS, func)
            self.globals.define(Symbol(
                name=func.name, kind="func", arity=len(func.params)), func)
        for func in self.unit.functions:
            self._function(func)
        self.unit.global_symbols = dict(self.globals.names)

    def _function(self, func: ast.FuncDecl) -> None:
        self.current_func = func
        func.sym_params = []
        func.sym_locals = []
        self.scope = _Scope(self.globals)
        for i, param in enumerate(func.params):
            sym = Symbol(name=param.name, kind="param",
                         ptr_depth=param.ptr_depth, index=i)
            self.scope.define(sym, param)
            func.sym_params.append(sym)
        self._block(func.body, new_scope=False)
        self.scope = self.globals
        self.current_func = None

    # -- statements -----------------------------------------------------------

    def _block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scope = _Scope(self.scope)
        for stmt in block.stmts:
            self._statement(stmt)
        if new_scope:
            self.scope = self.scope.parent

    def _statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.cond)
            self._statement(stmt.then)
            if stmt.other is not None:
                self._statement(stmt.other)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.cond)
            self.loop_depth += 1
            self._statement(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self.scope = _Scope(self.scope)   # for-scope holds the init decl
            if stmt.init is not None:
                self._statement(stmt.init)
            if stmt.cond is not None:
                self._expr(stmt.cond)
            if stmt.post is not None:
                self._expr(stmt.post)
            self.loop_depth += 1
            self._statement(stmt.body)
            self.loop_depth -= 1
            self.scope = self.scope.parent
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                depth = self._expr(stmt.value)
                if depth != 0 and not isinstance(stmt.value, ast.Num):
                    raise self._err("functions return long, not pointers",
                                    stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_depth:
                raise self._err("break outside a loop", stmt)
        elif isinstance(stmt, ast.Continue):
            if not self.loop_depth:
                raise self._err("continue outside a loop", stmt)
        else:  # pragma: no cover
            raise self._err("unknown statement %r" % stmt, stmt)

    def _var_decl(self, stmt: ast.VarDecl) -> None:
        kind = "local_array" if stmt.array_size is not None else "local"
        sym = Symbol(name=stmt.name, kind=kind, ptr_depth=stmt.ptr_depth,
                     array_size=stmt.array_size,
                     index=len(self.current_func.sym_locals))
        if stmt.init is not None:
            depth = self._expr(stmt.init)
            self._check_assignable(stmt.ptr_depth, depth, stmt.init, stmt)
        self.scope.define(sym, stmt)
        self.current_func.sym_locals.append(sym)
        stmt.symbol = sym

    # -- expressions ----------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> int:
        depth = self._expr_inner(expr)
        expr.depth = depth
        return depth

    def _expr_inner(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Num):
            return 0
        if isinstance(expr, ast.Var):
            return self._var(expr)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.Cond):
            return self._cond(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Index):
            return self._index(expr)
        raise self._err("unknown expression %r" % expr, expr)  # pragma: no cover

    def _var(self, expr: ast.Var) -> int:
        sym = self.scope.lookup(expr.name)
        if sym is None:
            raise self._err("undeclared identifier %r" % expr.name, expr)
        if sym.kind == "func":
            raise self._err("function %r used as a value" % expr.name, expr)
        expr.storage = sym.kind
        expr.symbol = sym
        return sym.value_depth

    def _unary(self, expr: ast.Unary) -> int:
        depth = self._expr(expr.operand)
        if expr.op == "*":
            if depth < 1:
                raise self._err("cannot dereference a long", expr)
            return depth - 1
        if expr.op == "&":
            if isinstance(expr.operand, ast.Var) and expr.operand.symbol.is_array:
                raise self._err("'&' on an array (the name already decays)",
                                expr)
            self._check_lvalue(expr.operand, expr)
            return depth + 1
        if depth != 0:
            raise self._err("unary '%s' needs a long operand" % expr.op, expr)
        return 0

    def _binary(self, expr: ast.Binary) -> int:
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        op = expr.op
        expr.ptr_side = None
        expr.is_ptr_diff = False
        if op == "+":
            if left and right:
                raise self._err("cannot add two pointers", expr)
            if left:
                expr.ptr_side = "left"
                return left
            if right:
                expr.ptr_side = "right"
                return right
            return 0
        if op == "-":
            if left and right:
                if left != right:
                    raise self._err("pointer difference needs equal types",
                                    expr)
                expr.is_ptr_diff = True
                return 0
            if right:
                raise self._err("cannot subtract a pointer from a long", expr)
            if left:
                expr.ptr_side = "left"
                return left
            return 0
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if left != right and not (
                    isinstance(expr.left, ast.Num)
                    or isinstance(expr.right, ast.Num)):
                raise self._err("comparison of incompatible types", expr)
            return 0
        # &&, ||, arithmetic, bitwise, shifts: longs only.
        if left or right:
            raise self._err("operator '%s' needs long operands" % op, expr)
        return 0

    def _assign(self, expr: ast.Assign) -> int:
        target_depth = self._expr(expr.target)
        self._check_lvalue(expr.target, expr)
        value_depth = self._expr(expr.value)
        self._check_assignable(target_depth, value_depth, expr.value, expr)
        return target_depth

    def _check_assignable(self, target_depth, value_depth, value, node) -> None:
        if target_depth == value_depth:
            return
        # The only depth-crossing assignment C allows without a cast is the
        # null-pointer literal.
        if isinstance(value, ast.Num) and value.value == 0:
            return
        raise self._err(
            "cannot assign depth-%d value to depth-%d target"
            % (value_depth, target_depth), node)

    def _check_lvalue(self, expr: ast.Expr, node: ast.Node) -> None:
        if isinstance(expr, ast.Var):
            if expr.symbol.is_array:
                raise self._err("arrays are not assignable", node)
            return
        if isinstance(expr, ast.Index):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise self._err("not an lvalue", node)

    def _cond(self, expr: ast.Cond) -> int:
        self._expr(expr.cond)
        then_depth = self._expr(expr.then)
        other_depth = self._expr(expr.other)
        if then_depth != other_depth and not (
                isinstance(expr.then, ast.Num)
                or isinstance(expr.other, ast.Num)):
            raise self._err("ternary branches have incompatible types", expr)
        return max(then_depth, other_depth)

    def _call(self, expr: ast.Call) -> int:
        if expr.name == OUT_BUILTIN:
            if len(expr.args) != 1:
                raise self._err("out() takes exactly one argument", expr)
            self._expr(expr.args[0])
            return 0
        sym = self.globals.lookup(expr.name)
        if sym is None or sym.kind != "func":
            raise self._err("call to undeclared function %r" % expr.name,
                            expr)
        if len(expr.args) != sym.arity:
            raise self._err(
                "%s() takes %d argument(s), got %d"
                % (expr.name, sym.arity, len(expr.args)), expr)
        func = self.unit.function(expr.name)
        for arg, param in zip(expr.args, func.params):
            depth = self._expr(arg)
            self._check_assignable(param.ptr_depth, depth, arg, expr)
        return 0

    def _index(self, expr: ast.Index) -> int:
        base_depth = self._expr(expr.base)
        if base_depth < 1:
            raise self._err("indexed value is not a pointer", expr)
        index_depth = self._expr(expr.index)
        if index_depth != 0:
            raise self._err("array index must be a long", expr)
        return base_depth - 1
