"""Recursive-descent parser for MiniC with precedence-climbing expressions."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import CompileError
from . import ast
from .lexer import Token, tokenize

#: Binary operator precedence (higher binds tighter).  Assignment and the
#: ternary operator are handled separately (right-associative).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_UNARY_OPS = ("-", "!", "~", "*", "&")


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source into an (untyped) AST."""
    return _Parser(tokenize(source)).unit()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tok
        if token.kind != "eof":
            self.pos += 1
        return token

    def _err(self, message: str, token: Token = None) -> CompileError:
        token = token or self.tok
        return CompileError(message, token.line, token.col)

    def _expect_op(self, text: str) -> Token:
        if not self.tok.is_op(text):
            raise self._err("expected '%s', found %s" % (text, self.tok.describe()))
        return self._advance()

    def _expect_ident(self) -> Token:
        if self.tok.kind != "ident":
            raise self._err("expected identifier, found %s" % self.tok.describe())
        return self._advance()

    def _accept_op(self, text: str) -> bool:
        if self.tok.is_op(text):
            self._advance()
            return True
        return False

    # -- top level ------------------------------------------------------------

    def unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1, col=1)
        while self.tok.kind != "eof":
            depth, name = self._decl_header()
            if self.tok.is_op("("):
                unit.functions.append(self._function(depth, name))
            else:
                unit.globals.append(self._global(depth, name))
        return unit

    def _decl_header(self) -> Tuple[int, Token]:
        if not self.tok.is_kw("long"):
            raise self._err("expected 'long', found %s" % self.tok.describe())
        self._advance()
        depth = 0
        while self._accept_op("*"):
            depth += 1
        return depth, self._expect_ident()

    def _function(self, depth: int, name: Token) -> ast.FuncDecl:
        if depth:
            raise self._err("functions return long (no pointer returns)", name)
        self._expect_op("(")
        params: List[ast.Param] = []
        if not self.tok.is_op(")"):
            while True:
                pdepth, pname = self._decl_header()
                params.append(ast.Param(line=pname.line, col=pname.col,
                                        name=pname.text, ptr_depth=pdepth))
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        body = self._block()
        return ast.FuncDecl(line=name.line, col=name.col, name=name.text,
                            params=params, body=body)

    def _global(self, depth: int, name: Token) -> ast.GlobalDecl:
        size = None
        if self._accept_op("["):
            size = self._const_int("array size")
            if size <= 0:
                raise self._err("array size must be positive", name)
            self._expect_op("]")
        init: List[int] = []
        if self._accept_op("="):
            if self._accept_op("{"):
                if size is None:
                    raise self._err("brace initializer on a scalar", name)
                if not self.tok.is_op("}"):
                    while True:
                        init.append(self._const_int("initializer"))
                        if not self._accept_op(","):
                            break
                self._expect_op("}")
                if len(init) > size:
                    raise self._err("too many initializers for %s" % name.text,
                                    name)
            else:
                if size is not None:
                    raise self._err("array initializer needs braces", name)
                init.append(self._const_int("initializer"))
        self._expect_op(";")
        return ast.GlobalDecl(line=name.line, col=name.col, name=name.text,
                              ptr_depth=depth, array_size=size,
                              init_values=init)

    def _const_int(self, what: str) -> int:
        negative = self.tok.is_op("-")
        if negative:
            self._advance()
        if self.tok.kind != "num":
            raise self._err("expected constant %s" % what)
        value = self._advance().value
        return -value if negative else value

    # -- statements ----------------------------------------------------------

    def _block(self) -> ast.Block:
        start = self._expect_op("{")
        stmts: List[ast.Stmt] = []
        while not self.tok.is_op("}"):
            if self.tok.kind == "eof":
                raise self._err("unterminated block", start)
            stmts.append(self._statement())
        self._advance()
        return ast.Block(line=start.line, col=start.col, stmts=stmts)

    def _statement(self) -> ast.Stmt:
        token = self.tok
        if token.is_op("{"):
            return self._block()
        if token.is_op(";"):
            self._advance()
            return ast.Block(line=token.line, col=token.col)
        if token.is_kw("long"):
            return self._var_decl()
        if token.is_kw("if"):
            return self._if()
        if token.is_kw("while"):
            return self._while()
        if token.is_kw("for"):
            return self._for()
        if token.is_kw("return"):
            self._advance()
            value = None
            if not self.tok.is_op(";"):
                value = self._expression()
            self._expect_op(";")
            return ast.Return(line=token.line, col=token.col, value=value)
        if token.is_kw("break"):
            self._advance()
            self._expect_op(";")
            return ast.Break(line=token.line, col=token.col)
        if token.is_kw("continue"):
            self._advance()
            self._expect_op(";")
            return ast.Continue(line=token.line, col=token.col)
        expr = self._expression()
        self._expect_op(";")
        return ast.ExprStmt(line=expr.line, col=expr.col, expr=expr)

    def _var_decl(self) -> ast.VarDecl:
        depth, name = self._decl_header()
        size = None
        if self._accept_op("["):
            size = self._const_int("array size")
            if size <= 0:
                raise self._err("array size must be positive", name)
            self._expect_op("]")
        init = None
        if self._accept_op("="):
            if size is not None:
                raise self._err("local arrays cannot be initialized", name)
            init = self._expression()
        self._expect_op(";")
        return ast.VarDecl(line=name.line, col=name.col, name=name.text,
                           ptr_depth=depth, array_size=size, init=init)

    def _if(self) -> ast.If:
        token = self._advance()
        self._expect_op("(")
        cond = self._expression()
        self._expect_op(")")
        then = self._statement()
        other = None
        if self.tok.is_kw("else"):
            self._advance()
            other = self._statement()
        return ast.If(line=token.line, col=token.col, cond=cond, then=then,
                      other=other)

    def _while(self) -> ast.While:
        token = self._advance()
        self._expect_op("(")
        cond = self._expression()
        self._expect_op(")")
        return ast.While(line=token.line, col=token.col, cond=cond,
                         body=self._statement())

    def _for(self) -> ast.For:
        token = self._advance()
        self._expect_op("(")
        init: Optional[ast.Stmt] = None
        if self.tok.is_kw("long"):
            init = self._var_decl()               # consumes the ';'
        elif self._accept_op(";"):
            init = None
        else:
            expr = self._expression()
            self._expect_op(";")
            init = ast.ExprStmt(line=expr.line, col=expr.col, expr=expr)
        cond = None
        if not self.tok.is_op(";"):
            cond = self._expression()
        self._expect_op(";")
        post = None
        if not self.tok.is_op(")"):
            post = self._expression()
        self._expect_op(")")
        return ast.For(line=token.line, col=token.col, init=init, cond=cond,
                       post=post, body=self._statement())

    # -- expressions -----------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._assignment()

    def _assignment(self) -> ast.Expr:
        left = self._ternary()
        if self.tok.is_op("="):
            token = self._advance()
            value = self._assignment()           # right associative
            if not isinstance(left, (ast.Var, ast.Index, ast.Unary)) or (
                    isinstance(left, ast.Unary) and left.op != "*"):
                raise self._err("assignment target is not an lvalue", token)
            return ast.Assign(line=token.line, col=token.col, target=left,
                              value=value)
        return left

    def _ternary(self) -> ast.Expr:
        cond = self._binary(1)
        if self.tok.is_op("?"):
            token = self._advance()
            then = self._expression()
            self._expect_op(":")
            other = self._ternary()
            return ast.Cond(line=token.line, col=token.col, cond=cond,
                            then=then, other=other)
        return cond

    def _binary(self, min_prec: int) -> ast.Expr:
        left = self._unary()
        while True:
            token = self.tok
            prec = _PRECEDENCE.get(token.text) if token.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._binary(prec + 1)
            left = ast.Binary(line=token.line, col=token.col, op=token.text,
                              left=left, right=right)

    def _unary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "op" and token.text in _UNARY_OPS:
            self._advance()
            operand = self._unary()
            return ast.Unary(line=token.line, col=token.col, op=token.text,
                             operand=operand)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            if self.tok.is_op("["):
                token = self._advance()
                index = self._expression()
                self._expect_op("]")
                expr = ast.Index(line=token.line, col=token.col, base=expr,
                                 index=index)
            elif self.tok.is_op("("):
                token = self._advance()
                if not isinstance(expr, ast.Var):
                    raise self._err("call target must be a function name",
                                    token)
                args: List[ast.Expr] = []
                if not self.tok.is_op(")"):
                    while True:
                        args.append(self._expression())
                        if not self._accept_op(","):
                            break
                self._expect_op(")")
                expr = ast.Call(line=token.line, col=token.col,
                                name=expr.name, args=args)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "num":
            self._advance()
            return ast.Num(line=token.line, col=token.col, value=token.value)
        if token.kind == "ident":
            self._advance()
            return ast.Var(line=token.line, col=token.col, name=token.text)
        if token.is_op("("):
            self._advance()
            expr = self._expression()
            self._expect_op(")")
            return expr
        raise self._err("expected expression, found %s" % token.describe())
