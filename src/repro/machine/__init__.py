"""Functional execution engines: sequential (call/ret) and forked (sections).

* :class:`SequentialMachine` / :func:`run_sequential` — the paper's Figure 3
  baseline semantics.
* :class:`ForkedMachine` / :func:`run_forked` — the paper's Section 2
  execution model, producing per-instruction ``(section, index)`` labels and
  the section table/tree of Figures 4 and 6.
* :class:`Trace` / :class:`TraceEntry` — dynamic traces for the ILP study.
* :mod:`repro.machine.executor` — the single definition of instruction
  semantics, shared with the cycle simulator.
"""

from .base import BaseMachine, HALT_SENTINEL, RunResult
from .executor import to_signed, to_unsigned
from .forked import ForkedMachine, SectionInfo, run_forked
from .memory import Memory
from .sequential import SequentialMachine, run_sequential
from .trace import Trace, TraceEntry

__all__ = [
    "BaseMachine", "ForkedMachine", "HALT_SENTINEL", "Memory", "RunResult",
    "SectionInfo", "SequentialMachine", "Trace", "TraceEntry", "run_forked",
    "run_sequential", "to_signed", "to_unsigned",
]
