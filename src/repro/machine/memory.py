"""Word-addressed flat data memory shared by the execution engines."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..errors import MemoryError_
from ..isa.program import WORD
from .executor import MASK


class Memory:
    """Sparse 64-bit word memory.

    Every access is one aligned 8-byte word; misalignment raises
    :class:`repro.errors.MemoryError_` (the toy ISA has no sub-word
    accesses).  Unwritten words read as zero, like a zero-initialized
    address space.
    """

    __slots__ = ("_words",)

    def __init__(self, image: Dict[int, int] = None):
        self._words: Dict[int, int] = dict(image) if image else {}

    @staticmethod
    def check_aligned(addr: int) -> None:
        if addr % WORD:
            raise MemoryError_("misaligned access at %#x" % addr)
        if addr < 0 or addr > MASK:
            raise MemoryError_("address out of range: %#x" % addr)

    def load(self, addr: int) -> int:
        self.check_aligned(addr)
        return self._words.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        self.check_aligned(addr)
        self._words[addr] = value & MASK

    def load_range(self, addr: int, count: int) -> List[int]:
        """Read *count* consecutive words starting at *addr*."""
        return [self.load(addr + i * WORD) for i in range(count)]

    def store_range(self, addr: int, values: Iterable[int]) -> None:
        for i, value in enumerate(values):
            self.store(addr + i * WORD, value)

    def nonzero_words(self) -> Dict[int, int]:
        """Snapshot of all words currently holding a nonzero value."""
        return {a: v for a, v in self._words.items() if v}

    def written_words(self) -> Dict[int, int]:
        """Snapshot of every word that was ever stored (even zeros)."""
        return dict(self._words)

    def copy(self) -> "Memory":
        return Memory(self._words)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return self.nonzero_words() == other.nonzero_words()

    def __len__(self) -> int:
        return len(self._words)
