"""Functional semantics of fork/endfork programs: the section machine.

The paper's execution model (Section 2) divides a run into *sections*:

* ``fork <f>`` starts a new section at the *resume point* (the instruction
  following the fork) while the current section continues at ``<f>``.  The
  new section receives copies of the stack pointer and the non-volatile
  registers as of the fork; its other registers are *empty* and will be
  satisfied by renaming requests to the preceding section.
* ``endfork`` terminates a section.
* Sections are *totally ordered*; the order reconstructs the sequential
  trace, and every read matches the closest preceding write in that order.

This machine realizes those semantics exactly by executing the program
depth-first in the total order: at a ``fork`` it pushes the resume point
(with the copied-register snapshot) and continues into the target; at an
``endfork`` it pops the most recent resume point, restores the copied
registers from the snapshot, and *keeps* every other register and all of
memory — which is precisely the "closest preceding write in the total order"
value that distributed renaming would deliver.  Section ids are assigned in
pop order, matching the paper's Figure 4/6 numbering (1-based).

The machine therefore serves as the oracle for the distributed cycle
simulator: same final registers, memory, and output, with every dynamic
instruction labeled ``(section, index)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ExecutionError, SanitizerError
from ..isa.program import Program
from ..isa.registers import FORK_COPIED_REGS
from .base import DEFAULT_MAX_STEPS, BaseMachine, RunResult


@dataclass
class SectionInfo:
    """Static description of one section of a forked run."""

    sid: int                  #: 1-based section id, in total (trace) order
    parent: int               #: id of the creating section (0 for the root)
    fork_seq: int             #: trace seq of the creating fork (-1 for root)
    start_ip: int             #: static instruction index of the first instr
    depth: int                #: call level of the section's first instr
    first_seq: int = -1       #: trace seq of the section's first instr
    length: int = 0           #: number of dynamic instructions

    def describe(self) -> str:
        return "section %d: start=%d parent=%d depth=%d len=%d" % (
            self.sid, self.start_ip, self.parent, self.depth, self.length)


@dataclass
class _Resume:
    ip: int
    saved_regs: Dict[str, int]
    parent: int
    fork_seq: int
    depth: int


class ForkedMachine(BaseMachine):
    """Executes a fork/endfork program in the paper's section model.

    ``call``/``ret`` remain available (a program may fork only some
    functions), and ``fork``/``endfork`` implement sections.  The run ends
    when a section endforks with no pending resume point (the root section's
    end) — reported as ``halted == "endfork"``.
    """

    def __init__(self, program: Program, max_steps: int = DEFAULT_MAX_STEPS,
                 copied_regs=FORK_COPIED_REGS, initial_regs=None,
                 sanitize: bool = False):
        super().__init__(program, max_steps=max_steps,
                         initial_regs=initial_regs)
        self.copied_regs = frozenset(copied_regs)
        self._pending: List[_Resume] = []
        self.section = 1
        self.sections: List[SectionInfo] = [
            SectionInfo(sid=1, parent=0, fork_seq=-1,
                        start_ip=program.entry, depth=0, first_seq=0)
        ]
        self.forks_executed = 0
        self.sanitize = sanitize
        if sanitize:
            # deferred import: repro.analysis builds on fork/isa, so the
            # machine must not pull it in at module level
            from ..analysis.cfg import CFG
            from ..analysis.dataflow import liveness
            self._san_flow = liveness(CFG(program), "flow")
            self._san_allowed: Dict[int, frozenset] = {}
            self._san_written: set = set()

    # -- sanitizer -----------------------------------------------------------

    def _san_live_at(self, start_ip: int) -> frozenset:
        hit = self._san_allowed.get(start_ip)
        if hit is None:
            hit = self._san_flow.regs_in(start_ip)
            self._san_allowed[start_ip] = hit
        return hit

    def _san_check(self) -> None:
        """Single-assignment/renaming invariant: every register this
        section reads before writing must be in the static flow live-in
        of the section's start — otherwise the renaming protocol was
        never asked to deliver it and the read is undefined under
        distribution (it works here only because this machine keeps one
        register file)."""
        instr = self.program.code[self.ip]
        allowed = None
        for reg in sorted(instr.reg_reads()):
            if reg in self._san_written:
                continue
            if allowed is None:
                allowed = self._san_live_at(
                    self.sections[self.section - 1].start_ip)
            if reg not in allowed:
                raise SanitizerError(
                    "section %d reads %s at addr %d (line %d: `%s`) but %s "
                    "is neither written earlier in the section nor in its "
                    "static live-across set %s"
                    % (self.section, reg, instr.addr, instr.source_line,
                       instr, reg, sorted(allowed)),
                    addr=instr.addr, line=instr.source_line)

    def step(self):
        if not self.sanitize:
            return super().step()
        if self.halted is None and 0 <= self.ip < len(self.program.code):
            self._san_check()
        sid = self.section
        entry = super().step()
        if self.section != sid:
            # the endfork's writes belong to the finished section; the
            # resume section starts with nothing written
            self._san_written = set()
        else:
            self._san_written.update(entry.reg_writes)
        return entry

    # -- control hooks ------------------------------------------------------

    def _op_fork(self, instr) -> Optional[int]:
        snapshot = {r: self.regs[r] for r in self.copied_regs}
        self._pending.append(_Resume(
            ip=self.ip + 1,
            saved_regs=snapshot,
            parent=self.section,
            fork_seq=self.steps,
            depth=self.depth,
        ))
        self.forks_executed += 1
        # The current section continues into the callee, one level deeper.
        self.depth += 1
        return self._target(instr)

    def _op_endfork(self, instr) -> Optional[int]:
        self._finish_section()
        if not self._pending:
            self.halted = "endfork"
            return None
        resume = self._pending.pop()
        self.regs.update(resume.saved_regs)
        self.depth = resume.depth
        self.section += 1
        self.sections.append(SectionInfo(
            sid=self.section,
            parent=resume.parent,
            fork_seq=resume.fork_seq,
            start_ip=resume.ip,
            depth=resume.depth,
            first_seq=self.steps + 1,
        ))
        return resume.ip

    def _op_ret(self, instr, mem_reads, mem_writes) -> Optional[int]:
        next_ip = super()._op_ret(instr, mem_reads, mem_writes)
        if self.halted == "ret":
            if self._pending:
                raise ExecutionError(
                    "ret to the halt sentinel with %d live section(s) pending")
            self._finish_section()
        return next_ip

    def _op_hlt(self, instr) -> Optional[int]:
        if self._pending:
            raise ExecutionError(
                "hlt with %d live section(s) pending — the fork "
                "transformation must end every flow with endfork"
                % len(self._pending))
        self._finish_section()
        self.halted = "hlt"
        return None

    def _finish_section(self) -> None:
        info = self.sections[self.section - 1]
        info.length = self.section_index + 1

    # -- section structure ----------------------------------------------------

    def section_table(self) -> List[SectionInfo]:
        """All sections of the (completed) run, in total order."""
        if self.halted is None:
            raise ExecutionError("run the machine to completion first")
        return list(self.sections)

    def section_tree(self) -> Dict[int, List[int]]:
        """Creator → created-sections adjacency (the paper's Figure 4)."""
        tree: Dict[int, List[int]] = {}
        for info in self.sections:
            if info.parent:
                tree.setdefault(info.parent, []).append(info.sid)
        return tree


def run_forked(program: Program, record_trace: bool = False,
               max_steps: int = None, copied_regs=FORK_COPIED_REGS,
               sanitize: bool = False) -> Tuple[RunResult, ForkedMachine]:
    """Run a forked program; returns (result, machine) so callers can read
    the section table.  ``sanitize`` turns on the runtime renaming-invariant
    checks (:class:`~repro.errors.SanitizerError` on violation)."""
    kwargs = {} if max_steps is None else {"max_steps": max_steps}
    machine = ForkedMachine(program, copied_regs=copied_regs,
                            sanitize=sanitize, **kwargs)
    result = machine.run(record_trace=record_trace)
    return result, machine
