"""Shared interpreter core for the sequential and forked functional machines.

The two machines differ only in how they treat the four control-transfer
opcodes ``call``/``ret``/``fork``/``endfork``; everything else — operand
evaluation, ALU semantics, memory, tracing — lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ExecutionError
from ..isa.instructions import CONDITION_CODES, Instruction
from ..isa.operands import Imm, Mem, Reg
from ..isa.program import HALT_ADDR, Program, STACK_TOP, WORD
from ..isa.registers import ALL_REGS, FLAGS, STACK_POINTER
from . import executor
from .executor import MASK
from .memory import Memory
from .trace import Trace, TraceEntry

#: The value stored as the bottom-of-stack return address; ``ret`` into it
#: halts the machine.
HALT_SENTINEL = HALT_ADDR & MASK

#: Default dynamic instruction budget; exceeded means a runaway program.
DEFAULT_MAX_STEPS = 50_000_000


@dataclass
class RunResult:
    """Outcome of a complete program run."""

    output: List[int]
    steps: int
    regs: Dict[str, int]
    halted: str                      #: "hlt", "ret" or "endfork"
    memory: Memory
    trace: Optional[Trace] = None

    @property
    def return_value(self) -> int:
        """Value of rax at halt (the C ``main`` result)."""
        return self.regs["rax"]

    @property
    def signed_output(self) -> List[int]:
        return [executor.to_signed(v) for v in self.output]


class BaseMachine:
    """Functional interpreter over a :class:`Program`.

    Subclasses provide the control semantics via ``_op_call``, ``_op_ret``,
    ``_op_fork`` and ``_op_endfork`` hooks; each returns the next instruction
    index or ``None`` to halt.
    """

    def __init__(self, program: Program, max_steps: int = DEFAULT_MAX_STEPS,
                 initial_regs: Dict[str, int] = None):
        self.program = program
        self.max_steps = max_steps
        self.regs: Dict[str, int] = {r: 0 for r in ALL_REGS}
        self.regs[STACK_POINTER] = STACK_TOP
        if initial_regs:
            for name, value in initial_regs.items():
                self.regs[name] = value & MASK
        self.mem = Memory(program.data)
        self.ip = program.entry
        self.output: List[int] = []
        self.steps = 0
        self.halted: Optional[str] = None
        self.depth = 0
        self.section = 0
        self.section_index = 0
        self._push_value(HALT_SENTINEL)

    # -- public API ---------------------------------------------------------

    def run(self, record_trace: bool = False) -> RunResult:
        """Run to completion; optionally keep the full trace."""
        entries = [] if record_trace else None
        for entry in self.step_entries():
            if entries is not None:
                entries.append(entry)
        return RunResult(
            output=list(self.output),
            steps=self.steps,
            regs=dict(self.regs),
            halted=self.halted or "hlt",
            memory=self.mem,
            trace=Trace(entries) if entries is not None else None,
        )

    def step_entries(self) -> Iterator[TraceEntry]:
        """Generator over executed-instruction records; runs the machine."""
        while self.halted is None:
            yield self.step()

    # -- single step ----------------------------------------------------------

    def step(self) -> TraceEntry:
        if self.halted is not None:
            raise ExecutionError("machine already halted")
        if self.steps >= self.max_steps:
            raise ExecutionError(
                "instruction budget exhausted (%d steps) at ip=%d"
                % (self.max_steps, self.ip))
        if not 0 <= self.ip < len(self.program.code):
            raise ExecutionError("instruction pointer out of code: %d" % self.ip)

        instr = self.program.code[self.ip]
        mem_reads: List[int] = []
        mem_writes: List[int] = []
        taken: Optional[bool] = None
        next_ip: Optional[int] = self.ip + 1
        op = instr.opcode
        kind = instr.kind
        # The executing instruction belongs to the section/depth current at
        # dispatch time; control hooks may switch both for the *next* one.
        entry_section = self.section
        entry_index = self.section_index
        entry_depth = self.depth

        if op == "mov":
            value = self._value(instr.operands[0], mem_reads)
            self._write(instr.operands[1], value, mem_writes)
        elif op in ("add", "sub", "and", "or", "xor", "imul"):
            src = self._value(instr.operands[0], mem_reads)
            dst = self._value(instr.operands[1], mem_reads)
            result, flags = executor.binary_result(op, src, dst)
            self._write(instr.operands[1], result, mem_writes)
            if flags is not None:
                self.regs[FLAGS] = flags
        elif op in ("cmp", "test"):
            src = self._value(instr.operands[0], mem_reads)
            dst = self._value(instr.operands[1], mem_reads)
            self.regs[FLAGS] = executor.compare_flags(op, src, dst)
        elif op in ("inc", "dec", "neg", "not"):
            value = self._value(instr.operands[0], mem_reads)
            result, flags = executor.unary_result(op, value, self.regs[FLAGS])
            self._write(instr.operands[0], result, mem_writes)
            if flags is not None:
                self.regs[FLAGS] = flags
        elif op in ("shl", "shr", "sar"):
            if len(instr.operands) == 1:
                count, target = 1, instr.operands[0]
            else:
                count = self._value(instr.operands[0], mem_reads)
                target = instr.operands[1]
            value = self._value(target, mem_reads)
            result, flags = executor.shift_result(op, value, count)
            self._write(target, result, mem_writes)
            self.regs[FLAGS] = flags
        elif op == "lea":
            mem = instr.operands[0]
            if not isinstance(mem, Mem):
                raise ExecutionError("lea needs a memory operand")
            self._write(instr.operands[1], self._ea(mem), mem_writes)
        elif op == "push":
            value = self._value(instr.operands[0], mem_reads)
            mem_writes.append(self._push_value(value))
        elif op == "pop":
            value, addr = self._pop_value()
            mem_reads.append(addr)
            self._write(instr.operands[0], value, mem_writes)
        elif op == "cqo":
            self.regs["rdx"] = executor.cqo_result(self.regs["rax"])
        elif op == "idiv":
            divisor = self._value(instr.operands[0], mem_reads)
            quotient, remainder = executor.idiv_result(
                self.regs["rax"], self.regs["rdx"], divisor)
            self.regs["rax"] = quotient
            self.regs["rdx"] = remainder
        elif op == "out":
            self.output.append(self._value(instr.operands[0], mem_reads))
        elif op == "nop":
            pass
        elif op == "jmp":
            next_ip = self._target(instr)
        elif kind == "jcc":
            taken = executor.condition_holds(
                CONDITION_CODES[op], self.regs[FLAGS])
            if taken:
                next_ip = self._target(instr)
        elif op == "call":
            next_ip = self._op_call(instr, mem_reads, mem_writes)
        elif op == "ret":
            next_ip = self._op_ret(instr, mem_reads, mem_writes)
        elif kind == "fork":
            next_ip = self._op_fork(instr)
        elif op == "endfork":
            next_ip = self._op_endfork(instr)
        elif op == "hlt":
            next_ip = self._op_hlt(instr)
        else:  # pragma: no cover - the opcode table is closed
            raise ExecutionError("unimplemented opcode %r" % op)

        entry = TraceEntry(
            seq=self.steps,
            addr=instr.addr,
            instr=instr,
            reg_reads=instr.reg_reads(),
            reg_writes=instr.reg_writes(),
            mem_reads=tuple(mem_reads),
            mem_writes=tuple(mem_writes),
            taken=taken,
            depth=entry_depth,
            section=entry_section,
            section_index=entry_index,
        )
        self.steps += 1
        if self.section == entry_section:
            self.section_index = entry_index + 1
        else:
            self.section_index = 0
        if next_ip is None:
            if self.halted is None:
                self.halted = "hlt"
        else:
            self.ip = next_ip
        return entry

    # -- control hooks (overridden by subclasses) ---------------------------

    def _op_call(self, instr, mem_reads, mem_writes) -> Optional[int]:
        mem_writes.append(self._push_value(self.ip + 1))
        self.depth += 1
        return self._target(instr)

    def _op_ret(self, instr, mem_reads, mem_writes) -> Optional[int]:
        value, addr = self._pop_value()
        mem_reads.append(addr)
        if value == HALT_SENTINEL:
            self.halted = "ret"
            return None
        if value >= len(self.program.code):
            raise ExecutionError("ret to bad address %#x" % value)
        self.depth -= 1
        return value

    def _op_fork(self, instr) -> Optional[int]:
        raise ExecutionError(
            "fork instruction requires a ForkedMachine (at ip=%d)" % self.ip)

    def _op_endfork(self, instr) -> Optional[int]:
        raise ExecutionError(
            "endfork instruction requires a ForkedMachine (at ip=%d)" % self.ip)

    def _op_hlt(self, instr) -> Optional[int]:
        self.halted = "hlt"
        return None

    # -- operand helpers ------------------------------------------------------

    def _ea(self, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.regs[mem.base]
        if mem.index is not None:
            addr += self.regs[mem.index] * mem.scale
        return addr & MASK

    def _value(self, operand, mem_reads: List[int]) -> int:
        if isinstance(operand, Imm):
            return operand.value & MASK
        if isinstance(operand, Reg):
            return self.regs[operand.name]
        if isinstance(operand, Mem):
            addr = self._ea(operand)
            mem_reads.append(addr)
            return self.mem.load(addr)
        raise ExecutionError("cannot read operand %r" % (operand,))

    def _write(self, operand, value: int, mem_writes: List[int]) -> None:
        if isinstance(operand, Reg):
            self.regs[operand.name] = value & MASK
            return
        if isinstance(operand, Mem):
            addr = self._ea(operand)
            mem_writes.append(addr)
            self.mem.store(addr, value)
            return
        raise ExecutionError("cannot write operand %r" % (operand,))

    def _push_value(self, value: int) -> int:
        self.regs[STACK_POINTER] = (self.regs[STACK_POINTER] - WORD) & MASK
        addr = self.regs[STACK_POINTER]
        self.mem.store(addr, value)
        return addr

    def _pop_value(self) -> Tuple[int, int]:
        addr = self.regs[STACK_POINTER]
        value = self.mem.load(addr)
        self.regs[STACK_POINTER] = (addr + WORD) & MASK
        return value, addr

    def _target(self, instr: Instruction) -> int:
        target = instr.target
        if target is None:
            raise ExecutionError("unresolved control target in %s" % instr)
        return target
