"""Pure instruction semantics, shared by every execution engine.

The functional machines (:mod:`repro.machine.sequential`,
:mod:`repro.machine.forked`), the cycle simulator's fetch-stage ALU and its
execute-stage functional units all call into this module, so a single
definition of "what does ``addq`` do" exists in the library.

All values are 64-bit, represented as Python ints in ``[0, 2**64)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import ExecutionError
from ..isa.registers import CF, OF, SF, ZF, pack_flags

MASK = (1 << 64) - 1
SIGN_BIT = 1 << 63
WIDTH = 64


def to_unsigned(value: int) -> int:
    """Truncate a Python int to the 64-bit unsigned representation."""
    return value & MASK


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned representation as a signed value."""
    value &= MASK
    return value - (1 << 64) if value & SIGN_BIT else value


def _zf_sf(result: int) -> Tuple[bool, bool]:
    return result == 0, bool(result & SIGN_BIT)


def _add_flags(a: int, b: int, result: int) -> int:
    zf, sf = _zf_sf(result)
    cf = (a + b) > MASK
    of = (to_signed(a) + to_signed(b)) != to_signed(result)
    return pack_flags(zf, sf, cf, of)


def _sub_flags(a: int, b: int, result: int) -> int:
    """Flags of ``a - b`` (note: AT&T ``cmp src,dst`` computes dst - src)."""
    zf, sf = _zf_sf(result)
    cf = a < b  # borrow
    of = (to_signed(a) - to_signed(b)) != to_signed(result)
    return pack_flags(zf, sf, cf, of)


def _logic_flags(result: int) -> int:
    zf, sf = _zf_sf(result)
    return pack_flags(zf, sf, False, False)


def binary_result(opcode: str, src: int, dst: int) -> Tuple[int, Optional[int]]:
    """Result and new flags of a two-operand instruction ``op src, dst``.

    ``mov`` and ``lea`` return ``(src, None)``: no flag update.
    """
    src &= MASK
    dst &= MASK
    if opcode in ("mov", "lea"):
        return src, None
    if opcode == "add":
        result = (dst + src) & MASK
        return result, _add_flags(dst, src, result)
    if opcode == "sub":
        result = (dst - src) & MASK
        return result, _sub_flags(dst, src, result)
    if opcode == "and":
        result = dst & src
        return result, _logic_flags(result)
    if opcode == "or":
        result = dst | src
        return result, _logic_flags(result)
    if opcode == "xor":
        result = dst ^ src
        return result, _logic_flags(result)
    if opcode == "imul":
        wide = to_signed(dst) * to_signed(src)
        result = wide & MASK
        overflow = wide != to_signed(result)
        zf, sf = _zf_sf(result)
        # Real x86 leaves ZF/SF undefined after imul; the toy ISA defines
        # them from the result so traces are deterministic.
        return result, pack_flags(zf, sf, overflow, overflow)
    raise ExecutionError("binary_result: bad opcode %r" % opcode)


def unary_result(opcode: str, value: int, flags_in: int) -> Tuple[int, Optional[int]]:
    """Result and flags of a one-operand arithmetic instruction."""
    value &= MASK
    if opcode == "inc":
        result = (value + 1) & MASK
        new = _add_flags(value, 1, result)
        # inc/dec preserve CF.
        return result, (new & ~CF) | (flags_in & CF)
    if opcode == "dec":
        result = (value - 1) & MASK
        new = _sub_flags(value, 1, result)
        return result, (new & ~CF) | (flags_in & CF)
    if opcode == "neg":
        result = (-value) & MASK
        flags = _sub_flags(0, value, result)
        return result, flags
    if opcode == "not":
        return (~value) & MASK, None
    raise ExecutionError("unary_result: bad opcode %r" % opcode)


def shift_result(opcode: str, value: int, count: int) -> Tuple[int, int]:
    """Result and flags of ``shl/shr/sar`` by *count* (masked to 6 bits)."""
    value &= MASK
    count &= 0x3F
    if count == 0:
        zf, sf = _zf_sf(value)
        return value, pack_flags(zf, sf, False, False)
    if opcode == "shl":
        carry = bool((value >> (WIDTH - count)) & 1) if count <= WIDTH else False
        result = (value << count) & MASK
    elif opcode == "shr":
        carry = bool((value >> (count - 1)) & 1)
        result = value >> count
    elif opcode == "sar":
        carry = bool((value >> (count - 1)) & 1)
        result = (to_signed(value) >> count) & MASK
    else:
        raise ExecutionError("shift_result: bad opcode %r" % opcode)
    zf, sf = _zf_sf(result)
    # OF is only architecturally defined for 1-bit shifts; the toy ISA
    # reports 0, which no generated code depends on.
    return result, pack_flags(zf, sf, carry, False)


def compare_flags(opcode: str, src: int, dst: int) -> int:
    """Flags produced by ``cmp src,dst`` (dst - src) or ``test src,dst``."""
    src &= MASK
    dst &= MASK
    if opcode == "cmp":
        return _sub_flags(dst, src, (dst - src) & MASK)
    if opcode == "test":
        return _logic_flags(dst & src)
    raise ExecutionError("compare_flags: bad opcode %r" % opcode)


def cqo_result(rax: int) -> int:
    """Value of rdx after ``cqo`` (sign extension of rax)."""
    return MASK if rax & SIGN_BIT else 0


def idiv_result(rax: int, rdx: int, divisor: int) -> Tuple[int, int]:
    """(quotient, remainder) of the signed 128/64 division ``idiv``.

    The toy ISA requires rdx to be the cqo sign-extension of rax (it rejects
    true 128-bit dividends), matching what compiled code always does.
    Division by zero and INT_MIN/-1 overflow raise :class:`ExecutionError`,
    mirroring the hardware #DE exception.
    """
    if divisor & MASK == 0 or to_signed(divisor) == 0:
        raise ExecutionError("integer division by zero")
    expected_rdx = cqo_result(rax)
    if rdx != expected_rdx:
        raise ExecutionError(
            "idiv without matching cqo: rdx=%#x for rax=%#x" % (rdx, rax))
    a = to_signed(rax)
    b = to_signed(divisor)
    # C semantics: truncation toward zero (floating point would lose
    # precision above 2**53, so divide magnitudes and reapply the sign).
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    remainder = a - quotient * b
    if not (-(1 << 63) <= quotient < (1 << 63)):
        raise ExecutionError("idiv overflow: %d / %d" % (a, b))
    return quotient & MASK, remainder & MASK


def condition_holds(cc: str, flags: int) -> bool:
    """Evaluate an x86 condition code against packed flags."""
    zf = bool(flags & ZF)
    sf = bool(flags & SF)
    cf = bool(flags & CF)
    of = bool(flags & OF)
    if cc == "e":
        return zf
    if cc == "ne":
        return not zf
    if cc == "a":
        return not cf and not zf
    if cc == "ae":
        return not cf
    if cc == "b":
        return cf
    if cc == "be":
        return cf or zf
    if cc == "g":
        return not zf and sf == of
    if cc == "ge":
        return sf == of
    if cc == "l":
        return sf != of
    if cc == "le":
        return zf or sf != of
    if cc == "s":
        return sf
    if cc == "ns":
        return not sf
    raise ExecutionError("unknown condition code %r" % cc)


#: Instruction kinds the paper's fetch-decode stage can compute in order
#: (Section 4.1: "Floating point instructions, memory accesses, complex
#: integer instructions and instructions having empty sources are not
#: computed in the fetch stage").
FETCH_COMPUTABLE_KINDS = frozenset(
    ("alu", "mov", "lea", "jmp", "jcc", "cqo", "nop")
)


def fetch_stage_computable(kind: str, has_memory_operand: bool) -> bool:
    """Can the fetch-decode stage compute this instruction (sources full)?"""
    if has_memory_operand:
        return False
    return kind in FETCH_COMPUTABLE_KINDS
