"""The sequential reference machine: classic call/ret execution.

This is the baseline semantics of the paper's Figure 2/3: one instruction
flow, a return-address stack, depth-first traversal of the call tree.  Every
other engine in the library (forked machine, cycle simulator) is validated
against its results.
"""

from __future__ import annotations

from ..isa.program import Program
from .base import BaseMachine, RunResult


class SequentialMachine(BaseMachine):
    """Interprets a call/ret program sequentially.

    ``fork``/``endfork`` are rejected; use :class:`ForkedMachine` for
    programs produced by the fork transformation.
    """


def run_sequential(program: Program, record_trace: bool = False,
                   max_steps: int = None) -> RunResult:
    """Convenience wrapper: build a machine, run to completion."""
    kwargs = {} if max_steps is None else {"max_steps": max_steps}
    return SequentialMachine(program, **kwargs).run(record_trace=record_trace)
