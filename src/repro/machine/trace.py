"""Dynamic instruction trace records.

A trace is what the paper's ILP study (Section 3) operates on: the dynamic
sequence of executed instructions with, for each one, the architectural
registers it read and wrote and the data-memory word addresses it loaded and
stored.  Values are deliberately not recorded (a million-instruction trace
must stay cheap); engines that need values re-execute.

Traces can be materialized (:class:`Trace`, used for the paper's figures and
in tests) or streamed entry-by-entry from a machine's ``step_entries()``
generator for large ILP runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from ..isa.instructions import Instruction


@dataclass
class TraceEntry:
    """One executed instruction instance."""

    __slots__ = ("seq", "addr", "instr", "reg_reads", "reg_writes",
                 "mem_reads", "mem_writes", "taken", "depth", "section",
                 "section_index")

    seq: int                      #: position in the dynamic trace (0-based)
    addr: int                     #: static instruction index
    instr: Instruction
    reg_reads: Tuple[str, ...]
    reg_writes: Tuple[str, ...]
    mem_reads: Tuple[int, ...]    #: byte addresses of words loaded
    mem_writes: Tuple[int, ...]   #: byte addresses of words stored
    taken: Optional[bool]         #: branch outcome; None for non-branches
    depth: int                    #: call (fork) nesting level
    section: int                  #: section id (0 for sequential runs)
    section_index: int            #: ordinal within the section (0-based)

    @property
    def is_branch(self) -> bool:
        return self.taken is not None

    def describe(self) -> str:
        tag = "%d-%d" % (self.section, self.section_index + 1)
        return "%-8s %s" % (tag, self.instr)


class Trace:
    """A materialized dynamic trace with summary statistics."""

    def __init__(self, entries: Iterable[TraceEntry]):
        self.entries: List[TraceEntry] = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index):
        return self.entries[index]

    # -- statistics -------------------------------------------------------

    def count_kind(self, *kinds: str) -> int:
        return sum(1 for e in self.entries if e.instr.kind in kinds)

    def memory_ops(self) -> int:
        return sum(1 for e in self.entries if e.mem_reads or e.mem_writes)

    def stack_ops(self) -> int:
        """Instructions that touch rsp (the serializers of Section 3)."""
        return sum(1 for e in self.entries
                   if "rsp" in e.reg_reads or "rsp" in e.reg_writes)

    def branches(self) -> int:
        return sum(1 for e in self.entries if e.is_branch)

    def sections(self) -> int:
        return len({e.section for e in self.entries}) if self.entries else 0

    def section_slice(self, section: int) -> List[TraceEntry]:
        return [e for e in self.entries if e.section == section]

    def max_depth(self) -> int:
        return max((e.depth for e in self.entries), default=0)

    # -- display ------------------------------------------------------------

    def listing(self, numbered: bool = True) -> str:
        """Render the trace like the paper's Figure 3 / Figure 6 listings."""
        lines = []
        for entry in self.entries:
            if numbered:
                lines.append("%4d  %s" % (entry.seq + 1, entry.describe()))
            else:
                lines.append(entry.describe())
        return "\n".join(lines)
