"""Toy x86-64 ISA: registers, instructions, operands, assembler, programs.

This package defines the machine language everything else in :mod:`repro`
operates on.  The ISA is the gas/AT&T-syntax subset used by the paper's
Figures 2 and 5, extended with the paper's ``fork``/``endfork`` section
instructions.

Typical use::

    from repro.isa import assemble

    program = assemble('''
    main:
        movq $21, %rax
        addq %rax, %rax
        out %rax
        hlt
    ''')
"""

from .assembler import assemble
from .instructions import CONDITION_CODES, OPCODES, Instruction, OpInfo, opcode_info
from .operands import Imm, LabelRef, Mem, Operand, Reg
from .program import DATA_BASE, HALT_ADDR, STACK_TOP, WORD, Program
from .registers import (
    ALL_REGS,
    ARG_REGS,
    FLAGS,
    FORK_COPIED_REGS,
    GPRS,
    RETURN_REG,
    STACK_POINTER,
    describe_flags,
    is_gpr,
    is_register,
    pack_flags,
)

__all__ = [
    "ALL_REGS", "ARG_REGS", "CONDITION_CODES", "DATA_BASE", "FLAGS",
    "FORK_COPIED_REGS", "GPRS", "HALT_ADDR", "Imm", "Instruction",
    "LabelRef", "Mem", "OPCODES", "OpInfo", "Operand", "Program", "Reg",
    "RETURN_REG", "STACK_POINTER", "STACK_TOP", "WORD", "assemble",
    "describe_flags", "is_gpr", "is_register", "opcode_info", "pack_flags",
]
