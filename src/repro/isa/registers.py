"""Register file definition for the toy x86-64 subset.

The paper's examples use gas (AT&T) syntax on x86-64, so we model the sixteen
64-bit general purpose registers plus the architectural flags register.  The
flags register is exposed as an ordinary renameable location named
``"rflags"`` because the paper's fetch-decode stage computes compare/branch
pairs in order, and the ILP analyzer treats flag producers/consumers like any
other register dependency.
"""

from __future__ import annotations

#: The sixteen general-purpose 64-bit registers, in conventional order.
GPRS = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

#: Pseudo register holding the condition flags (ZF/SF/CF/OF packed).
FLAGS = "rflags"

#: Every architectural location an instruction may name.
ALL_REGS = GPRS + (FLAGS,)

#: The stack pointer, special-cased by the paper's "parallel" ILP model
#: (stack-pointer dependencies are excluded) and copied on ``fork``.
STACK_POINTER = "rsp"

#: Registers whose values a ``fork`` instruction copies into the section
#: creation message (the paper: "Non volatile registers (i.e. rbx, rdi and
#: rsi in this example) are copied to the forked path" plus the stack
#: pointer).  We take the paper's example set union the SysV callee-saved
#: set, so both hand-written and MiniC-generated code fork correctly.
FORK_COPIED_REGS = frozenset(
    {"rbx", "rbp", "rsp", "rdi", "rsi", "r12", "r13", "r14", "r15"}
)

#: SysV AMD64 integer argument registers, used by the MiniC code generator.
ARG_REGS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

#: Register carrying a function's return value.
RETURN_REG = "rax"

_GPR_SET = frozenset(GPRS)
_ALL_SET = frozenset(ALL_REGS)


def is_gpr(name: str) -> bool:
    """Return True when *name* is one of the sixteen GPRs."""
    return name in _GPR_SET


def is_register(name: str) -> bool:
    """Return True when *name* names any architectural location."""
    return name in _ALL_SET


# --- flag bit packing -------------------------------------------------------
#
# The four flags the toy ISA models are packed into one integer so the flags
# register can flow through renaming and value-forwarding machinery exactly
# like a data register.

ZF = 1 << 0  #: zero flag
SF = 1 << 1  #: sign flag
CF = 1 << 2  #: carry flag (unsigned overflow / borrow)
OF = 1 << 3  #: overflow flag (signed overflow)

FLAG_NAMES = {ZF: "ZF", SF: "SF", CF: "CF", OF: "OF"}


def pack_flags(zf: bool, sf: bool, cf: bool, of: bool) -> int:
    """Pack the four condition flags into a single integer value."""
    return (ZF if zf else 0) | (SF if sf else 0) | (CF if cf else 0) | (OF if of else 0)


def describe_flags(value: int) -> str:
    """Human readable rendering of a packed flags value, e.g. ``"ZF|CF"``."""
    names = [name for bit, name in FLAG_NAMES.items() if value & bit]
    return "|".join(names) if names else "-"
