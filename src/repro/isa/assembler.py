"""Two-pass assembler for the gas/AT&T-syntax toy x86-64 subset.

Accepted source shape (a superset of the paper's Figures 2 and 5)::

    # comment, // comment
    .text                     # switch to code (default)
    .data                     # switch to data
    sum:                      # label (code or data, by current section)
    .L2: movq %rsi, %rbx      # labels may share a line with an instruction
        cmpq $2, %rsi
        ja .L2
        movq (%rdi), %rax
        leaq (%rdi,%rsi,8), %rdi
        movq tab(%rip), %rax  # rip-relative data reference
        movq tab, %rax        # absolute data reference
        fork sum
        endfork
    .data
    tab: .quad 1, 2, 3
    buf: .zero 64             # 64 bytes (8 words) of zeros
    n:   .quad tab            # a symbol address as initializer

The ``q`` size suffix on mnemonics is optional (``mov`` == ``movq``); only
64-bit operations exist.  Numbers may be decimal (optionally negative) or
``0x`` hexadecimal.

An ``.entry LABEL`` directive names the entry point from within the
source itself (``Program.listing()`` emits it, making listings
entry-faithful round-trips); an explicit ``entry=`` argument to
:func:`assemble` still wins, and without either the entry defaults to
``main`` when that label exists.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import AssemblerError
from .instructions import CONDITION_CODES, OPCODES, Instruction
from .operands import Imm, LabelRef, Mem, Operand, Reg
from .program import DATA_BASE, WORD, Program
from .registers import is_gpr

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_INT_RE = re.compile(r"^-?(0[xX][0-9a-fA-F]+|\d+)$")
_IDENT_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")

#: Mnemonics that take a code label as their operand.
_CONTROL_OPS = (frozenset(("jmp", "call", "fork", "forkloop"))
                | frozenset(CONDITION_CODES))


def assemble(source: str, entry: Optional[str] = None) -> Program:
    """Assemble *source* into a :class:`Program`.

    *entry* names the entry label; it defaults to ``main`` when such a label
    exists, otherwise instruction 0.
    """
    return _Assembler(source).assemble(entry)


class _Assembler:
    def __init__(self, source: str) -> None:
        self.source = source
        self.code: List[Instruction] = []
        self.data: Dict[int, int] = {}
        self.code_symbols: Dict[str, int] = {}
        self.data_symbols: Dict[str, int] = {}
        self._data_cursor = DATA_BASE
        self._pending_labels: List[str] = []
        self._entry_label: Optional[str] = None
        self._section = "text"
        self._line_no = 0
        # (instr index, operand slot, label name, line) fixups for pass 2
        self._fixups: List[Tuple[int, int, str, int]] = []
        # (data addr, label name, line) fixups for symbol initializers
        self._data_fixups: List[Tuple[int, str, int]] = []

    # -- driver -----------------------------------------------------------

    def assemble(self, entry: Optional[str]) -> Program:
        for raw in self.source.splitlines():
            self._line_no += 1
            self._line(raw)
        if self._pending_labels and self._section == "text":
            # Trailing labels point one past the end; give them a hlt target
            # so "label at end of function" sources stay well-formed.
            self._emit(Instruction("hlt", source_line=self._line_no))
        self._resolve()
        entry_addr = 0
        if entry is None:
            entry = self._entry_label
        if entry is not None:
            if entry not in self.code_symbols:
                raise AssemblerError("entry label %r not defined" % entry)
            entry_addr = self.code_symbols[entry]
        elif "main" in self.code_symbols:
            entry_addr = self.code_symbols["main"]
        return Program(
            code=self.code,
            data=self.data,
            code_symbols=dict(self.code_symbols),
            data_symbols=dict(self.data_symbols),
            entry=entry_addr,
            source=self.source,
        )

    def _err(self, message: str) -> AssemblerError:
        return AssemblerError(message, self._line_no)

    # -- pass 1 -------------------------------------------------------------

    def _line(self, raw: str) -> None:
        text = _strip_comment(raw).strip()
        while True:
            match = _LABEL_RE.match(text)
            if not match:
                break
            self._define_label(match.group(1))
            text = match.group(2).strip()
        if not text:
            return
        if text.startswith("."):
            head = text.split(None, 1)[0]
            if not _is_directive_known(head):
                raise self._err("unknown directive %r" % head)
            self._directive(head, text[len(head):].strip())
            return
        self._instruction(text)

    def _define_label(self, name: str) -> None:
        if self._section == "text":
            if name in self.code_symbols:
                raise self._err("duplicate label %r" % name)
            self._pending_labels.append(name)
        else:
            if name in self.data_symbols:
                raise self._err("duplicate data label %r" % name)
            self.data_symbols[name] = self._data_cursor
            self._pending_labels = []

    def _directive(self, head: str, rest: str) -> None:
        if head == ".text":
            self._section = "text"
        elif head == ".data":
            if self._pending_labels:
                raise self._err("code label before .data")
            self._section = "data"
        elif head == ".quad":
            self._require_data(head)
            for field in _split_operands(rest):
                addr = self._data_cursor
                self._data_cursor += WORD
                if _INT_RE.match(field):
                    self.data[addr] = _parse_int(field) & 0xFFFFFFFFFFFFFFFF
                elif _IDENT_RE.match(field):
                    self._data_fixups.append((addr, field, self._line_no))
                else:
                    raise self._err("bad .quad value %r" % field)
        elif head in (".zero", ".space"):
            self._require_data(head)
            if not _INT_RE.match(rest.strip()):
                raise self._err("bad %s size %r" % (head, rest))
            n = _parse_int(rest)
            if n < 0 or n % WORD:
                raise self._err("%s size must be a positive multiple of %d"
                                % (head, WORD))
            for _ in range(n // WORD):
                self.data[self._data_cursor] = 0
                self._data_cursor += WORD
        elif head == ".entry":
            name = rest.strip()
            if not _IDENT_RE.match(name):
                raise self._err("bad .entry label %r" % rest)
            if self._entry_label is not None:
                raise self._err("duplicate .entry directive")
            self._entry_label = name
        elif head in (".global", ".globl", ".align"):
            pass  # accepted and ignored

    def _require_data(self, head: str) -> None:
        if self._section != "data":
            raise self._err("%s outside .data" % head)

    def _instruction(self, text: str) -> None:
        if self._section != "text":
            raise self._err("instruction in .data section")
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        opcode = _canonical_opcode(mnemonic)
        if opcode is None:
            raise self._err("unknown mnemonic %r" % mnemonic)
        operand_text = parts[1] if len(parts) > 1 else ""
        fields = _split_operands(operand_text)
        operands: List[Operand] = []
        for slot, field in enumerate(fields):
            operands.append(self._operand(opcode, slot, field))
        try:
            instr = Instruction(
                opcode,
                tuple(operands),
                addr=len(self.code),
                labels=tuple(self._pending_labels),
                source_line=self._line_no,
            )
        except ValueError as exc:
            raise self._err(str(exc)) from None
        self._emit(instr)

    def _emit(self, instr: Instruction) -> None:
        for name in self._pending_labels:
            self.code_symbols[name] = len(self.code)
        self._pending_labels = []
        instr.addr = len(self.code)
        self.code.append(instr)

    def _operand(self, opcode: str, slot: int, field: str) -> Operand:
        if opcode in _CONTROL_OPS:
            if not _IDENT_RE.match(field):
                raise self._err("control target must be a label: %r" % field)
            self._fixups.append((len(self.code), slot, field, self._line_no))
            return LabelRef(field)
        if field.startswith("$"):
            body = field[1:]
            if _INT_RE.match(body):
                return Imm(_parse_int(body))
            if _IDENT_RE.match(body):
                self._fixups.append((len(self.code), slot, "$" + body,
                                     self._line_no))
                return Imm(0, symbol=body)
            raise self._err("bad immediate %r" % field)
        if field.startswith("%"):
            name = field[1:].lower()
            if not is_gpr(name):
                raise self._err("unknown register %r" % field)
            return Reg(name)
        if "(" in field:
            return self._memref(field)
        if _INT_RE.match(field):
            return Mem(disp=_parse_int(field))
        if _IDENT_RE.match(field):
            # Bare symbol: absolute data reference (load/store at symbol).
            self._fixups.append((len(self.code), slot, "@" + field,
                                 self._line_no))
            return Mem(symbol=field)
        raise self._err("cannot parse operand %r" % field)

    def _memref(self, field: str) -> Mem:
        match = re.match(r"^([^()]*)\(([^()]*)\)$", field)
        if not match:
            raise self._err("bad memory operand %r" % field)
        disp_text, inner = match.group(1).strip(), match.group(2).strip()
        disp, symbol = 0, None
        if disp_text:
            if _INT_RE.match(disp_text):
                disp = _parse_int(disp_text)
            elif _IDENT_RE.match(disp_text):
                symbol = disp_text
                self._fixups.append((len(self.code), -1, "@" + disp_text,
                                     self._line_no))
            else:
                raise self._err("bad displacement %r" % disp_text)
        parts = [p.strip() for p in inner.split(",")] if inner else []
        base = index = None
        scale = 1
        if parts and parts[0]:
            base = self._reg_name(parts[0])
        if len(parts) >= 2 and parts[1]:
            index = self._reg_name(parts[1])
        if len(parts) >= 3 and parts[2]:
            if not _INT_RE.match(parts[2]):
                raise self._err("bad scale %r in %r" % (parts[2], field))
            scale = _parse_int(parts[2])
        if len(parts) > 3:
            raise self._err("bad memory operand %r" % field)
        # %rip-relative addressing: the displacement symbol is an absolute
        # data address in the toy ISA, so drop the rip base.
        if base == "rip":
            base = None
        try:
            return Mem(disp=disp, base=base, index=index, scale=scale,
                       symbol=symbol)
        except ValueError as exc:
            raise self._err(str(exc)) from None

    def _reg_name(self, field: str) -> str:
        if not field.startswith("%"):
            raise self._err("expected register, got %r" % field)
        name = field[1:].lower()
        if name != "rip" and not is_gpr(name):
            raise self._err("unknown register %r" % field)
        return name

    # -- pass 2 -------------------------------------------------------------

    def _resolve(self) -> None:
        for addr, name, line in self._data_fixups:
            value = self._lookup(name, line)
            self.data[addr] = value & 0xFFFFFFFFFFFFFFFF
        for idx, slot, name, line in self._fixups:
            instr = self.code[idx]
            if name.startswith("$"):
                symbol = name[1:]
                value = self._lookup(symbol, line)
                instr.operands = _replace(instr.operands,
                                          lambda op: isinstance(op, Imm)
                                          and op.symbol == symbol,
                                          Imm(value, symbol=symbol))
            elif name.startswith("@"):
                symbol = name[1:]
                if symbol not in self.data_symbols:
                    raise AssemblerError("unknown data symbol %r" % symbol,
                                         line)
                addr = self.data_symbols[symbol]
                instr.operands = _replace(
                    instr.operands,
                    lambda op: isinstance(op, Mem) and op.symbol == symbol,
                    None,
                    lambda op: Mem(disp=addr + op.disp, base=op.base,
                                   index=op.index, scale=op.scale,
                                   symbol=symbol))
            else:
                if name not in self.code_symbols:
                    raise AssemblerError("undefined label %r" % name, line)
                target = self.code_symbols[name]
                instr.operands = _replace(
                    instr.operands,
                    lambda op: isinstance(op, LabelRef) and op.name == name,
                    LabelRef(name, target=target))

    def _lookup(self, symbol: str, line: int) -> int:
        if symbol in self.data_symbols:
            return self.data_symbols[symbol]
        if symbol in self.code_symbols:
            return self.code_symbols[symbol]
        raise AssemblerError("undefined symbol %r" % symbol, line)


# -- helpers ----------------------------------------------------------------


def _strip_comment(line: str) -> str:
    for marker in ("#", "//", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas that are not inside parentheses."""
    out, depth, cur = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return [f for f in out if f]


def _canonical_opcode(mnemonic: str) -> Optional[str]:
    if mnemonic in OPCODES:
        return mnemonic
    if mnemonic.endswith("q") and mnemonic[:-1] in OPCODES:
        return mnemonic[:-1]
    return None


def _parse_int(text: str) -> int:
    text = text.strip()
    if not _INT_RE.match(text):
        raise AssemblerError("bad integer %r" % text)
    return int(text, 0)


def _is_directive_known(head: str) -> bool:
    return head in (".text", ".data", ".quad", ".zero", ".space", ".entry",
                    ".global", ".globl", ".align")


def _replace(operands: Tuple["Operand", ...],
             predicate: "Callable[[Operand], bool]",
             replacement: Optional["Operand"],
             transform: "Optional[Callable[[Operand], Operand]]" = None,
             ) -> Tuple["Operand", ...]:
    out: List["Operand"] = []
    for op in operands:
        if predicate(op):
            out.append(transform(op) if transform is not None else replacement)
        else:
            out.append(op)
    return tuple(out)
