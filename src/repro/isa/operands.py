"""Operand model for the toy x86-64 subset (AT&T order: sources first).

Three concrete operand kinds exist:

* :class:`Imm`  -- ``$42`` or ``$label`` (resolved to an address at assembly),
* :class:`Reg`  -- ``%rax``,
* :class:`Mem`  -- ``disp(base,index,scale)`` in full generality.

All operands are immutable so instructions can be shared freely between the
functional machines, the ILP analyzer and the cycle simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .registers import is_gpr


class Operand:
    """Base class for instruction operands."""

    __slots__ = ()


@dataclass(frozen=True)
class Imm(Operand):
    """An immediate value.  ``symbol`` keeps the source name for display when
    the immediate came from ``$label``."""

    value: int
    symbol: Optional[str] = None

    def __str__(self) -> str:
        if self.symbol is not None:
            return "$%s" % self.symbol
        return "$%d" % self.value


@dataclass(frozen=True)
class Reg(Operand):
    """A direct register operand, e.g. ``%rax``."""

    name: str

    def __post_init__(self) -> None:
        if not is_gpr(self.name):
            raise ValueError("not a general purpose register: %r" % (self.name,))

    def __str__(self) -> str:
        return "%%%s" % self.name


@dataclass(frozen=True)
class Mem(Operand):
    """A memory operand ``disp(base,index,scale)``.

    ``symbol`` preserves a symbolic displacement (``label(%rip)`` style data
    references assemble to an absolute displacement with ``symbol`` set).
    Effective address = ``disp + R[base] + R[index] * scale``.
    """

    disp: int = 0
    base: Optional[str] = None
    index: Optional[str] = None
    scale: int = 1
    symbol: Optional[str] = None

    def __post_init__(self) -> None:
        if self.base is not None and not is_gpr(self.base):
            raise ValueError("bad base register: %r" % (self.base,))
        if self.index is not None and not is_gpr(self.index):
            raise ValueError("bad index register: %r" % (self.index,))
        if self.scale not in (1, 2, 4, 8):
            raise ValueError("bad scale: %r" % (self.scale,))

    def regs(self) -> Tuple[str, ...]:
        """Registers read to form the effective address."""
        out = []
        if self.base is not None:
            out.append(self.base)
        if self.index is not None:
            out.append(self.index)
        return tuple(out)

    def __str__(self) -> str:
        disp = self.symbol if self.symbol is not None else (
            "%d" % self.disp if self.disp else "")
        if self.base is None and self.index is None:
            return disp or "0"
        inner = "%%%s" % self.base if self.base else ""
        if self.index is not None:
            inner += ",%%%s" % self.index
            if self.scale != 1:
                inner += ",%d" % self.scale
        return "%s(%s)" % (disp, inner)


@dataclass(frozen=True)
class LabelRef(Operand):
    """A code-label operand of a control transfer (``jmp .L2``, ``call sum``).

    ``target`` is filled in by the assembler's second pass with the index of
    the destination instruction in the program's code list.
    """

    name: str
    target: Optional[int] = None

    def __str__(self) -> str:
        return self.name
