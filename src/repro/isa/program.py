"""Program container and memory layout for the toy machine.

The toy ISA addresses *code by instruction index* (an "address" is a position
in ``Program.code``) and *data by byte address* in a flat 64-bit space, with
every access 8-byte wide and 8-byte aligned.  Word addressing keeps the
functional machines, the memory-renaming simulator structures and the ILP
analyzer simple while preserving everything the paper's model depends on
(real addresses, aliasing, stack growth).

Layout (all configurable at machine construction):

* code: indices ``0 .. len(code)-1``
* global data segment: grows up from :data:`DATA_BASE`
* stack: grows down from :data:`STACK_TOP`
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AssemblerError
from .instructions import Instruction

#: First byte address of the global data segment.
DATA_BASE = 0x100000

#: Initial stack pointer (first push stores at ``STACK_TOP - 8``).
STACK_TOP = 0x8000000

#: Word size of the machine in bytes; every data access moves one word.
WORD = 8

#: Sentinel return address pushed below ``main``; a ``ret`` to it halts.
HALT_ADDR = -1


@dataclass
class Program:
    """An assembled program: code, initial data image and symbol tables."""

    code: List[Instruction]
    data: Dict[int, int] = field(default_factory=dict)
    code_symbols: Dict[str, int] = field(default_factory=dict)
    data_symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = 0
    source: str = ""

    def __post_init__(self) -> None:
        for addr in self.data:
            if addr % WORD:
                raise AssemblerError("misaligned data word at %#x" % addr)

    def __len__(self) -> int:
        return len(self.code)

    def label_of(self, addr: int) -> Optional[str]:
        """First label attached to the instruction at *addr*, if any."""
        if 0 <= addr < len(self.code) and self.code[addr].labels:
            return self.code[addr].labels[0]
        return None

    def symbol_addr(self, name: str) -> int:
        """Data-segment byte address of symbol *name*."""
        try:
            return self.data_symbols[name]
        except KeyError:
            raise AssemblerError("unknown data symbol: %r" % (name,)) from None

    def entry_symbol(self) -> Optional[str]:
        return self.label_of(self.entry)

    def listing(self) -> str:
        """Disassembly listing with addresses and labels (round-trips
        through the assembler, entry point included).

        An ``.entry`` directive is emitted whenever re-assembly's default
        resolution (``main`` if defined, else instruction 0) would land
        somewhere else — e.g. MiniC programs entering via ``_start`` —
        so the listing is a faithful canonical serialization (the batch
        runner digests it for cache keys).
        """
        lines = []
        entry_label = self.entry_symbol()
        default_entry = self.code_symbols.get("main", 0)
        if self.entry != default_entry and entry_label is not None:
            lines.append(".entry %s" % entry_label)
        for instr in self.code:
            for lab in instr.labels:
                lines.append("%s:" % lab)
            lines.append("    %s" % instr)
        if self.data or self.data_symbols:
            lines.append(".data")
            by_addr: Dict[int, List[str]] = {}
            for name, addr in self.data_symbols.items():
                by_addr.setdefault(addr, []).append(name)
            for addr in sorted(set(self.data) | set(by_addr)):
                for name in by_addr.get(addr, ()):
                    lines.append("%s:" % name)
                if addr in self.data:
                    lines.append("    .quad %d" % self.data[addr])
        return "\n".join(lines) + "\n"

    def patch_data(self, symbol: str, values) -> None:
        """Overwrite the words starting at *symbol* with *values*.

        This is how workload harnesses install datasets into a compiled
        program image before running it.
        """
        base = self.symbol_addr(symbol)
        for i, value in enumerate(values):
            self.data[base + i * WORD] = value & 0xFFFFFFFFFFFFFFFF

    def read_data(self, symbol: str, count: int) -> List[int]:
        """Read *count* words starting at *symbol* from the initial image."""
        base = self.symbol_addr(symbol)
        return [self.data.get(base + i * WORD, 0) for i in range(count)]
