"""Instruction set definition: opcodes, their static metadata, and the
:class:`Instruction` record that programs are made of.

The instruction set is the minimal x86-64 subset needed to express the
paper's examples (Figures 2 and 5) plus what the MiniC code generator emits,
extended with the paper's two new control instructions:

* ``fork <label>`` -- start a new *section* at the next instruction (the
  resume path) while the current section continues at ``<label>``; copies the
  stack pointer and the non-volatile registers to the new section and does
  NOT push a return address (paper, Section 2).
* ``endfork`` -- terminate the current section; does NOT pop a return
  address.

Plus two conveniences for testing and workloads:

* ``out <src>`` -- append a value to the machine's output channel,
* ``hlt`` -- stop the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Optional, Tuple

from .operands import Imm, LabelRef, Mem, Operand, Reg
from .registers import FLAGS, STACK_POINTER

# --------------------------------------------------------------------------
# Opcode metadata
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class OpInfo:
    """Static description of an opcode.

    ``arity``        -- number of explicit operands.
    ``writes_dest``  -- last operand is written.
    ``reads_dest``   -- last operand is also read (read-modify-write ops).
    ``writes_flags`` / ``reads_flags`` -- interaction with ``rflags``.
    ``kind``         -- coarse class used by the pipelines: one of
                        ``"alu"``, ``"mov"``, ``"lea"``, ``"muldiv"``,
                        ``"push"``, ``"pop"``, ``"call"``, ``"ret"``,
                        ``"jmp"``, ``"jcc"``, ``"fork"``, ``"endfork"``,
                        ``"out"``, ``"nop"``, ``"hlt"``, ``"cqo"``,
                        ``"idiv"``.
    """

    name: str
    arity: int
    writes_dest: bool = False
    reads_dest: bool = False
    writes_flags: bool = False
    reads_flags: bool = False
    kind: str = "alu"


def _alu(name: str) -> OpInfo:
    return OpInfo(name, 2, writes_dest=True, reads_dest=True, writes_flags=True)


def _unary(name: str, writes_flags: bool = True,
           reads_flags: bool = False) -> OpInfo:
    return OpInfo(name, 1, writes_dest=True, reads_dest=True,
                  writes_flags=writes_flags, reads_flags=reads_flags)


#: All known opcodes (canonical names, without the ``q`` size suffix).
OPCODES = {
    info.name: info
    for info in (
        OpInfo("mov", 2, writes_dest=True, kind="mov"),
        _alu("add"),
        _alu("sub"),
        _alu("and"),
        _alu("or"),
        _alu("xor"),
        OpInfo("imul", 2, writes_dest=True, reads_dest=True,
               writes_flags=True, kind="muldiv"),
        OpInfo("cmp", 2, writes_flags=True),
        OpInfo("test", 2, writes_flags=True),
        OpInfo("lea", 2, writes_dest=True, kind="lea"),
        # inc/dec preserve CF, so they read the previous flags (an x86
        # partial-flag merge dependency the pipelines must see).
        _unary("inc", reads_flags=True),
        _unary("dec", reads_flags=True),
        _unary("neg"),
        _unary("not", writes_flags=False),
        # Shifts: 1-operand form shifts by one; 2-operand form takes an
        # immediate count (the %cl form is not supported by the toy ISA).
        OpInfo("shl", -1, writes_dest=True, reads_dest=True, writes_flags=True),
        OpInfo("shr", -1, writes_dest=True, reads_dest=True, writes_flags=True),
        OpInfo("sar", -1, writes_dest=True, reads_dest=True, writes_flags=True),
        OpInfo("push", 1, kind="push"),
        OpInfo("pop", 1, writes_dest=True, kind="pop"),
        OpInfo("call", 1, kind="call"),
        OpInfo("ret", 0, kind="ret"),
        OpInfo("jmp", 1, kind="jmp"),
        OpInfo("fork", 1, kind="fork"),
        # Loop-iteration fork (paper §5 loop parallelization): same section
        # semantics as fork, but the forking flow stays in the *same stack
        # frame* — renaming shortcuts must not bypass its stores.
        OpInfo("forkloop", 1, kind="fork"),
        OpInfo("endfork", 0, kind="endfork"),
        OpInfo("cqo", 0, kind="cqo"),
        OpInfo("idiv", 1, kind="idiv"),
        OpInfo("out", 1, kind="out"),
        OpInfo("nop", 0, kind="nop"),
        OpInfo("hlt", 0, kind="hlt"),
    )
}

#: Conditional jumps, keyed by mnemonic; value is the condition-code name
#: evaluated by :func:`repro.machine.executor.condition_holds`.
CONDITION_CODES = {
    "je": "e", "jz": "e",
    "jne": "ne", "jnz": "ne",
    "ja": "a", "jnbe": "a",
    "jae": "ae", "jnb": "ae",
    "jb": "b", "jnae": "b",
    "jbe": "be", "jna": "be",
    "jg": "g", "jnle": "g",
    "jge": "ge", "jnl": "ge",
    "jl": "l", "jnge": "l",
    "jle": "le", "jng": "le",
    "js": "s",
    "jns": "ns",
}

for _mnemonic in CONDITION_CODES:
    OPCODES[_mnemonic] = OpInfo(_mnemonic, 1, reads_flags=True, kind="jcc")


def opcode_info(name: str) -> OpInfo:
    """Look up opcode metadata; raises KeyError for unknown opcodes."""
    return OPCODES[name]


# --------------------------------------------------------------------------
# Instruction
# --------------------------------------------------------------------------


class InstrMeta:
    """Static classification of one instruction, computed once.

    Everything here depends only on the opcode and the operand tuple, both
    fixed at construction — ``addr``, ``labels`` and label-target resolution
    happen later and must never be cached.  ``fetch_computable`` is a slot
    the simulator fills lazily (it lives in :mod:`repro.machine`, which this
    package must not import).
    """

    __slots__ = ("info", "kind", "is_control", "is_branch", "mem_operand",
                 "reads_memory", "writes_memory", "reg_reads", "reg_writes",
                 "addr_regs", "has_mem", "fetch_computable")

    def __init__(self, instr: "Instruction") -> None:
        self.info = OPCODES[instr.opcode]
        self.kind = self.info.kind
        self.is_control = self.kind in ("jmp", "jcc", "call", "ret", "fork",
                                        "endfork", "hlt")
        self.is_branch = self.kind in ("jmp", "jcc")
        self.mem_operand = instr._mem_operand()
        self.reads_memory = instr._reads_memory()
        self.writes_memory = instr._writes_memory()
        self.reg_reads = instr._reg_reads()
        self.reg_writes = instr._reg_writes()
        self.has_mem = (self.mem_operand is not None or self.reads_memory
                        or self.writes_memory)
        if self.kind in ("push", "pop", "call", "ret"):
            self.addr_regs: Tuple[str, ...] = (STACK_POINTER,)
        elif (self.mem_operand is not None and self.kind != "lea"
                and (self.reads_memory or self.writes_memory)):
            self.addr_regs = self.mem_operand.regs()
        else:
            self.addr_regs = ()
        self.fetch_computable: Optional[bool] = None


@dataclass
class Instruction:
    """One static instruction of a program.

    ``addr`` is the instruction's index in the program code list (the toy ISA
    addresses code by instruction, not by byte).  ``labels`` records the
    symbolic labels attached to this address, for disassembly.
    """

    opcode: str
    operands: Tuple[Operand, ...] = ()
    addr: int = -1
    labels: Tuple[str, ...] = ()
    source_line: int = 0

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise ValueError("unknown opcode: %r" % (self.opcode,))
        info = OPCODES[self.opcode]
        if info.arity >= 0 and len(self.operands) != info.arity:
            raise ValueError(
                "%s expects %d operand(s), got %d"
                % (self.opcode, info.arity, len(self.operands)))
        if info.arity == -1 and len(self.operands) not in (1, 2):
            raise ValueError("%s expects 1 or 2 operands" % self.opcode)

    # -- static classification ------------------------------------------
    #
    # Everything opcode/operand-derived is computed once into ``meta``
    # (the simulator consults it per *dynamic* instruction, so the
    # per-call recomputation used to dominate hot fetch paths).  The
    # property and method forms below stay as the public API.

    @cached_property
    def meta(self) -> InstrMeta:
        return InstrMeta(self)

    @property
    def info(self) -> OpInfo:
        return self.meta.info

    @property
    def kind(self) -> str:
        return self.meta.kind

    @property
    def is_control(self) -> bool:
        """True for instructions that may change the instruction pointer."""
        return self.meta.is_control

    @property
    def is_branch(self) -> bool:
        return self.meta.is_branch

    @property
    def target_label(self) -> Optional[LabelRef]:
        """The code-label operand of a control transfer, if any."""
        for op in self.operands:
            if isinstance(op, LabelRef):
                return op
        return None

    @property
    def target(self) -> Optional[int]:
        ref = self.target_label
        return None if ref is None else ref.target

    # -- static register read/write sets ---------------------------------

    def mem_operand(self) -> Optional[Mem]:
        """The (single) explicit memory operand, if any."""
        return self.meta.mem_operand

    def reads_memory(self) -> bool:
        """True when executing this instruction loads from data memory."""
        return self.meta.reads_memory

    def writes_memory(self) -> bool:
        """True when executing this instruction stores to data memory."""
        return self.meta.writes_memory

    def reg_reads(self) -> Tuple[str, ...]:
        """Architectural registers read, including implicit ones (address
        registers, rsp for stack ops, rflags for conditional jumps)."""
        return self.meta.reg_reads

    def reg_writes(self) -> Tuple[str, ...]:
        """Architectural registers written, including implicit ones."""
        return self.meta.reg_writes

    # -- uncached computations backing InstrMeta -------------------------

    def _mem_operand(self) -> Optional[Mem]:
        for op in self.operands:
            if isinstance(op, Mem):
                return op
        return None

    def _reads_memory(self) -> bool:
        kind = OPCODES[self.opcode].kind
        if kind in ("pop", "ret"):
            return True
        if kind in ("lea", "nop", "hlt", "fork", "endfork", "call", "push"):
            return False
        mem = self._mem_operand()
        if mem is None:
            return False
        info = OPCODES[self.opcode]
        # A memory destination is loaded only by read-modify-write opcodes;
        # a memory source is always loaded.
        if info.writes_dest and self.operands[-1] is mem:
            return info.reads_dest
        return True

    def _writes_memory(self) -> bool:
        kind = OPCODES[self.opcode].kind
        if kind in ("push", "call"):
            return True
        if kind in ("lea", "pop", "ret", "nop", "hlt", "fork", "endfork"):
            return False
        info = OPCODES[self.opcode]
        mem = self._mem_operand()
        return bool(info.writes_dest and mem is not None
                    and self.operands and self.operands[-1] is mem)

    def _reg_reads(self) -> Tuple[str, ...]:
        info = OPCODES[self.opcode]
        regs: List[str] = []
        kind = info.kind

        def add(name: str) -> None:
            if name not in regs:
                regs.append(name)

        for i, op in enumerate(self.operands):
            is_dest = info.writes_dest and i == len(self.operands) - 1
            if isinstance(op, Reg):
                if not is_dest or info.reads_dest:
                    add(op.name)
            elif isinstance(op, Mem):
                # Address registers are read even for lea and for memory
                # destinations: the effective address must be formed.
                for r in op.regs():
                    add(r)
        if kind in ("push", "pop", "call", "ret"):
            add(STACK_POINTER)
        if kind == "cqo":
            add("rax")
        if kind == "idiv":
            add("rax")
            add("rdx")
        if info.reads_flags:
            add(FLAGS)
        return tuple(regs)

    def _reg_writes(self) -> Tuple[str, ...]:
        info = OPCODES[self.opcode]
        regs: List[str] = []
        kind = info.kind

        def add(name: str) -> None:
            if name not in regs:
                regs.append(name)

        if info.writes_dest and self.operands:
            dest = self.operands[-1]
            if isinstance(dest, Reg):
                add(dest.name)
        if kind in ("push", "pop", "call", "ret"):
            add(STACK_POINTER)
        if kind == "cqo":
            add("rdx")
        if kind == "idiv":
            add("rax")
            add("rdx")
        if info.writes_flags:
            add(FLAGS)
        return tuple(regs)

    # -- display ----------------------------------------------------------

    def __str__(self) -> str:
        ops = ", ".join(str(op) for op in self.operands)
        text = self.opcode + ("q" if _takes_suffix(self.opcode) else "")
        return ("%s %s" % (text, ops)) if ops else text

    def describe(self) -> str:
        """Rendering with leading labels, as it would appear in source."""
        prefix = "".join("%s: " % lab for lab in self.labels)
        return prefix + str(self)


_NO_SUFFIX = frozenset(
    ("ret", "jmp", "call", "fork", "forkloop", "endfork", "nop", "hlt",
     "cqo", "out")
    + tuple(CONDITION_CODES)
)


def _takes_suffix(opcode: str) -> bool:
    return opcode not in _NO_SUFFIX
