"""Per-tenant token-bucket quotas for the serve daemon.

A :class:`TokenBucket` holds up to ``burst`` tokens and refills at
``rate`` tokens per second; each admitted job costs one token.  A denied
acquisition reports how long the caller must wait for enough tokens —
the daemon surfaces that as a ``Retry-After`` header on its 429.

The clock is injectable (default ``time.monotonic``) so tests can drive
refill deterministically without sleeping.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Tuple


class TokenBucket:
    """One tenant's budget: *burst* capacity, *rate* tokens/second."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if burst <= 0:
            raise ValueError("burst must be > 0 (got %r)" % (burst,))
        if rate < 0:
            raise ValueError("rate must be >= 0 (got %r)" % (rate,))
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        if now > self._stamp:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp)
                               * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, cost: float = 1.0) -> Tuple[bool, float]:
        """Spend *cost* tokens if available.

        Returns ``(granted, retry_after_s)``: on a grant the wait is 0;
        on a denial it is the time until the bucket will hold *cost*
        tokens (``inf`` for a zero refill rate, or a cost above the
        burst capacity, which can never be granted).  Denials spend
        nothing.
        """
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return True, 0.0
        if self.rate <= 0 or cost > self.burst:
            return False, math.inf
        return False, (cost - self._tokens) / self.rate

    def refund(self, amount: float) -> None:
        """Return *amount* tokens (an admitted request the server then
        rejected for a different reason must not burn quota)."""
        self._refill()
        self._tokens = min(self.burst, self._tokens + amount)


class QuotaManager:
    """Lazily materialized per-tenant buckets sharing one rate/burst
    policy."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket(self, tenant: str) -> TokenBucket:
        found = self._buckets.get(tenant)
        if found is None:
            found = TokenBucket(self.rate, self.burst, self._clock)
            self._buckets[tenant] = found
        return found

    def try_acquire(self, tenant: str,
                    cost: float = 1.0) -> Tuple[bool, float]:
        return self.bucket(tenant).try_acquire(cost)

    def refund(self, tenant: str, amount: float) -> None:
        self.bucket(tenant).refund(amount)

    def tenants(self) -> List[str]:
        return sorted(self._buckets)
