"""Minimal asyncio HTTP/1.1 front end for :class:`~repro.serve.daemon.
SimServer` — stdlib only, one connection per request.

Routes::

    GET  /healthz            liveness + version + queue/cache snapshot
    GET  /metrics            Prometheus text exposition (host domain)
    POST /jobs               submit a job spec (repro batch spec JSON);
                             tenant from the X-Repro-Tenant header
    GET  /jobs/<id>          one record's status
    GET  /jobs/<id>/events   lifecycle stream — NDJSON by default, SSE
                             when Accept: text/event-stream
    GET  /results/<key>      fetch a payload by content address

Errors are structured JSON — ``{"error": {"kind": ..., "message":
...}}`` — and throttling responses (429) carry both a ``Retry-After``
header and a ``retry_after_s`` field, so clients can be dumb *or*
clever about backoff.

Deliberately not a web framework: no routing table, no middleware, no
keep-alive.  The daemon's concurrency story lives in
:mod:`repro.serve.daemon`; this module only frames bytes.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import unquote, urlsplit

from .daemon import ServeConfig, ServeRejected, SimServer

_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                413: "Payload Too Large", 429: "Too Many Requests",
                500: "Internal Server Error", 503: "Service Unavailable"}

#: request-line + headers may not exceed this (a spec body is bounded
#: separately by ``ServeConfig.max_body_bytes``)
_MAX_HEADER_BYTES = 32 * 1024


class _HttpError(Exception):
    """A framing/validation failure turned into a structured response."""

    def __init__(self, status: int, kind: str, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.message = message
        self.retry_after_s = retry_after_s


def _head(status: int, content_type: str,
          extra: Mapping[str, str] = {},
          length: Optional[int] = None) -> bytes:
    lines = ["HTTP/1.1 %d %s" % (status,
                                 _STATUS_TEXT.get(status, "Unknown")),
             "Content-Type: %s" % content_type,
             "Connection: close"]
    if length is not None:
        lines.append("Content-Length: %d" % length)
    for name, value in extra.items():
        lines.append("%s: %s" % (name, value))
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


def _json_body(status: int, payload: Any,
               extra: Mapping[str, str] = {}) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return _head(status, "application/json", extra, len(body)) + body


def _error_body(status: int, kind: str, message: str,
                retry_after_s: Optional[float] = None) -> bytes:
    error: Dict[str, Any] = {"kind": kind, "message": message}
    extra: Dict[str, str] = {}
    if retry_after_s is not None and not math.isfinite(retry_after_s):
        retry_after_s = None        # unservable (e.g. zero refill rate):
                                    # no honest Retry-After exists
    if retry_after_s is not None:
        error["retry_after_s"] = round(retry_after_s, 3)
        extra["Retry-After"] = str(max(1, int(retry_after_s + 0.999)))
    return _json_body(status, {"error": error}, extra)


async def _read_request(reader: asyncio.StreamReader,
                        max_body: int) -> Tuple[str, str, Dict[str, str],
                                                bytes]:
    """Parse one request: ``(method, path, headers, body)``.

    Header names are lower-cased; the path is percent-decoded with the
    query string split off (the daemon's routes take no query params
    today, so the query is simply ignored)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError:
        raise _HttpError(400, "bad_request", "header section too large")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionResetError("client closed the connection")
        raise _HttpError(400, "bad_request", "truncated request")
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(400, "bad_request", "header section too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _HttpError(400, "bad_request",
                         "malformed request line %r" % lines[0][:100])
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _HttpError(400, "bad_request",
                         "malformed Content-Length header")
    if length > max_body:
        raise _HttpError(
            413, "too_large",
            "request body is %d bytes; this server accepts at most %d"
            % (length, max_body))
    body = await reader.readexactly(length) if length else b""
    path = unquote(urlsplit(target).path)
    return method, path, headers, body


def _parse_json(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise _HttpError(400, "invalid_json",
                         "request body is not valid JSON: %s" % exc)


def _route_label(method: str, path: str) -> str:
    """Stable low-cardinality label for the request counter (error
    responses must attribute to the route they failed on, so this is
    computed before dispatch, not returned by it)."""
    if path == "/healthz":
        return "healthz"
    if path == "/metrics":
        return "metrics"
    if path == "/jobs":
        return "jobs_submit"
    if path.startswith("/jobs/"):
        return ("jobs_events" if path.endswith("/events")
                else "jobs_status")
    if path.startswith("/results/"):
        return "results"
    return "other"


class HttpFrontend:
    """Binds a :class:`SimServer` to an asyncio stream server."""

    def __init__(self, server: SimServer) -> None:
        self.server = server
        self._listener: Optional[asyncio.AbstractServer] = None

    # -- routing ---------------------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        route = "other"
        status = 500
        try:
            method, path, headers, body = await _read_request(
                reader, self.server.config.max_body_bytes)
            route = _route_label(method, path)
            status = await self._dispatch(writer, method, path,
                                          headers, body)
        except ConnectionResetError:
            status = 0            # nothing was served; don't count it
        except _HttpError as exc:
            status = exc.status
            self._try_write(writer, _error_body(
                exc.status, exc.kind, exc.message, exc.retry_after_s))
        except ServeRejected as exc:
            status = exc.status
            self._try_write(writer, _error_body(
                exc.status, exc.kind, str(exc), exc.retry_after_s))
        except Exception as exc:    # noqa: BLE001 — last-resort handler
            status = 500
            self._try_write(writer, _error_body(
                500, "internal", "unhandled server error: %r" % (exc,)))
        finally:
            if status:
                self.server.observe_http(route, status)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _try_write(self, writer: asyncio.StreamWriter,
                   data: bytes) -> None:
        try:
            writer.write(data)
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _dispatch(self, writer: asyncio.StreamWriter, method: str,
                        path: str, headers: Mapping[str, str],
                        body: bytes) -> int:
        """Route one parsed request; returns the response status for
        the request counter."""
        server = self.server
        if path == "/healthz" and method == "GET":
            writer.write(_json_body(200, server.healthz()))
            return 200
        if path == "/metrics" and method == "GET":
            text = server.render_metrics().encode()
            writer.write(_head(200, "text/plain; version=0.0.4",
                               length=len(text)) + text)
            return 200
        if path == "/jobs" and method == "POST":
            tenant = headers.get("x-repro-tenant", "default")
            status, payload = server.submit_spec(_parse_json(body),
                                                 tenant=tenant)
            writer.write(_json_body(status, payload))
            return status
        if path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                record_id = rest[:-len("/events")]
                sse = "text/event-stream" in headers.get("accept", "")
                return await self._stream_events(writer, record_id, sse)
            record = server.record(rest)
            if record is None:
                raise _HttpError(404, "not_found",
                                 "no such job %r" % rest)
            writer.write(_json_body(200, record.to_json_dict()))
            return 200
        if path.startswith("/results/") and method == "GET":
            key = path[len("/results/"):]
            payload, tier = server.result(key)
            if payload is None:
                raise _HttpError(404, "not_found",
                                 "no cached result for key %r" % key)
            writer.write(_json_body(200, {"key": key, "tier": tier,
                                          "payload": payload}))
            return 200
        if path in ("/healthz", "/metrics", "/jobs") or \
                path.startswith(("/jobs/", "/results/")):
            raise _HttpError(405, "method_not_allowed",
                             "%s is not supported on %s" % (method, path))
        raise _HttpError(404, "not_found", "no route for %r" % path)

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             record_id: str, sse: bool) -> int:
        """Stream a record's lifecycle events until it is terminal —
        newline-delimited JSON, or SSE ``data:`` frames on request."""
        record = self.server.record(record_id)
        if record is None:
            raise _HttpError(404, "not_found",
                             "no such job %r" % record_id)
        content_type = ("text/event-stream" if sse
                        else "application/x-ndjson")
        writer.write(_head(200, content_type,
                           {"Cache-Control": "no-store"}))
        try:
            async for event in record.follow():
                line = json.dumps(event, sort_keys=True)
                if sse:
                    writer.write(("data: %s\n\n" % line).encode())
                else:
                    writer.write((line + "\n").encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass                    # client went away mid-stream
        return 200

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Start the daemon core and the listener; returns the bound
        ``(host, port)`` (port 0 resolves to the kernel's pick)."""
        await self.server.start()
        self._listener = await asyncio.start_server(
            self.handle, self.server.config.host,
            self.server.config.port)
        sock = self._listener.sockets[0]
        host, port = sock.getsockname()[:2]
        return str(host), int(port)

    async def stop(self) -> None:
        """Stop accepting, then drain the daemon gracefully."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        await self.server.shutdown()


async def run_server(config: ServeConfig,
                     shutdown: Optional[asyncio.Event] = None) -> None:
    """Serve until *shutdown* is set (or SIGINT/SIGTERM when running on
    a loop that supports signal handlers), then drain and exit."""
    frontend = HttpFrontend(SimServer(config))
    host, port = await frontend.start()
    stop = shutdown if shutdown is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    if shutdown is None:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass                # non-main thread / exotic platform
    print("repro serve: listening on http://%s:%d (pool=%d, "
          "queue=%d, lru=%d)"
          % (host, port, config.pool_size, config.queue_limit,
             config.lru_capacity), flush=True)
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        print("repro serve: draining...", flush=True)
        await frontend.stop()
        print("repro serve: stopped", flush=True)


def serve_forever(config: ServeConfig) -> None:
    """Blocking entry point used by ``repro serve``."""
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        pass
