"""Sharded in-process LRU cache — the serve daemon's hot tier.

Keys are spread over independent shards by a *stable* hash (crc32, not
the per-process-randomized builtin ``hash``), so shard assignment — and
therefore eviction behaviour — is reproducible across runs and
processes.  Each shard is an insertion-ordered dict used LRU-style:
hits move the entry to the back, eviction pops the front.

Sharding keeps the worst-case cost of one operation bounded by the
shard size rather than the whole cache, and is the shape a future
multi-threaded or multi-interpreter server wants (one lock per shard);
under the asyncio daemon everything runs on one loop, so no locks are
needed yet.

A capacity of 0 disables the cache entirely (every ``get`` is a miss,
``put`` is a no-op) — the configuration knob for serving straight from
disk.

Two variants share the sharding scheme: :class:`ShardedLRU` bounds the
**entry count** (job payloads, whose sizes cluster) and
:class:`ByteBudgetLRU` bounds the **total bytes** (snapshot blobs,
whose sizes span orders of magnitude).
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Any, Dict, List, Optional


class ShardedLRU:
    """Bounded in-process key/value cache over *shards* LRU shards."""

    def __init__(self, capacity: int, shards: int = 8) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0 (got %r)"
                             % (capacity,))
        if shards < 1:
            raise ValueError("shards must be >= 1 (got %r)" % (shards,))
        self.capacity = capacity
        #: per-shard entry budget; total capacity is distributed evenly
        #: (ceiling division, so the sum is >= capacity and every shard
        #: can hold at least one entry when capacity > 0)
        self.shard_capacity = ((capacity + shards - 1) // shards
                               if capacity else 0)
        self._shards: List["OrderedDict[str, Any]"] = [
            OrderedDict() for _ in range(shards)]
        #: lifetime telemetry: ``hits``, ``misses``, ``evictions``
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0,
                                      "evictions": 0}

    def _shard(self, key: str) -> "OrderedDict[str, Any]":
        return self._shards[zlib.crc32(key.encode()) % len(self._shards)]

    def get(self, key: str) -> Optional[Any]:
        """The cached value for *key* (refreshing its recency), or None."""
        shard = self._shard(key)
        if key not in shard:
            self.stats["misses"] += 1
            return None
        shard.move_to_end(key)
        self.stats["hits"] += 1
        return shard[key]

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh *key*, evicting the shard's LRU tail past
        capacity."""
        if self.capacity == 0:
            return
        shard = self._shard(key)
        shard[key] = value
        shard.move_to_end(key)
        while len(shard) > self.shard_capacity:
            shard.popitem(last=False)
            self.stats["evictions"] += 1

    def __contains__(self, key: str) -> bool:
        return key in self._shard(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def shard_sizes(self) -> List[int]:
        """Entry count per shard (distribution diagnostics)."""
        return [len(shard) for shard in self._shards]


class ByteBudgetLRU:
    """Sharded LRU bounded by total **bytes**, not entry count.

    The entry-count cap of :class:`ShardedLRU` is the right bound for
    job payloads, whose sizes cluster tightly; it is the wrong bound for
    snapshot blobs, which span three orders of magnitude (a few KB for a
    toy program to several MB for a scale-1 radixsort).  Caching "512
    blobs" could mean 2 MB or 3 GB.  This variant accounts the byte
    length of every value and evicts LRU-first until each shard is back
    under its budget.

    Values must be ``bytes``-like (anything with ``len()`` measuring
    bytes).  An oversize value — larger than a whole shard's budget —
    bypasses the cache entirely (counted in ``stats["oversize"]``)
    rather than evicting everything else just to thrash.

    A budget of 0 disables the cache, mirroring ``ShardedLRU``.
    """

    def __init__(self, budget_bytes: int, shards: int = 8) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0 (got %r)"
                             % (budget_bytes,))
        if shards < 1:
            raise ValueError("shards must be >= 1 (got %r)" % (shards,))
        self.budget_bytes = budget_bytes
        self.shard_budget = ((budget_bytes + shards - 1) // shards
                             if budget_bytes else 0)
        self._shards: List["OrderedDict[str, bytes]"] = [
            OrderedDict() for _ in range(shards)]
        self._shard_bytes: List[int] = [0] * shards
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0,
                                      "evictions": 0, "oversize": 0}

    def _index(self, key: str) -> int:
        return zlib.crc32(key.encode()) % len(self._shards)

    def get(self, key: str) -> Optional[bytes]:
        """The cached bytes for *key* (refreshing recency), or None."""
        shard = self._shards[self._index(key)]
        if key not in shard:
            self.stats["misses"] += 1
            return None
        shard.move_to_end(key)
        self.stats["hits"] += 1
        return shard[key]

    def put(self, key: str, value: bytes) -> None:
        """Insert/refresh *key*, evicting LRU entries until the shard is
        within budget; oversize values bypass the cache."""
        if self.budget_bytes == 0:
            return
        size = len(value)
        if size > self.shard_budget:
            self.stats["oversize"] += 1
            return
        index = self._index(key)
        shard = self._shards[index]
        if key in shard:
            self._shard_bytes[index] -= len(shard[key])
        shard[key] = value
        shard.move_to_end(key)
        self._shard_bytes[index] += size
        while self._shard_bytes[index] > self.shard_budget:
            _, evicted = shard.popitem(last=False)
            self._shard_bytes[index] -= len(evicted)
            self.stats["evictions"] += 1

    def __contains__(self, key: str) -> bool:
        return key in self._shards[self._index(key)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def total_bytes(self) -> int:
        """Bytes currently held across all shards."""
        return sum(self._shard_bytes)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()
        self._shard_bytes = [0] * len(self._shards)
