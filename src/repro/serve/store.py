"""Two-level result store: sharded in-process LRU over the on-disk
content-addressed :class:`~repro.runner.cache.ResultCache`.

Lookup order is LRU -> disk -> miss.  A disk hit is promoted into the
LRU so repeated fetches of a hot key never touch the filesystem again;
a fresh execution writes through both tiers.  Because both tiers are
keyed by the job's content address, an entry served from either tier is
byte-identical to a fresh execution (the engine's normalization
contract), so tiering is purely a latency/exhaustion trade:

* the LRU absorbs the "millions of users ask the same question" burst
  (a hit is a dict lookup, no JSON parse, no syscalls);
* the disk tier is shared across server restarts and with every other
  cache client (``repro batch``, the benchmark grids), and heals
  poisoned entries fail-open exactly as in PR 5.

``stats()`` folds both tiers' counters — including the disk tier's
``healed`` count, this handle's delta — into one dict the daemon
exports through its metrics registry.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..runner.cache import ResultCache
from .lru import ByteBudgetLRU, ShardedLRU

#: which tier served a hit
LRU_TIER, DISK_TIER = "lru", "disk"


class TieredResultStore:
    """LRU-over-disk payload store keyed by job content address.

    Snapshot blobs get their own hot tier (:class:`ByteBudgetLRU`,
    byte-budgeted) over the disk cache's blob directory — a multi-MB
    snapshot must never evict hundreds of small job payloads from the
    entry-counted LRU, and vice versa.
    """

    def __init__(self, lru: ShardedLRU,
                 disk: Optional[ResultCache] = None,
                 blob_lru: Optional[ByteBudgetLRU] = None) -> None:
        self.lru = lru
        self.disk = disk
        #: hot tier for snapshot blobs; None = serve blobs from disk only
        self.blob_lru = blob_lru
        #: disk counters at attach time — ``stats()`` reports deltas so
        #: a store wrapping a pre-used cache handle starts from zero
        self._disk_base: Dict[str, int] = (dict(disk.stats)
                                           if disk is not None else {})
        self._blob_base: Dict[str, int] = (dict(disk.blob_stats)
                                           if disk is not None else {})

    def get(self, key: str) -> Tuple[Optional[Dict[str, Any]],
                                     Optional[str]]:
        """``(payload, tier)`` — tier is ``"lru"``/``"disk"`` on a hit,
        None on a miss (both elements None)."""
        payload = self.lru.get(key)
        if payload is not None:
            return payload, LRU_TIER
        if self.disk is not None:
            payload = self.disk.get(key)
            if payload is not None:
                self.lru.put(key, payload)
                return payload, DISK_TIER
        return None, None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Write-through publish into both tiers."""
        self.lru.put(key, payload)
        if self.disk is not None:
            self.disk.put(key, payload)

    def get_blob(self, key: str) -> Tuple[Optional[bytes], Optional[str]]:
        """``(blob, tier)`` for a snapshot blob — same contract as
        :meth:`get`, over the byte-budgeted hot tier."""
        if self.blob_lru is not None:
            blob = self.blob_lru.get(key)
            if blob is not None:
                return blob, LRU_TIER
        if self.disk is not None:
            blob = self.disk.get_blob(key)
            if blob is not None:
                if self.blob_lru is not None:
                    self.blob_lru.put(key, blob)
                return blob, DISK_TIER
        return None, None

    def put_blob(self, data: bytes) -> str:
        """Write-through publish of a blob; returns its sha256 key."""
        if self.disk is not None:
            key = self.disk.put_blob(data)
        else:
            import hashlib
            key = hashlib.sha256(data).hexdigest()
        if self.blob_lru is not None:
            self.blob_lru.put(key, data)
        return key

    def stats(self) -> Dict[str, int]:
        """Folded two-tier counters: ``lru_hits``/``lru_misses``/
        ``evictions`` from the hot tier, ``disk_hits``/``disk_misses``/
        ``healed`` as this store's deltas on the disk handle."""
        out = {
            "lru_hits": self.lru.stats["hits"],
            "lru_misses": self.lru.stats["misses"],
            "evictions": self.lru.stats["evictions"],
            "lru_entries": len(self.lru),
            "disk_hits": 0,
            "disk_misses": 0,
            "healed": 0,
        }
        if self.disk is not None:
            for ours, theirs in (("disk_hits", "hits"),
                                 ("disk_misses", "misses"),
                                 ("healed", "healed")):
                out[ours] = (self.disk.stats[theirs]
                             - self._disk_base.get(theirs, 0))
        if self.blob_lru is not None:
            out["blob_lru_hits"] = self.blob_lru.stats["hits"]
            out["blob_lru_misses"] = self.blob_lru.stats["misses"]
            out["blob_evictions"] = self.blob_lru.stats["evictions"]
            out["blob_oversize"] = self.blob_lru.stats["oversize"]
            out["blob_bytes"] = self.blob_lru.total_bytes()
        if self.disk is not None:
            for ours, theirs in (("blob_disk_hits", "hits"),
                                 ("blob_disk_misses", "misses"),
                                 ("blob_healed", "healed")):
                out[ours] = (self.disk.blob_stats[theirs]
                             - self._blob_base.get(theirs, 0))
        return out
