"""Synchronous client + in-process daemon runner for ``repro.serve``.

Two pieces, both stdlib-only:

* :class:`ServeClient` — a blocking ``http.client`` wrapper over the
  daemon's routes, for scripts that want to drive a server without
  writing HTTP by hand (benchmarks, CI smoke checks, notebooks);
* :class:`DaemonThread` — a real daemon on a real socket, running in a
  background thread with its own event loop.  The benchmark harness and
  the CI serve job use it to measure/exercise the daemon in-process
  without shelling out.

The *tests* deliberately keep their own lower-level harness
(``tests/serve/_harness.py``) so the serving stack is exercised by raw
requests too, not only through this client.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import Any, Dict, List, Optional, Tuple

from .daemon import ServeConfig, SimServer
from .http import HttpFrontend


class ServeError(RuntimeError):
    """A non-2xx response, carrying the structured error payload."""

    def __init__(self, status: int, payload: Any) -> None:
        error = (payload or {}).get("error", {}) \
            if isinstance(payload, dict) else {}
        super().__init__("HTTP %d: %s" % (status,
                                          error.get("message", payload)))
        self.status = status
        self.kind = error.get("kind")
        self.retry_after_s = error.get("retry_after_s")
        self.payload = payload


class ServeClient:
    """Blocking client for one ``repro serve`` endpoint."""

    def __init__(self, host: str, port: int,
                 tenant: Optional[str] = None,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None
                 ) -> Tuple[int, Dict[str, str], Any]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            resp = conn.getresponse()
            raw = resp.read()
            kind = resp.headers.get("Content-Type", "")
            parsed: Any = (json.loads(raw)
                           if kind.startswith("application/json")
                           else raw.decode())
            return resp.status, dict(resp.headers), parsed
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: Optional[bytes] = None,
              headers: Optional[Dict[str, str]] = None) -> Any:
        status, _, parsed = self._request(method, path, body, headers)
        if status >= 400:
            raise ServeError(status, parsed)
        return parsed

    def healthz(self) -> Dict[str, Any]:
        result: Dict[str, Any] = self._json("GET", "/healthz")
        return result

    def metrics(self) -> str:
        status, _, text = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, text)
        return str(text)

    def submit(self, spec: Any) -> List[Dict[str, Any]]:
        """POST a job spec; returns the record dicts."""
        headers = ({"X-Repro-Tenant": self.tenant} if self.tenant
                   else {})
        payload = self._json("POST", "/jobs",
                             body=json.dumps(spec).encode(),
                             headers=headers)
        records: List[Dict[str, Any]] = payload["jobs"]
        return records

    def status(self, record_id: str) -> Dict[str, Any]:
        result: Dict[str, Any] = self._json("GET",
                                            "/jobs/%s" % record_id)
        return result

    def events(self, record_id: str) -> List[Dict[str, Any]]:
        """Follow the NDJSON stream to the terminal event; returns the
        full event list (blocks until the job finishes)."""
        status, _, text = self._request("GET",
                                        "/jobs/%s/events" % record_id)
        if status != 200:
            raise ServeError(status, text)
        return [json.loads(line) for line in str(text).splitlines()
                if line]

    def wait(self, record_id: str) -> str:
        """Block until the record is terminal; returns its final
        status string."""
        return str(self.events(record_id)[-1]["status"])

    def result(self, key: str) -> Dict[str, Any]:
        """Fetch a payload by content address; raises on a cache miss."""
        result: Dict[str, Any] = self._json("GET", "/results/%s" % key)
        return result

    def run(self, spec: Any) -> List[Dict[str, Any]]:
        """Submit, wait for every record, fetch every payload."""
        records = self.submit(spec)
        out = []
        for record in records:
            if record["status"] not in ("cached",):
                final = self.wait(record["job"])
                if final != "done":
                    raise ServeError(500, {"error": {
                        "kind": "job_" + final,
                        "message": "job %s ended %s"
                                   % (record["job"], final)}})
            out.append(self.result(record["key"])["payload"])
        return out


class DaemonThread:
    """A live daemon on an ephemeral port, in a background thread.

    Usage::

        with DaemonThread(ServeConfig(port=0, pool_size=2)) as client:
            payloads = client.run(spec)
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.server: Optional[SimServer] = None
        self.client: Optional[ServeClient] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._done = threading.Event()

    def start(self) -> ServeClient:
        ready = threading.Event()
        failure: List[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def run() -> None:
                self.server = SimServer(self.config)
                frontend = HttpFrontend(self.server)
                try:
                    host, port = await frontend.start()
                except Exception as exc:
                    failure.append(exc)
                    ready.set()
                    return
                self.client = ServeClient(host, port)
                self._stop = asyncio.Event()
                ready.set()
                await self._stop.wait()
                await frontend.stop()

            try:
                loop.run_until_complete(run())
            finally:
                loop.close()
                self._done.set()

        self._thread = threading.Thread(target=runner, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not ready.wait(timeout=30) or self.client is None:
            raise RuntimeError("serve daemon failed to start: %r"
                               % (failure[0] if failure else "timeout"))
        return self.client

    def stop(self, timeout: float = 120.0) -> None:
        if self._loop is None or self._stop is None:
            return
        stop = self._stop
        self._loop.call_soon_threadsafe(stop.set)
        if not self._done.wait(timeout=timeout):
            raise RuntimeError("serve daemon failed to drain")
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> ServeClient:
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
