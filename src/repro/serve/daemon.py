"""The simulation-as-a-service core: job admission, coalescing, tiered
caching, quotas, and graceful shutdown — everything except the HTTP
framing (:mod:`repro.serve.http`).

Serving pipeline for one submitted job::

    quota (per-tenant token bucket)          -> 429 + Retry-After
      -> two-level cache (LRU -> disk)       -> terminal "cached" record
      -> coalesce onto an in-flight key      -> rides the one execution
      -> bounded queue (backpressure)        -> 429 + Retry-After
      -> worker pool (repro.runner)          -> terminal "done"/"failed"

Everything between parsing a spec and committing its records runs
synchronously on the event loop (no await points), so admission is
atomic: a rejected request leaves **no partial state** — quota tokens
are refunded, no records exist, nothing is queued.

Execution happens in the PR 5 worker pool
(:class:`repro.runner.engine.WorkerPool`) off the event loop, through
the same worker function as ``repro batch`` — daemon-served payloads
are bit-identical to the engine's, which the daemon-vs-engine
differential test (``tests/serve/test_differential.py``) compares
verbatim.

Request coalescing keys on the job's content address: while a key is in
flight, further submissions of the same key attach to the running
execution instead of enqueuing another — a burst of N identical submits
performs exactly one simulation and N-1 coalesced attaches.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..errors import ReproError
from ..obs.metrics import HOST_DOMAIN, MetricsRegistry
from ..runner.cache import ResultCache
from ..runner.engine import FAILED, OK, WorkerPool, WorkerResult
from ..runner.job import Job
from ..runner.spec import jobs_from_spec
from .lru import ByteBudgetLRU, ShardedLRU
from .quota import QuotaManager
from .store import TieredResultStore

#: version of the daemon's JSON envelopes (submit/status/healthz)
SERVE_SCHEMA_VERSION = 1

#: job record states; ``cached``/``done``/``failed``/``cancelled`` are
#: terminal
QUEUED, RUNNING, DONE, CACHED, FAILED_STATE, CANCELLED = (
    "queued", "running", "done", "cached", "failed", "cancelled")
TERMINAL_STATES = frozenset({DONE, CACHED, FAILED_STATE, CANCELLED})

#: wall-clock histogram bounds for daemon-side job latency, seconds
_WALL_BOUNDS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0)


@dataclass
class ServeConfig:
    """Tunables of one :class:`SimServer` instance."""

    host: str = "127.0.0.1"
    port: int = 8321
    #: worker processes executing simulations (also the number of
    #: concurrent executions the daemon dispatches)
    pool_size: int = 2
    #: max jobs waiting for a worker before submits get 429s
    queue_limit: int = 32
    #: in-process LRU capacity in entries (0 disables the hot tier)
    lru_capacity: int = 256
    lru_shards: int = 8
    #: hot-tier budget for snapshot blobs in **bytes** (0 disables it);
    #: blobs are byte-budgeted separately so one multi-MB snapshot can
    #: never evict hundreds of small job payloads
    blob_lru_bytes: int = 32 * 1024 * 1024
    #: on-disk content-addressed cache directory (None = no disk tier)
    cache_dir: Optional[str] = None
    #: per-tenant token bucket: sustained jobs/second and burst size
    quota_rate: float = 16.0
    quota_burst: float = 64.0
    #: request bodies above this are rejected with a structured 413
    max_body_bytes: int = 1_000_000
    #: Retry-After hint on queue-full backpressure, seconds
    retry_after_s: float = 1.0
    #: how long graceful shutdown waits for running jobs to finish
    drain_timeout_s: float = 30.0
    #: allow ``"file"`` job-spec entries (the daemon reads server-local
    #: paths; off by default because remote tenants should not get to
    #: point the server at its own filesystem)
    allow_files: bool = False
    #: base directory for ``"file"`` entries when enabled
    spec_base_dir: str = "."
    #: finished records kept for status/event queries before the oldest
    #: terminal ones are evicted
    record_limit: int = 10_000


class ServeRejected(ReproError):
    """An admission failure mapped to a structured HTTP error."""

    def __init__(self, status: int, kind: str, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.retry_after_s = retry_after_s


@dataclass
class JobRecord:
    """One submitted job's lifecycle, queryable and streamable."""

    record_id: str
    key: str
    tenant: str
    job_id: str
    status: str = QUEUED
    coalesced: bool = False
    cache_tier: Optional[str] = None
    error: Optional[str] = None
    wall_s: Optional[float] = None
    #: lifecycle events, append-only; the NDJSON/SSE stream replays
    #: this history then follows live appends
    events: List[Dict[str, Any]] = field(default_factory=list)
    _wake: asyncio.Event = field(default_factory=asyncio.Event,
                                 repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def push(self, event: str, **extra: Any) -> None:
        entry: Dict[str, Any] = {
            "seq": len(self.events), "event": event,
            "job": self.record_id, "key": self.key,
            "status": self.status, "ts": round(time.time(), 3)}
        entry.update(extra)
        self.events.append(entry)
        self._wake.set()

    async def follow(self, cursor: int = 0) -> Any:
        """Async-iterate events from *cursor*: replay history, then wait
        for live appends until the record is terminal."""
        while True:
            while cursor < len(self.events):
                yield self.events[cursor]
                cursor += 1
            if self.terminal:
                return
            self._wake.clear()
            await self._wake.wait()

    def to_json_dict(self) -> Dict[str, Any]:
        return {"job": self.record_id, "id": self.job_id,
                "key": self.key, "tenant": self.tenant,
                "status": self.status, "coalesced": self.coalesced,
                "cache_tier": self.cache_tier, "error": self.error,
                "wall_s": self.wall_s, "events": len(self.events)}


@dataclass
class _Inflight:
    """One queued-or-running execution; coalesced records attach here."""

    job: Job
    records: List[JobRecord]


class SimServer:
    """The daemon core: admission, dispatch, caching, metrics.

    Lifecycle: construct, ``await start()``, handle requests (the HTTP
    layer calls :meth:`submit_spec` & friends), ``await shutdown()``.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        disk = (ResultCache(config.cache_dir)
                if config.cache_dir else None)
        self.store = TieredResultStore(
            ShardedLRU(config.lru_capacity, config.lru_shards), disk,
            blob_lru=ByteBudgetLRU(config.blob_lru_bytes,
                                   config.lru_shards))
        self.quotas = QuotaManager(config.quota_rate, config.quota_burst)
        self.registry = MetricsRegistry(HOST_DOMAIN)
        self.records: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._inflight: Dict[str, _Inflight] = {}
        self._running_keys: set = set()
        self._queue: "asyncio.Queue[Optional[str]]" = asyncio.Queue()
        self._dispatchers: List["asyncio.Task[None]"] = []
        self.pool: Optional[WorkerPool] = None
        self.draining = False
        self._seq = 0
        self._healed_exported = 0
        self._started_at = time.time()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Spin up the worker pool and the dispatcher tasks."""
        if self.pool is not None:
            raise RuntimeError("server already started")
        self.pool = WorkerPool(self.config.pool_size)
        self._dispatchers = [
            asyncio.get_running_loop().create_task(self._dispatch_loop())
            for _ in range(self.config.pool_size)]

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, fail queued jobs cleanly,
        let running jobs finish (bounded by ``drain_timeout_s``)."""
        self.draining = True
        # fail everything still waiting for a worker
        while True:
            try:
                key = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if key is None:
                continue
            inflight = self._inflight.pop(key, None)
            if inflight is not None:
                for record in inflight.records:
                    record.status = CANCELLED
                    record.error = "server shutting down"
                    record.push("cancelled", reason="shutdown")
                    self._count_job(CANCELLED)
        # wake each dispatcher so it can observe the drain and exit
        for _ in self._dispatchers:
            self._queue.put_nowait(None)
        if self._dispatchers:
            done, pending = await asyncio.wait(
                self._dispatchers, timeout=self.config.drain_timeout_s)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        # any record still marked running at this point overran the
        # drain timeout — fail it instead of leaving it dangling
        for record in self.records.values():
            if not record.terminal:
                record.status = FAILED_STATE
                record.error = "server shut down before completion"
                record.push("failed", error=record.error)
                self._count_job(FAILED_STATE)
        if self.pool is not None:
            if self._running_keys:
                self.pool.terminate()
            else:
                self.pool.close()

    # -- admission -------------------------------------------------------

    def _next_record_id(self) -> str:
        self._seq += 1
        return "j-%08d" % self._seq

    def _count_job(self, status: str) -> None:
        self.registry.counter("serve_jobs", "job records by terminal "
                              "status", status=status).inc()

    def _reject(self, status: int, kind: str, message: str,
                retry_after_s: Optional[float] = None) -> ServeRejected:
        self.registry.counter("serve_rejected", "rejected submissions "
                              "by reason", reason=kind).inc()
        return ServeRejected(status, kind, message,
                             retry_after_s=retry_after_s)

    def _parse_spec(self, spec: Any) -> List[Job]:
        if not self.config.allow_files:
            entries = spec.get("jobs") if isinstance(spec, dict) else spec
            for entry in entries or ():
                if isinstance(entry, dict) and "file" in entry:
                    raise self._reject(
                        400, "invalid_spec",
                        "file job entries are disabled on this server "
                        "(inline 'c'/'asm'/'workload' entries only)")
        try:
            return jobs_from_spec(spec,
                                  base_dir=self.config.spec_base_dir)
        except ReproError as exc:
            raise self._reject(400, "invalid_spec", str(exc)) from None

    def submit_spec(self, spec: Any,
                    tenant: str = "default") -> Tuple[int, Dict[str, Any]]:
        """Admit one job-spec payload for *tenant*.

        Runs synchronously on the loop — no await between validation
        and commit, so admission is atomic (a rejection leaves no
        partial state).  Returns ``(http_status, response_payload)``;
        raises :class:`ServeRejected` with a structured reason
        otherwise.
        """
        if self.draining:
            raise self._reject(503, "draining",
                               "server is shutting down")
        jobs = self._parse_spec(spec)
        granted, retry_after = self.quotas.try_acquire(tenant,
                                                       cost=len(jobs))
        if not granted:
            raise self._reject(
                429, "quota",
                "tenant %r exceeded its job quota (%d jobs requested)"
                % (tenant, len(jobs)),
                retry_after_s=retry_after)
        # plan the whole spec before committing anything: dispositions
        # are (payload, tier) for cache hits, "coalesce" for keys
        # already in flight (or duplicated within this very spec), and
        # "new" for keys that need an execution
        plan: List[Tuple[Job, str, str,
                         Optional[Dict[str, Any]], Optional[str]]] = []
        new_keys: List[str] = []
        spec_keys: set = set()
        for job in jobs:
            key = job.key()
            payload, tier = self.store.get(key)
            if payload is not None:
                plan.append((job, key, "cached", payload, tier))
            elif key in self._inflight or key in spec_keys:
                plan.append((job, key, "coalesce", None, None))
            else:
                plan.append((job, key, "new", None, None))
                spec_keys.add(key)
                new_keys.append(key)
        if self._queue.qsize() + len(new_keys) > self.config.queue_limit:
            self.quotas.refund(tenant, len(jobs))
            raise self._reject(
                429, "backpressure",
                "job queue is full (%d queued, limit %d)"
                % (self._queue.qsize(), self.config.queue_limit),
                retry_after_s=self.config.retry_after_s)
        # commit
        out: List[Dict[str, Any]] = []
        for job, key, disposition, payload, tier in plan:
            record = JobRecord(self._next_record_id(), key, tenant,
                               job.job_id)
            self.records[record.record_id] = record
            record.push("submitted", tenant=tenant)
            if disposition == "cached":
                record.status = CACHED
                record.cache_tier = tier
                record.wall_s = 0.0
                record.push("cache_hit", tier=tier)
                self._count_job(CACHED)
                self.registry.counter(
                    "serve_cache_requests", "tiered lookups by result",
                    tier=str(tier)).inc()
            elif disposition == "coalesce":
                inflight = self._inflight[key]
                record.coalesced = True
                record.status = inflight.records[0].status
                inflight.records.append(record)
                record.push("coalesced",
                            onto=inflight.records[0].record_id)
                self.registry.counter(
                    "serve_coalesced",
                    "submits attached to an in-flight execution").inc()
                self.registry.counter(
                    "serve_cache_requests", "tiered lookups by result",
                    tier="miss").inc()
            else:
                self._inflight[key] = _Inflight(job, [record])
                self._queue.put_nowait(key)
                record.push("queued", depth=self._queue.qsize())
                self.registry.counter(
                    "serve_cache_requests", "tiered lookups by result",
                    tier="miss").inc()
            out.append(record.to_json_dict())
        self._evict_records()
        status = 200 if all(r["status"] in TERMINAL_STATES
                            for r in out) else 202
        return status, {"schema_version": SERVE_SCHEMA_VERSION,
                        "tenant": tenant, "jobs": out}

    def _evict_records(self) -> None:
        """Drop the oldest *terminal* records past ``record_limit`` so
        the status table cannot grow without bound."""
        excess = len(self.records) - self.config.record_limit
        if excess <= 0:
            return
        for record_id in [rid for rid, rec in self.records.items()
                          if rec.terminal][:excess]:
            del self.records[record_id]

    # -- dispatch --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            key = await self._queue.get()
            if key is None or self.draining:
                return
            inflight = self._inflight.get(key)
            if inflight is None:            # cancelled while queued
                continue
            await self._execute(key, inflight)

    async def _execute(self, key: str, inflight: _Inflight) -> None:
        assert self.pool is not None
        self._running_keys.add(key)
        for record in inflight.records:
            record.status = RUNNING
            record.push("running")
        try:
            raw: WorkerResult = await self.pool.run_job(inflight.job)
        except asyncio.CancelledError:
            self._running_keys.discard(key)
            raise
        except Exception as exc:            # noqa: BLE001 — infra failure
            raw = (FAILED, "worker pool error: %r" % (exc,),
                   0.0, {}, 0.0, 0.0)
        self._running_keys.discard(key)
        # inflight.records may have grown while the job ran (coalesced
        # attaches) — resolve whatever is there now, then unpublish the
        # key so later submits hit the cache instead
        del self._inflight[key]
        status, value, wall, _phases, _t_in, _t_out = raw
        if status == OK:
            self.store.put(key, value)
            self.registry.counter(
                "serve_executions", "simulations actually run").inc()
            self.registry.histogram(
                "serve_job_wall_seconds", _WALL_BOUNDS,
                "per-execution wall").observe(wall)
            for record in inflight.records:
                record.status = DONE
                record.wall_s = wall
                record.push("done", wall_s=round(wall, 6))
                self._count_job(DONE)
        else:
            for record in inflight.records:
                record.status = FAILED_STATE
                record.error = str(value)
                record.push("failed", error=record.error)
                self._count_job(FAILED_STATE)

    # -- queries ---------------------------------------------------------

    def record(self, record_id: str) -> Optional[JobRecord]:
        return self.records.get(record_id)

    def result(self, key: str) -> Tuple[Optional[Dict[str, Any]],
                                        Optional[str]]:
        payload, tier = self.store.get(key)
        if payload is not None:
            self.registry.counter(
                "serve_cache_requests", "tiered lookups by result",
                tier=str(tier)).inc()
        return payload, tier

    def observe_http(self, route: str, status: int) -> None:
        self.registry.counter("serve_http_requests",
                              "HTTP requests by route and status",
                              route=route, status=str(status)).inc()

    def healthz(self) -> Dict[str, Any]:
        by_status: Dict[str, int] = {}
        for record in self.records.values():
            by_status[record.status] = by_status.get(record.status, 0) + 1
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "uptime_s": round(time.time() - self._started_at, 3),
            "pool_size": self.config.pool_size,
            "queue_depth": self._queue.qsize(),
            "running": len(self._running_keys),
            "jobs": by_status,
            "cache": self.store.stats(),
            "tenants": self.quotas.tenants(),
        }

    def render_metrics(self) -> str:
        """Prometheus text exposition of the daemon's host-domain
        instruments, with point-in-time gauges refreshed at scrape."""
        stats = self.store.stats()
        healed_delta = stats["healed"] - self._healed_exported
        if healed_delta > 0:
            self._healed_exported = stats["healed"]
        self.registry.counter(
            "serve_cache_healed",
            "poisoned disk entries healed fail-open").inc(
                max(0, healed_delta))
        self.registry.gauge("serve_queue_depth",
                            "jobs waiting for a worker").set(
                                self._queue.qsize())
        self.registry.gauge("serve_running",
                            "executions in flight").set(
                                len(self._running_keys))
        self.registry.gauge("serve_lru_entries",
                            "hot-tier entries").set(stats["lru_entries"])
        self.registry.gauge("serve_records",
                            "job records held").set(len(self.records))
        return self.registry.render_prometheus()
