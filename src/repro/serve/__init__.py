"""repro.serve — simulation-as-a-service daemon (``repro serve``).

A stdlib-only asyncio HTTP server layered on the batch engine
(:mod:`repro.runner`): submitted job specs are validated with the same
``jobs_from_spec`` pipeline as ``repro batch``, executed in the same
worker pool through the same worker function, and cached under the same
content addresses — so a payload served by the daemon is bit-identical
to one computed locally.

The interesting machinery (see DESIGN.md §4.14):

* **request coalescing** — concurrent submissions of the same job key
  share one execution (:mod:`repro.serve.daemon`);
* **two-level cache** — a sharded in-process LRU over the on-disk
  content-addressed cache (:mod:`repro.serve.lru`,
  :mod:`repro.serve.store`);
* **per-tenant quotas** — token buckets with honest ``Retry-After``
  hints (:mod:`repro.serve.quota`);
* **backpressure + graceful drain** — a bounded queue that 429s when
  full, and a shutdown path that finishes running jobs and cleanly
  fails queued ones.
"""

from .daemon import (
    CACHED,
    CANCELLED,
    DONE,
    FAILED_STATE,
    JobRecord,
    QUEUED,
    RUNNING,
    SERVE_SCHEMA_VERSION,
    ServeConfig,
    ServeRejected,
    SimServer,
    TERMINAL_STATES,
)
from .client import DaemonThread, ServeClient, ServeError
from .http import HttpFrontend, run_server, serve_forever
from .lru import ByteBudgetLRU, ShardedLRU
from .quota import QuotaManager, TokenBucket
from .store import DISK_TIER, LRU_TIER, TieredResultStore

__all__ = [
    "ByteBudgetLRU",
    "CACHED", "CANCELLED", "DISK_TIER", "DONE", "DaemonThread",
    "FAILED_STATE", "HttpFrontend", "JobRecord", "LRU_TIER", "QUEUED",
    "QuotaManager", "RUNNING", "SERVE_SCHEMA_VERSION", "ServeClient",
    "ServeConfig", "ServeError", "ServeRejected", "ShardedLRU",
    "SimServer", "TERMINAL_STATES", "TieredResultStore", "TokenBucket",
    "run_server", "serve_forever",
]
