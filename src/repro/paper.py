"""The paper's running example, verbatim: the ``sum`` vector reduction.

Two program builders are exported:

* :func:`sum_sequential_program` — Figure 2's x86 code (call/ret, stack
  saves), wrapped in a tiny ``main`` that loads the arguments, calls ``sum``
  and emits the result with ``out``.
* :func:`sum_forked_program` — Figure 5's fork/endfork version, wrapped in a
  ``main`` that forks ``sum``; the resume path consumes the final value (the
  paper: "the instruction consuming the final sum to be displayed receives
  its source from instruction 5-1").

Both run on any array length (the paper uses 5·2ⁿ elements for its
analytical evaluation; see :mod:`repro.analytic`).
"""

from __future__ import annotations

from typing import Sequence

from .isa import Program, assemble

#: Figure 2 — the sum function in x86 (gas syntax; rightmost operand is the
#: destination).  Labels match the paper's listing.
SUM_SEQUENTIAL_ASM = """
main:
    movq $tab, %rdi         # rdi = t
    movq n, %rsi            # rsi = n
    call sum
    out %rax
    hlt
sum:                        # sum(t, n)
    cmpq $2, %rsi           # n ? 2
    ja .L2                  # if (n > 2) goto .L2
    movq (%rdi), %rax       # rax = t[0]
    jne .L1                 # if (n != 2) goto .L1
    addq 8(%rdi), %rax      # rax += t[1]
.L1:
    ret                     # return rax
.L2:
    pushq %rbx              # save rbx
    pushq %rdi              # save t
    pushq %rsi              # save n
    shrq %rsi               # rsi = n/2
    call sum                # sum(t, n/2)
    popq %rbx               # rbx = n
    pushq %rbx              # save n
    subq $8, %rsp           # allocate temp
    movq %rax, 0(%rsp)      # temp = sum(t, n/2)
    leaq (%rdi,%rsi,8), %rdi  # rdi = &t[n/2]
    subq %rsi, %rbx         # rbx = n - n/2
    movq %rbx, %rsi         # rsi = n - n/2
    call sum                # sum(&t[n/2], n - n/2)
    addq 0(%rsp), %rax      # rax += temp
    addq $8, %rsp           # free temp
    popq %rsi               # restore rsi (n)
    popq %rdi               # restore rdi (t)
    popq %rbx               # restore rbx
    ret                     # return rax
"""

#: Figure 5 — the sum function modified by fork instructions.  Note what the
#: transformation removed: the callee-save push/pop pairs (fork copies the
#: non-volatile registers), the return-address traffic (fork saves none) and
#: the save/restore of n (now a register move before the fork).
SUM_FORKED_ASM = """
main:
    movq $tab, %rdi         # rdi = t
    movq n, %rsi            # rsi = n
    fork sum
    out %rax                # consumes the final sum via renaming
    endfork
sum:                        # sum(t, n)
    cmpq $2, %rsi           # n ? 2
    ja .L2                  # if (n > 2) goto .L2
    movq (%rdi), %rax       # rax = t[0]
    jne .L1                 # if (n != 2) goto .L1
    addq 8(%rdi), %rax      # rax += t[1]
.L1:
    endfork                 # return rax
.L2:
    movq %rsi, %rbx         # rbx = n
    shrq %rsi               # rsi = n/2
    fork sum                # sum(t, n/2)
    subq $8, %rsp           # allocate temp
    movq %rax, 0(%rsp)      # temp = sum(t, n/2)
    leaq (%rdi,%rsi,8), %rdi  # rdi = &t[n/2]
    subq %rsi, %rbx         # rbx = n - n/2
    movq %rbx, %rsi         # rsi = n - n/2
    fork sum                # sum(&t[n/2], n - n/2)
    addq 0(%rsp), %rax      # rax += temp
    addq $8, %rsp           # free temp
    endfork                 # return rax
"""

_DATA_TEMPLATE = """
.data
n:   .quad %d
tab: .quad %s
"""


def _with_data(asm: str, values: Sequence[int]) -> str:
    if not values:
        raise ValueError("sum needs at least one element")
    words = ", ".join(str(int(v)) for v in values)
    return asm + _DATA_TEMPLATE % (len(values), words)


def sum_sequential_program(values: Sequence[int]) -> Program:
    """Figure 2's program, summing *values* (any length >= 1)."""
    return assemble(_with_data(SUM_SEQUENTIAL_ASM, values))


def sum_forked_program(values: Sequence[int]) -> Program:
    """Figure 5's program, summing *values* (any length >= 1)."""
    return assemble(_with_data(SUM_FORKED_ASM, values))


def paper_array(n: int = 5) -> list:
    """The canonical test array t[0..n-1] = 1..n (sum = n(n+1)/2)."""
    return list(range(1, n + 1))
