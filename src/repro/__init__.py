"""repro — reproduction of *Toward a Core Design to Distribute an Execution
on a Many-Core Processor* (Goossens, Parello, Porada, Rahmoune; PaCT 2015).

Subsystem map (see DESIGN.md for the full inventory):

* :mod:`repro.isa`       — toy x86-64 subset + ``fork``/``endfork``, assembler
* :mod:`repro.machine`   — sequential and forked (section) functional machines
* :mod:`repro.minic`     — the MiniC compiler (the paper's "unchanged C programs")
* :mod:`repro.fork`      — the call→fork program transformation (Fig. 2 → Fig. 5)
* :mod:`repro.ilp`       — trace ILP limit study (Fig. 7 models + Wall models)
* :mod:`repro.sim`       — cycle-level distributed many-core simulator (Fig. 8-10)
* :mod:`repro.workloads` — the ten Table 1 PBBS benchmarks in MiniC
* :mod:`repro.analytic`  — Section 5 closed-form model of the sum reduction
* :mod:`repro.paper`     — the paper's Figure 2 / Figure 5 listings, runnable
* :mod:`repro.runner`    — parallel batch engine + content-addressed cache
* :mod:`repro.snapshot`  — full-state snapshot/restore (time travel, warm
  chaos-grid forks)
* :mod:`repro.api`       — the **stable facade**; subpackage internals are
  not a stability contract, this module is

Thirty-second tour::

    from repro import (assemble, run_sequential, run_forked, simulate,
                       SimConfig, analyze, SEQUENTIAL_MODEL, PARALLEL_MODEL)
    from repro.paper import sum_forked_program, paper_array

    prog = sum_forked_program(paper_array(5))
    result, machine = run_forked(prog)          # functional section semantics
    sim, proc = simulate(prog, SimConfig(n_cores=5))
    print(proc.timing_table())                  # the paper's Figure 10
"""

from .errors import (
    AssemblerError,
    CompileError,
    ExecutionError,
    ReproError,
    SimulationError,
)
from .ilp import (
    DependencyModel,
    ILPResult,
    PARALLEL_MODEL,
    SEQUENTIAL_MODEL,
    analyze,
    wall_good_model,
    wall_perfect_model,
)
from .isa import Instruction, Program, assemble
from .machine import (
    ForkedMachine,
    RunResult,
    SequentialMachine,
    Trace,
    TraceEntry,
    run_forked,
    run_sequential,
)
from .minic import compile_source, compile_to_asm
from .fork import fork_transform, render_section_trace, render_section_tree
from .sim import Processor, SimConfig, SimResult, simulate
from .runner import BatchReport, Job, ResultCache, run_batch
from .snapshot import (SNAPSHOT_SCHEMA_VERSION, Snapshot, SnapshotError,
                       capture_prefix, resume)
from . import api

#: fallback when the distribution is not installed (e.g. a bare
#: ``PYTHONPATH=src`` checkout); keep in sync with pyproject.toml
_FALLBACK_VERSION = "1.0.0"


def _detect_version() -> str:
    """Single-source the version from the installed package metadata
    (pyproject.toml), falling back to the pinned constant on a plain
    source checkout.  ``repro --version`` and the serve daemon's
    ``/healthz`` payload both report this value."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:                               # pragma: no cover
        return _FALLBACK_VERSION
    try:
        return version("repro")
    except PackageNotFoundError:
        return _FALLBACK_VERSION


__version__ = _detect_version()

__all__ = [
    "AssemblerError", "BatchReport", "CompileError", "DependencyModel",
    "ExecutionError", "ForkedMachine", "ILPResult", "Instruction", "Job",
    "PARALLEL_MODEL", "Processor", "Program", "ReproError", "ResultCache",
    "RunResult", "SEQUENTIAL_MODEL", "SNAPSHOT_SCHEMA_VERSION",
    "SequentialMachine", "SimConfig", "SimResult", "SimulationError",
    "Snapshot", "SnapshotError", "Trace", "TraceEntry", "analyze",
    "api", "assemble", "capture_prefix", "compile_source",
    "compile_to_asm", "fork_transform", "render_section_trace",
    "render_section_tree", "resume", "run_batch", "run_forked",
    "run_sequential", "simulate", "wall_good_model",
    "wall_perfect_model",
]
