"""Parallel batch-execution engine with content-addressed result caching.

The substrate every multi-config driver runs on (``repro batch``, the
chaos sweep, the benchmark grids, the regression gate)::

    from repro.runner import Job, ResultCache, run_batch
    from repro.sim import SimConfig

    jobs = [Job.from_program(prog, SimConfig(n_cores=n), job_id="n%d" % n)
            for n in (1, 8, 32)]
    report = run_batch(jobs, pool_size=4,
                       cache=ResultCache(".repro-cache"))
    print(report.summary())            # "3 jobs: 3 executed, 0 cached..."
    cycles = [p["cycles"] for p in report.payloads()]

A job's cache key is the sha256 of its canonical serialization (program
listing + ``SimConfig.to_dict`` + requested outputs), so unchanged jobs
are served from cache byte-identically; see :mod:`repro.runner.job`.
"""

from .cache import ResultCache
from .engine import (BatchReport, JobOutcome, WorkerPool, execute_job,
                     run_batch, run_batch_async)
from .job import Job, SCHEMA_VERSION
from .spec import job_from_entry, jobs_from_spec

__all__ = [
    "BatchReport", "Job", "JobOutcome", "ResultCache", "SCHEMA_VERSION",
    "WorkerPool", "execute_job", "job_from_entry", "jobs_from_spec",
    "run_batch", "run_batch_async",
]
