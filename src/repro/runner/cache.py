"""Content-addressed on-disk result cache.

Entries live at ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps
directories small on big sweeps) and wrap the payload in an envelope::

    {"schema": SCHEMA_VERSION, "key": "<sha256>", "payload": {...}}

A second, binary tier holds content-addressed blobs (snapshot envelopes)
at ``<root>/blobs/<key[:2]>/<key>.bin``, keyed by the sha256 of the bytes
themselves.

Reads are **fail-open**: anything suspicious — unreadable file, invalid
JSON, a non-dict envelope, a stale schema version, a stored key that does
not match the requested one — is treated as a miss, so a poisoned entry
is recomputed rather than served.  Writes are atomic (temp file +
``os.replace`` in the same directory), so a crashed or concurrent writer
can leave at worst a stale temp file, never a torn entry.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .job import SCHEMA_VERSION

#: distinguishes temp files written by different handles in one process
#: (two threads, or a handle per server) so concurrent same-key writers
#: can never collide on the temp path even with equal pids
_PUT_COUNTER = itertools.count()


class ResultCache:
    """Directory-backed map from job content address to result payload."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: host-domain telemetry over this handle's lifetime: ``hits``,
        #: ``misses`` (no file), ``healed`` (a file existed but was
        #: poisoned — corrupt JSON, stale schema, key mismatch — and will
        #: be recomputed).  Surfaced by ``repro batch`` summaries; never
        #: part of cached payloads.
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0, "healed": 0}
        #: same counters for the binary blob tier (snapshots); kept
        #: separate because blob traffic would otherwise swamp the job
        #: hit-rate the batch summaries report
        self.blob_stats: Dict[str, int] = {"hits": 0, "misses": 0,
                                           "healed": 0}

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / (key + ".json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for *key*, or None on miss/poison."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats["misses"] += 1
            return None
        try:
            entry: Any = json.loads(text)
        except ValueError:
            entry = None
        payload = entry.get("payload") if isinstance(entry, dict) else None
        if (not isinstance(entry, dict)
                or entry.get("schema") != SCHEMA_VERSION
                or entry.get("key") != key
                or not isinstance(payload, dict)):
            self.stats["healed"] += 1
            return None
        self.stats["hits"] += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically store *payload* under *key*; returns the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {"schema": SCHEMA_VERSION, "key": key,
                    "payload": payload}
        tmp = path.parent / (".%s.tmp.%d.%d"
                             % (key, os.getpid(), next(_PUT_COUNTER)))
        try:
            tmp.write_text(json.dumps(envelope, sort_keys=True) + "\n")
            os.replace(tmp, path)
        except OSError:
            # a failed write (full disk, revoked permissions) must not
            # leave a stale temp file accumulating next to the entries
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        return path

    # -- blob tier (repro.snapshot) -----------------------------------
    #
    # Binary payloads (snapshot envelopes) live beside the JSON entries
    # under <root>/blobs/<key[:2]>/<key>.bin, keyed by the sha256 of
    # exactly the stored bytes.  Content addressing makes integrity
    # checking free (re-hash on read) and writes idempotent; the JSON
    # tier's fail-open and atomic-write disciplines carry over verbatim.

    def blob_path(self, key: str) -> Path:
        return self.root / "blobs" / key[:2] / (key + ".bin")

    def put_blob(self, data: bytes) -> str:
        """Store *data* content-addressed; returns its sha256 key."""
        import hashlib
        key = hashlib.sha256(data).hexdigest()
        path = self.blob_path(key)
        if path.exists():       # content-addressed: identical by design
            return key
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (".%s.tmp.%d.%d"
                             % (key, os.getpid(), next(_PUT_COUNTER)))
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        return key

    def get_blob(self, key: str) -> Optional[bytes]:
        """The blob stored under *key*, or None on miss or corruption
        (digest mismatch heals as a miss, same as the JSON tier)."""
        import hashlib
        try:
            data = self.blob_path(key).read_bytes()
        except OSError:
            self.blob_stats["misses"] += 1
            return None
        if hashlib.sha256(data).hexdigest() != key:
            self.blob_stats["healed"] += 1
            return None
        self.blob_stats["hits"] += 1
        return data

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
