"""The batch-execution engine: a worker pool over simulation jobs, with
content-addressed memoization.

Execution contract:

* **determinism** — a job's payload is a pure function of its canonical
  form.  Serial execution, a pool of any size, and a cache hit all
  produce the same JSON-normalized payload (the pool only changes *who*
  computes, never *what*); ``tests/runner/test_determinism.py`` holds
  every Table 1 workload to this bit-for-bit.
* **failure isolation** — one job raising (bad program, config rejected,
  simulation error) marks that outcome ``failed`` with the error text
  and leaves every other job untouched.  Worker crashes cannot poison
  the cache: only successful payloads are stored.
* **memoization** — with a :class:`~repro.runner.cache.ResultCache`
  attached, jobs whose key has a valid entry are served without
  executing anything; everything recomputed is written back.  A warm
  second run of an unchanged sweep therefore executes zero simulations.
* **telemetry separation** — per-job phase timings, cache counters and
  the pool-utilization timeline are *host-domain* metrics
  (:mod:`repro.obs.metrics`): they ride only under ``timing=True``
  exports, so the timing-free differential report — and every cached
  payload — stays free of wall-clock noise.

The per-job result payload is ``SimResult.to_json_dict(...)`` (shaped by
the job's include flags) plus ``memory_digest`` — enough for every sweep
to verify architectural identity without shipping full memory images.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import multiprocessing.pool
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..obs.metrics import HOST_DOMAIN, MetricsRegistry
from .cache import ResultCache
from .job import Job

#: outcome states
OK, CACHED, FAILED = "ok", "cached", "failed"

#: execution phases timed per job, in pipeline order
PHASES = ("assemble_s", "simulate_s", "export_s")

#: wall-clock histogram bounds for per-job execution time, seconds
_WALL_BOUNDS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0)

#: resolution of the pool-utilization timeline
_TIMELINE_BUCKETS = 20


def execute_job_timed(job: Job) -> Tuple[Dict[str, Any], Dict[str, float]]:
    """Run one job to ``(payload, phase walls)`` (no cache, no isolation).

    The payload is normalized through a JSON round-trip so that fresh
    and cache-served results are indistinguishable (tuples become lists,
    int keys become strings) and comparisons are representation-free.
    Phase walls time the job's pipeline stages (program assembly,
    simulation, payload export+normalization) — host-domain telemetry
    that never enters the payload itself.
    """
    import json

    from ..faults.sweep import memory_digest
    from ..sim.processor import simulate

    t0 = time.perf_counter()
    program = job.program()
    t1 = time.perf_counter()
    result, _ = simulate(program, job.config)
    t2 = time.perf_counter()
    payload = result.to_json_dict(include_memory=job.include_memory,
                                  include_trace=job.include_trace,
                                  include_events=job.include_events)
    payload["memory_digest"] = memory_digest(result.final_memory)
    normalized: Dict[str, Any] = json.loads(json.dumps(payload,
                                                       sort_keys=True))
    t3 = time.perf_counter()
    phases = {"assemble_s": t1 - t0, "simulate_s": t2 - t1,
              "export_s": t3 - t2}
    return normalized, phases


def execute_job(job: Job) -> Dict[str, Any]:
    """Run one job to its result payload (no cache, no isolation)."""
    return execute_job_timed(job)[0]


#: wire format of one worker result:
#: (status, value, wall_s, phases, start_ts, end_ts) — the timestamps
#: are ``time.perf_counter()`` readings, comparable across processes on
#: every supported platform (monotonic system-wide clocks)
WorkerResult = Tuple[str, Any, float, Dict[str, float], float, float]


def _pool_worker(wire: Dict[str, Any]) -> WorkerResult:
    """Top-level (picklable) worker: wire dict -> WorkerResult."""
    start = time.perf_counter()
    try:
        payload, phases = execute_job_timed(Job.from_wire(wire))
        end = time.perf_counter()
        return OK, payload, end - start, phases, start, end
    except ReproError as exc:
        end = time.perf_counter()
        return FAILED, str(exc), end - start, {}, start, end
    except Exception:                                  # noqa: BLE001
        end = time.perf_counter()
        return FAILED, traceback.format_exc(limit=8), end - start, {}, \
            start, end


@dataclass
class JobOutcome:
    """What happened to one job of a batch."""

    job_id: str
    key: str
    status: str                        #: "ok" | "cached" | "failed"
    wall_s: float                      #: execution wall (0 for cached)
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: per-phase execution walls (PHASES keys); None for cached jobs
    phases: Optional[Dict[str, float]] = None
    #: (start, end) offsets into the batch wall, seconds — feeds the
    #: pool-utilization timeline; None for cached jobs
    span: Optional[Tuple[float, float]] = None

    def to_json_dict(self, timing: bool = True) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"job_id": self.job_id, "key": self.key,
                                 "status": self.status}
        if timing:
            entry["wall_s"] = self.wall_s
            if self.phases is not None:
                entry["phases"] = self.phases
        if self.error is not None:
            entry["error"] = self.error
        if self.payload is not None:
            entry["payload"] = self.payload
        return entry


def _pool_timeline(spans: Sequence[Tuple[float, float]],
                   wall_s: float) -> Dict[str, Any]:
    """Worker-pool concurrency over the batch wall: how many jobs were
    executing during each of ``_TIMELINE_BUCKETS`` equal slices."""
    if not spans or wall_s <= 0:
        return {"bucket_s": 0.0, "concurrency": []}
    n = _TIMELINE_BUCKETS
    bucket = wall_s / n
    concurrency = [0] * n
    for s, e in spans:
        first = max(0, min(n - 1, int(s / bucket)))
        last = max(first, min(n - 1, int(max(s, e - 1e-9) / bucket)))
        for b in range(first, last + 1):
            concurrency[b] += 1
    return {"bucket_s": bucket, "concurrency": concurrency}


def build_host_metrics(outcomes: Sequence[JobOutcome], pool_size: int,
                       wall_s: float,
                       cache_stats: Optional[Dict[str, int]],
                       ) -> Dict[str, Any]:
    """Fold a finished batch into the host-domain metrics export: job
    counters by outcome, a wall-clock histogram, per-phase totals, cache
    counters and the pool-utilization timeline."""
    reg = MetricsRegistry(HOST_DOMAIN)
    for outcome in outcomes:
        reg.counter("batch_jobs", "jobs by outcome",
                    status=outcome.status).inc()
    walls = reg.histogram("batch_job_wall_seconds", _WALL_BOUNDS,
                          "per-job execution wall")
    for outcome in outcomes:
        if outcome.status == OK:
            walls.observe(outcome.wall_s)
        if outcome.phases:
            for phase in PHASES:
                reg.gauge("batch_phase_seconds", "summed phase wall",
                          phase=phase).add(outcome.phases.get(phase, 0.0))
    if cache_stats is not None:
        for status in ("hits", "misses", "healed"):
            reg.counter("batch_cache_requests", "cache lookups by result",
                        status=status).inc(cache_stats.get(status, 0))
    reg.gauge("batch_pool_size", "worker processes").set(pool_size)
    reg.gauge("batch_wall_seconds", "whole-batch wall").set(wall_s)
    payload = reg.to_json_dict()
    payload["pool"] = _pool_timeline(
        [o.span for o in outcomes if o.span is not None], wall_s)
    return payload


@dataclass
class BatchReport:
    """Aggregate outcome of one :func:`run_batch` call, in job order."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    pool_size: int = 1
    cache_dir: Optional[str] = None
    wall_s: float = 0.0
    #: cache hit/miss/heal counters for this batch's lookups; None when
    #: no cache was attached
    cache_stats: Optional[Dict[str, int]] = None
    #: host-domain metrics export (:func:`build_host_metrics`); timing
    #: data, so exported only under ``timing=True``
    host_metrics: Optional[Dict[str, Any]] = None

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == OK)

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.status == CACHED)

    @property
    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if o.status == FAILED]

    @property
    def ok(self) -> bool:
        return not self.failures

    def payloads(self) -> List[Optional[Dict[str, Any]]]:
        """Result payloads in job order (None where a job failed)."""
        return [o.payload for o in self.outcomes]

    def summary(self) -> str:
        line = ("%d jobs: %d executed, %d cached, %d failed "
                "(pool=%d) in %.2fs"
                % (len(self.outcomes), self.executed, self.cache_hits,
                   len(self.failures), self.pool_size, self.wall_s))
        if self.cache_stats is not None:
            line += (" | cache: %d hit, %d miss, %d healed"
                     % (self.cache_stats.get("hits", 0),
                        self.cache_stats.get("misses", 0),
                        self.cache_stats.get("healed", 0)))
        return line

    def to_json_dict(self, timing: bool = True) -> Dict[str, Any]:
        """Machine-readable report.  ``timing=False`` drops wall clocks
        and all host-domain telemetry, leaving only deterministic fields
        — byte-identical across runs and machines, which is what
        differential tests compare."""
        payload: Dict[str, Any] = {
            "jobs": len(self.outcomes),
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failed": len(self.failures),
            "pool_size": self.pool_size,
            "cache_dir": self.cache_dir,
            "outcomes": [o.to_json_dict(timing=timing)
                         for o in self.outcomes],
        }
        if timing:
            payload["wall_s"] = self.wall_s
            if self.cache_stats is not None:
                payload["cache"] = self.cache_stats
            if self.host_metrics is not None:
                payload["host_metrics"] = self.host_metrics
        if not timing:
            payload.pop("pool_size")
            payload.pop("cache_dir")
        return payload


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, no re-import) where the platform offers it."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _executed_outcome(job: Job, key: str, raw: WorkerResult,
                      start: float,
                      cache: Optional[ResultCache]) -> JobOutcome:
    """Fold one worker's wire result into a settled :class:`JobOutcome`
    (writing successes back to *cache*) — shared by the synchronous
    batch path and the awaitable one so both produce identical
    outcomes."""
    status, value, wall, phases, t_in, t_out = raw
    span = (max(0.0, t_in - start), max(0.0, t_out - start))
    if status == OK:
        if cache is not None:
            cache.put(key, value)
        return JobOutcome(job.job_id, key, OK, wall, payload=value,
                          phases=phases, span=span)
    return JobOutcome(job.job_id, key, FAILED, wall, error=value,
                      phases=phases or None, span=span)


def _future_settle(future: "asyncio.Future[WorkerResult]",
                   result: Optional[WorkerResult],
                   exc: Optional[BaseException]) -> None:
    """Resolve *future* from the pool's result-handler thread callback
    (already marshalled onto the loop via ``call_soon_threadsafe``)."""
    if future.cancelled():
        return
    if exc is not None:
        future.set_exception(exc)
    else:
        assert result is not None
        future.set_result(result)


class WorkerPool:
    """A persistent worker-process pool with an awaitable per-job entry
    point.

    :func:`run_batch` spins a pool up and down per call, which is right
    for one-shot sweeps but wrong for a long-lived server: the serve
    daemon (:mod:`repro.serve`) needs a pool that outlives any single
    request and can interleave jobs from many clients without blocking
    the event loop.  Jobs execute through the same :func:`_pool_worker`
    the batch engine uses, so daemon-served payloads are bit-identical
    to ``repro batch`` output — the property the daemon-vs-engine
    differential test pins down.

    ``run_job`` is safe to call concurrently from one event loop; the
    pool's internal result-handler thread marshals completions back onto
    the loop with ``call_soon_threadsafe``.
    """

    def __init__(self, pool_size: Optional[int] = None) -> None:
        self.pool_size = max(1, pool_size or 1)
        self._pool: multiprocessing.pool.Pool = \
            _pool_context().Pool(self.pool_size)
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    async def run_job(self, job: Job) -> WorkerResult:
        """Execute *job* in a worker process; awaitable and off-loop.

        Returns the raw :data:`WorkerResult` wire tuple — failures are
        carried in-band as ``("failed", error_text, ...)`` exactly like
        the batch path, so callers get the engine's failure-isolation
        contract for free.  Raises only on infrastructure errors (a job
        that cannot be pickled, a closed pool).
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[WorkerResult]" = loop.create_future()
        self._pool.apply_async(
            _pool_worker, (job.to_wire(),),
            callback=lambda raw: loop.call_soon_threadsafe(
                _future_settle, future, raw, None),
            error_callback=lambda exc: loop.call_soon_threadsafe(
                _future_settle, future, None, exc))
        return await future

    def close(self) -> None:
        """Stop accepting work and reap the workers (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.close()
            self._pool.join()

    def terminate(self) -> None:
        """Kill the workers without draining (shutdown fast path)."""
        if not self._closed:
            self._closed = True
            self._pool.terminate()
            self._pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


async def run_batch_async(jobs: Sequence[Job],
                          pool: Optional[WorkerPool] = None,
                          pool_size: Optional[int] = None,
                          cache: Optional[ResultCache] = None,
                          on_outcome: Optional[
                              Callable[[JobOutcome], None]] = None,
                          ) -> BatchReport:
    """Awaitable :func:`run_batch`: identical outcome semantics, but
    execution happens on a persistent :class:`WorkerPool` so an event
    loop (the serve daemon) can interleave batches with other work.

    Pass a shared *pool* to reuse a long-lived daemon pool, or omit it
    to spin a private one sized *pool_size* for this call.  Cache hits
    settle first (in job order), then executions settle as they finish;
    the report is ordered by job exactly like the synchronous path.
    """
    start = time.perf_counter()
    own_pool = pool is None
    if pool is None:
        pool = WorkerPool(pool_size)
    report = BatchReport(pool_size=pool.pool_size,
                         cache_dir=str(cache.root) if cache else None)
    cache_before = dict(cache.stats) if cache is not None else None
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

    def settle(index: int, outcome: JobOutcome) -> None:
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    pending: List[Tuple[int, Job, str]] = []
    for index, job in enumerate(jobs):
        key = job.key()
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            settle(index, JobOutcome(job.job_id, key, CACHED, 0.0,
                                     payload=hit))
        else:
            pending.append((index, job, key))

    try:
        if pending:
            raws = await asyncio.gather(
                *(pool.run_job(job) for _, job, _ in pending))
            for (index, job, key), raw in zip(pending, raws):
                settle(index, _executed_outcome(job, key, raw, start,
                                                cache))
    finally:
        if own_pool:
            pool.close()

    report.outcomes = [o for o in outcomes if o is not None]
    report.wall_s = time.perf_counter() - start
    if cache is not None and cache_before is not None:
        report.cache_stats = {name: cache.stats[name] - cache_before[name]
                              for name in cache.stats}
    report.host_metrics = build_host_metrics(
        report.outcomes, report.pool_size, report.wall_s,
        report.cache_stats)
    return report


def run_batch(jobs: Sequence[Job], pool_size: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              on_outcome: Optional[Callable[[JobOutcome], None]] = None,
              ) -> BatchReport:
    """Run *jobs*, fanning execution over *pool_size* worker processes.

    ``pool_size`` of None/0/1 runs serially in-process (the reference
    path the pool is tested against).  With a *cache*, valid entries are
    served without execution and fresh results are written back.
    *on_outcome* is called once per job, in job order, as outcomes
    settle (cache hits first, then executions).
    """
    start = time.perf_counter()
    report = BatchReport(pool_size=max(1, pool_size or 1),
                         cache_dir=str(cache.root) if cache else None)
    cache_before = dict(cache.stats) if cache is not None else None
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

    def settle(index: int, outcome: JobOutcome) -> None:
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    pending: List[Tuple[int, Job, str]] = []
    for index, job in enumerate(jobs):
        key = job.key()
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            settle(index, JobOutcome(job.job_id, key, CACHED, 0.0,
                                     payload=hit))
        else:
            pending.append((index, job, key))

    if pending:
        wires = [job.to_wire() for _, job, _ in pending]
        workers = min(report.pool_size, len(pending))
        if workers > 1:
            with _pool_context().Pool(workers) as pool:
                raw = pool.map(_pool_worker, wires, chunksize=1)
        else:
            raw = [_pool_worker(wire) for wire in wires]
        for (index, job, key), one in zip(pending, raw):
            settle(index, _executed_outcome(job, key, one, start, cache))

    report.outcomes = [o for o in outcomes if o is not None]
    report.wall_s = time.perf_counter() - start
    if cache is not None and cache_before is not None:
        report.cache_stats = {name: cache.stats[name] - cache_before[name]
                              for name in cache.stats}
    report.host_metrics = build_host_metrics(
        report.outcomes, report.pool_size, report.wall_s,
        report.cache_stats)
    return report
