"""The batch-execution engine: a worker pool over simulation jobs, with
content-addressed memoization.

Execution contract:

* **determinism** — a job's payload is a pure function of its canonical
  form.  Serial execution, a pool of any size, and a cache hit all
  produce the same JSON-normalized payload (the pool only changes *who*
  computes, never *what*); ``tests/runner/test_determinism.py`` holds
  every Table 1 workload to this bit-for-bit.
* **failure isolation** — one job raising (bad program, config rejected,
  simulation error) marks that outcome ``failed`` with the error text
  and leaves every other job untouched.  Worker crashes cannot poison
  the cache: only successful payloads are stored.
* **memoization** — with a :class:`~repro.runner.cache.ResultCache`
  attached, jobs whose key has a valid entry are served without
  executing anything; everything recomputed is written back.  A warm
  second run of an unchanged sweep therefore executes zero simulations.

The per-job result payload is ``SimResult.to_json_dict(...)`` (shaped by
the job's include flags) plus ``memory_digest`` — enough for every sweep
to verify architectural identity without shipping full memory images.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from .cache import ResultCache
from .job import Job

#: outcome states
OK, CACHED, FAILED = "ok", "cached", "failed"


def execute_job(job: Job) -> Dict[str, Any]:
    """Run one job to its result payload (no cache, no isolation).

    The payload is normalized through a JSON round-trip so that fresh
    and cache-served results are indistinguishable (tuples become lists,
    int keys become strings) and comparisons are representation-free.
    """
    import json

    from ..faults.sweep import memory_digest
    from ..sim.processor import simulate

    result, _ = simulate(job.program(), job.config)
    payload = result.to_json_dict(include_memory=job.include_memory,
                                  include_trace=job.include_trace,
                                  include_events=job.include_events)
    payload["memory_digest"] = memory_digest(result.final_memory)
    normalized: Dict[str, Any] = json.loads(json.dumps(payload,
                                                       sort_keys=True))
    return normalized


def _pool_worker(wire: Dict[str, Any]) -> Tuple[str, Any, float]:
    """Top-level (picklable) worker: wire dict -> (status, value, wall)."""
    start = time.perf_counter()
    try:
        payload = execute_job(Job.from_wire(wire))
        return OK, payload, time.perf_counter() - start
    except ReproError as exc:
        return FAILED, str(exc), time.perf_counter() - start
    except Exception:                                  # noqa: BLE001
        return FAILED, traceback.format_exc(limit=8), \
            time.perf_counter() - start


@dataclass
class JobOutcome:
    """What happened to one job of a batch."""

    job_id: str
    key: str
    status: str                        #: "ok" | "cached" | "failed"
    wall_s: float                      #: execution wall (0 for cached)
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def to_json_dict(self, timing: bool = True) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"job_id": self.job_id, "key": self.key,
                                 "status": self.status}
        if timing:
            entry["wall_s"] = self.wall_s
        if self.error is not None:
            entry["error"] = self.error
        if self.payload is not None:
            entry["payload"] = self.payload
        return entry


@dataclass
class BatchReport:
    """Aggregate outcome of one :func:`run_batch` call, in job order."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    pool_size: int = 1
    cache_dir: Optional[str] = None
    wall_s: float = 0.0

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == OK)

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.status == CACHED)

    @property
    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if o.status == FAILED]

    @property
    def ok(self) -> bool:
        return not self.failures

    def payloads(self) -> List[Optional[Dict[str, Any]]]:
        """Result payloads in job order (None where a job failed)."""
        return [o.payload for o in self.outcomes]

    def summary(self) -> str:
        return ("%d jobs: %d executed, %d cached, %d failed "
                "(pool=%d) in %.2fs"
                % (len(self.outcomes), self.executed, self.cache_hits,
                   len(self.failures), self.pool_size, self.wall_s))

    def to_json_dict(self, timing: bool = True) -> Dict[str, Any]:
        """Machine-readable report.  ``timing=False`` drops wall clocks,
        leaving only deterministic fields — byte-identical across runs
        and machines, which is what differential tests compare."""
        payload: Dict[str, Any] = {
            "jobs": len(self.outcomes),
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failed": len(self.failures),
            "pool_size": self.pool_size,
            "cache_dir": self.cache_dir,
            "outcomes": [o.to_json_dict(timing=timing)
                         for o in self.outcomes],
        }
        if timing:
            payload["wall_s"] = self.wall_s
        if not timing:
            payload.pop("pool_size")
            payload.pop("cache_dir")
        return payload


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, no re-import) where the platform offers it."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_batch(jobs: Sequence[Job], pool_size: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              on_outcome: Optional[Callable[[JobOutcome], None]] = None,
              ) -> BatchReport:
    """Run *jobs*, fanning execution over *pool_size* worker processes.

    ``pool_size`` of None/0/1 runs serially in-process (the reference
    path the pool is tested against).  With a *cache*, valid entries are
    served without execution and fresh results are written back.
    *on_outcome* is called once per job, in job order, as outcomes
    settle (cache hits first, then executions).
    """
    start = time.perf_counter()
    report = BatchReport(pool_size=max(1, pool_size or 1),
                         cache_dir=str(cache.root) if cache else None)
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

    def settle(index: int, outcome: JobOutcome) -> None:
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(outcome)

    pending: List[Tuple[int, Job, str]] = []
    for index, job in enumerate(jobs):
        key = job.key()
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            settle(index, JobOutcome(job.job_id, key, CACHED, 0.0,
                                     payload=hit))
        else:
            pending.append((index, job, key))

    if pending:
        wires = [job.to_wire() for _, job, _ in pending]
        workers = min(report.pool_size, len(pending))
        if workers > 1:
            with _pool_context().Pool(workers) as pool:
                raw = pool.map(_pool_worker, wires, chunksize=1)
        else:
            raw = [_pool_worker(wire) for wire in wires]
        for (index, job, key), (status, value, wall) in zip(pending, raw):
            if status == OK:
                if cache is not None:
                    cache.put(key, value)
                settle(index, JobOutcome(job.job_id, key, OK, wall,
                                         payload=value))
            else:
                settle(index, JobOutcome(job.job_id, key, FAILED, wall,
                                         error=value))

    report.outcomes = [o for o in outcomes if o is not None]
    report.wall_s = time.perf_counter() - start
    return report
