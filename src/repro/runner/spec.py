"""JSON job-spec parsing for ``repro batch``.

A spec is either a bare list of job entries or an object::

    {"defaults": {"config": {"n_cores": 16}, "include_memory": true},
     "jobs": [
       {"id": "qsort",  "workload": "quicksort", "scale": 0, "seed": 1},
       {"id": "sum",    "file": "examples/sum.c"},
       {"id": "inline", "c": "long main() { out(42); return 0; }"},
       {"id": "raw",    "asm": "main:\\n    out $7\\n    hlt\\n"}
     ]}

Each entry names its program exactly one way:

* ``workload`` — a Table 1 short name/key; built at ``scale``/``seed``
  (or explicit ``n``) and fork-transformed unless ``transform`` is false;
* ``file`` — a ``.c`` (MiniC) or ``.s`` (assembly) path, resolved
  relative to the spec file;
* ``c`` — inline MiniC source;
* ``asm`` — inline assembly text.

MiniC compiles in fork mode by default (``"fork": false`` opts out,
``"fork_loops": true`` adds loop forking), matching ``repro simulate``.
``config`` is a :meth:`repro.sim.SimConfig.from_dict` dict, merged over
``defaults.config`` key by key; ``include_memory`` / ``include_trace`` /
``include_events`` shape the payload.  Unknown entry keys are rejected.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import ReproError
from ..sim.config import SimConfig
from .job import Job

_PROGRAM_KEYS = ("workload", "file", "c", "asm")
_ENTRY_KEYS = frozenset(_PROGRAM_KEYS) | {
    "id", "scale", "seed", "n", "transform", "fork", "fork_loops",
    "config", "include_memory", "include_trace", "include_events",
}
_DEFAULT_KEYS = frozenset({"config", "include_memory", "include_trace",
                           "include_events", "fork", "fork_loops"})


def _entry_program(entry: Dict[str, Any], base_dir: Path) -> Any:
    """Resolve the entry's program source to an assembled Program."""
    from ..fork import fork_transform
    from ..isa import assemble
    from ..minic import compile_source

    fork = bool(entry.get("fork", True))
    fork_loops = bool(entry.get("fork_loops", False))
    if "workload" in entry:
        from ..workloads import get_workload
        try:
            workload = get_workload(str(entry["workload"]))
        except KeyError as exc:
            raise ReproError(str(exc.args[0])) from None
        inst = workload.instance(scale=int(entry.get("scale", 0)),
                                 seed=int(entry.get("seed", 1)),
                                 n=entry.get("n"))
        program = inst.program
        if entry.get("transform", True):
            program = fork_transform(program)
        return program
    if "file" in entry:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = base_dir / path
        source = path.read_text()
        if str(path).endswith(".c"):
            return compile_source(source, fork_mode=fork,
                                  fork_loops=fork_loops)
        return assemble(source)
    if "c" in entry:
        return compile_source(str(entry["c"]), fork_mode=fork,
                              fork_loops=fork_loops)
    return assemble(str(entry["asm"]))


def job_from_entry(entry: Dict[str, Any],
                   defaults: Optional[Dict[str, Any]] = None,
                   base_dir: Union[str, Path] = ".") -> Job:
    """Build one :class:`Job` from a spec entry merged over *defaults*."""
    defaults = defaults or {}
    if not isinstance(entry, dict):
        raise ReproError("job entry must be an object, got %r" % (entry,))
    unknown = sorted(set(entry) - _ENTRY_KEYS)
    if unknown:
        raise ReproError("unknown job-spec keys: %s" % ", ".join(unknown))
    sources = [k for k in _PROGRAM_KEYS if k in entry]
    if len(sources) != 1:
        raise ReproError(
            "job entry needs exactly one of %s (got %s)"
            % ("/".join(_PROGRAM_KEYS), ", ".join(sources) or "none"))
    merged = dict(defaults)
    merged.update(entry)
    config_dict: Dict[str, Any] = dict(defaults.get("config") or {})
    config_dict.update(entry.get("config") or {})
    program = _entry_program(merged, Path(base_dir))
    return Job.from_program(
        program, config=SimConfig.from_dict(config_dict),
        job_id=str(entry.get("id", "")),
        include_memory=bool(merged.get("include_memory", False)),
        include_trace=bool(merged.get("include_trace", False)),
        include_events=bool(merged.get("include_events", False)))


def jobs_from_spec(spec: Union[Dict[str, Any], Sequence[Any]],
                   base_dir: Union[str, Path] = ".") -> List[Job]:
    """Parse a whole spec payload (bare list or {defaults, jobs})."""
    defaults: Dict[str, Any] = {}
    if isinstance(spec, dict):
        unknown = sorted(set(spec) - {"defaults", "jobs"})
        if unknown:
            raise ReproError("unknown spec keys: %s" % ", ".join(unknown))
        defaults = spec.get("defaults") or {}
        bad = sorted(set(defaults) - _DEFAULT_KEYS)
        if bad:
            raise ReproError("unknown defaults keys: %s" % ", ".join(bad))
        entries = spec.get("jobs")
    else:
        entries = list(spec)
    if not entries:
        raise ReproError("job spec lists no jobs")
    jobs = []
    for index, entry in enumerate(entries):
        try:
            job = job_from_entry(entry, defaults, base_dir)
        except ReproError as exc:
            raise ReproError("job %d: %s"
                             % (index, getattr(exc, "raw_message", None)
                                or str(exc))) from None
        if not entry.get("id"):
            job.job_id = "job-%d-%s" % (index, job.key()[:8])
        jobs.append(job)
    return jobs
