"""The batch engine's job model.

A :class:`Job` is one simulation to run: a program, a
:class:`~repro.sim.config.SimConfig`, and which outputs the caller wants
back.  Two representations matter:

* the **canonical form** (:meth:`Job.canonical_dict`) — the program as its
  assembler listing (``Program.listing()`` round-trips through the
  assembler, so it is a faithful, text-stable serialization of code *and*
  the patched data image) plus the config's ``to_dict`` and the include
  flags, under a schema version.  Its sha256 is the job's
  **content-addressed cache key**: two jobs with byte-identical canonical
  forms are the same computation and may share a cached result.
* the **wire form** (:meth:`Job.to_wire`) — the same dict, shipped to
  pool workers (plain strings/dicts pickle cheaply and rebuild on the
  other side via ``assemble`` + ``SimConfig.from_dict``), so a worker
  computes exactly what the key digests.

The job id is a human label for reports; it is deliberately *not* part of
the key — relabelling a sweep must not invalidate its cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import ReproError
from ..isa import assemble
from ..isa.program import Program
from ..sim.config import SimConfig

#: Version of the canonical job / cached payload schema.  Bump whenever
#: the canonical form or the result payload shape changes; old cache
#: entries then stop matching (the digest covers the version) and any
#: survivor with a stale stored version is rejected by the cache reader.
SCHEMA_VERSION = 1


@dataclass
class Job:
    """One simulation job: canonical program text + config + outputs."""

    asm: str                      #: canonical assembler listing
    config: SimConfig
    job_id: str = ""              #: report label (not part of the key)
    include_memory: bool = False  #: ship the full final memory image
    include_trace: bool = False   #: ship the per-cycle core-state trace
    include_events: bool = False  #: ship the structured event stream

    def __post_init__(self) -> None:
        if not self.job_id:
            self.job_id = "job-" + self.key()[:12]

    @classmethod
    def from_program(cls, program: Program,
                     config: Optional[SimConfig] = None, job_id: str = "",
                     include_memory: bool = False,
                     include_trace: bool = False,
                     include_events: bool = False) -> "Job":
        """Build a job from an assembled/compiled :class:`Program`."""
        return cls(asm=program.listing(), config=config or SimConfig(),
                   job_id=job_id, include_memory=include_memory,
                   include_trace=include_trace,
                   include_events=include_events)

    def program(self) -> Program:
        """Re-assemble the canonical listing (what a worker executes)."""
        return assemble(self.asm)

    # -- canonical form / content address --------------------------------

    def canonical_dict(self) -> Dict[str, Any]:
        """The canonical serialization the cache key digests."""
        return {
            "schema": SCHEMA_VERSION,
            "asm": self.asm,
            "config": self.config.to_dict(),
            "include": {
                "memory": self.include_memory,
                "trace": self.include_trace,
                "events": self.include_events,
            },
        }

    def key(self) -> str:
        """Content address: sha256 of the canonical form, hex."""
        blob = json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()

    # -- wire form (cross-process) ---------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        """Picklable dict a pool worker rebuilds the job from."""
        wire = self.canonical_dict()
        wire["job_id"] = self.job_id
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "Job":
        """Rebuild a worker-side job; rejects schema drift loudly."""
        if wire.get("schema") != SCHEMA_VERSION:
            raise ReproError("job wire schema %r != %d"
                             % (wire.get("schema"), SCHEMA_VERSION))
        include = wire.get("include", {})
        return cls(asm=wire["asm"],
                   config=SimConfig.from_dict(wire["config"]),
                   job_id=wire.get("job_id", ""),
                   include_memory=bool(include.get("memory", False)),
                   include_trace=bool(include.get("trace", False)),
                   include_events=bool(include.get("events", False)))
