"""The fork transformation and section tooling (paper Section 2).

* :func:`fork_transform` — rewrite a call/ret program into fork/endfork
  form (Figure 2 → Figure 5), with optional save/restore elision.
* :func:`find_functions` / :func:`call_targets` — program structure helpers.
* :func:`render_section_tree` / :func:`render_section_trace` — the paper's
  Figure 4 / Figure 6 renderings of a forked run.
"""

from .sections import render_section_trace, render_section_tree
from .transform import FunctionRegion, call_targets, find_functions, fork_transform

__all__ = [
    "FunctionRegion", "call_targets", "find_functions", "fork_transform",
    "render_section_trace", "render_section_tree",
]
