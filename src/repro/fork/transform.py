"""The Figure 2 → Figure 5 program transformation, at the assembly level.

Rules (paper, Section 2):

* ``call f``  → ``fork f``   — no return address is saved; the resume path
  becomes a new section that receives copies of rsp and the non-volatile
  registers;
* ``ret``     → ``endfork``  — the flow simply ends;
* callee-save ``push``/``pop`` pairs around a fork become dead (the copies
  replace them) and can be elided.

The transformation is function-granular: a function either keeps the
call/ret protocol or moves fully to fork/endfork; every call site of a
converted function is rewritten.  Keeping a push/pop pair that the paper
would delete is always *correct* under the section model (memory renaming
resolves the stack traffic); eliding is an optimization, and the built-in
peephole only fires when it can prove safety:

* the push and pop use the same register, which fork copies,
* the pair brackets at least one ``fork``,
* no instruction between them touches rsp (directly or through a memory
  operand) or is itself an unmatched stack op,
* no label (= potential branch target) lies strictly between them.

Compiler-generated MiniC code needs no elision (its codegen already keeps
nothing callee-saved across calls); the peephole exists for hand-written
Figure-2-style code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError
from ..isa import Program, Reg, assemble
from ..isa.registers import FORK_COPIED_REGS, STACK_POINTER


@dataclass
class FunctionRegion:
    """A contiguous code region belonging to one function."""

    name: str
    start: int      #: first instruction index
    end: int        #: one past the last instruction index


def find_functions(program: Program) -> List[FunctionRegion]:
    """Split the code at function labels.

    Convention (followed by the MiniC code generator and the paper's
    listings): labels not starting with ``.`` open a new function; ``.L``
    labels are function-local.
    """
    starts: List[Tuple[int, str]] = sorted(
        (addr, name) for name, addr in program.code_symbols.items()
        if not name.startswith("."))
    regions: List[FunctionRegion] = []
    for i, (start, name) in enumerate(starts):
        if regions and regions[-1].start == start:
            continue  # two labels on the same instruction: keep the first
        end = starts[i + 1][0] if i + 1 < len(starts) else len(program.code)
        regions.append(FunctionRegion(name=name, start=start, end=end))
    return regions


def call_targets(program: Program) -> Set[str]:
    """Names of all functions reached by a ``call``."""
    out: Set[str] = set()
    for instr in program.code:
        if instr.opcode == "call" and instr.target_label is not None:
            out.add(instr.target_label.name)
    return out


def fork_transform(program: Program,
                   fork_functions: Optional[Sequence[str]] = None,
                   elide_saves: bool = True) -> Program:
    """Rewrite *program* into the paper's fork/endfork form.

    ``fork_functions`` selects which functions move to the section protocol
    (default: every function that is the target of a ``call``).  The result
    is reassembled, so instruction addresses may shift when saves are
    elided.
    """
    regions = find_functions(program)
    region_names = {r.name for r in regions}
    if fork_functions is None:
        selected = call_targets(program) & region_names
    else:
        selected = set(fork_functions)
        unknown = selected - region_names
        if unknown:
            raise ReproError("not functions: %s" % ", ".join(sorted(unknown)))
    if not selected:
        raise ReproError("nothing to transform: no forkable functions")

    lines: List[str] = []
    region_of: Dict[int, FunctionRegion] = {}
    for region in regions:
        for addr in range(region.start, region.end):
            region_of[addr] = region

    for instr in program.code:
        for label in instr.labels:
            lines.append("%s:" % label)
        region = region_of.get(instr.addr)
        in_selected = region is not None and region.name in selected
        if (instr.opcode == "call" and instr.target_label is not None
                and instr.target_label.name in selected):
            lines.append("    fork %s" % instr.target_label.name)
        elif instr.opcode == "ret" and in_selected:
            lines.append("    endfork")
        else:
            lines.append("    %s" % instr)

    if elide_saves:
        lines = _elide_saves(lines)

    source = "\n".join(lines) + "\n" + _data_section_text(program)
    entry = program.entry_symbol()
    return assemble(source, entry=entry)


# -- save/restore elision -----------------------------------------------------


def _elide_saves(lines: List[str]) -> List[str]:
    """Remove provably-dead ``push X … pop X`` pairs bracketing a fork."""
    doomed: Set[int] = set()
    stack: List[Tuple[int, str, bool]] = []   # (line index, reg, saw fork)
    for i, line in enumerate(lines):
        text = line.strip()
        if text.endswith(":"):
            stack.clear()                      # label: potential join point
            continue
        if text.startswith("fork"):
            stack = [(j, reg, True) for (j, reg, _) in stack]
            continue
        pushed = _push_reg(text)
        if pushed is not None:
            stack.append((i, pushed, False))
            continue
        popped = _pop_reg(text)
        if popped is not None:
            if stack:
                j, reg, saw_fork = stack.pop()
                if (reg == popped and saw_fork
                        and reg in FORK_COPIED_REGS
                        and reg != STACK_POINTER):
                    doomed.add(j)
                    doomed.add(i)
            else:
                stack.clear()
            continue
        if _touches_rsp(text) or text.startswith(("call", "ret", "jmp", "j",
                                                  "endfork", "hlt")):
            stack.clear()
    return [line for i, line in enumerate(lines) if i not in doomed]


def _push_reg(text: str) -> Optional[str]:
    if text.startswith(("pushq ", "push ")):
        operand = text.split(None, 1)[1].strip()
        if operand.startswith("%"):
            return operand[1:]
    return None


def _pop_reg(text: str) -> Optional[str]:
    if text.startswith(("popq ", "pop ")):
        operand = text.split(None, 1)[1].strip()
        if operand.startswith("%"):
            return operand[1:]
    return None


def _touches_rsp(text: str) -> bool:
    return "%rsp" in text


def _data_section_text(program: Program) -> str:
    if not program.data and not program.data_symbols:
        return ""
    by_addr: Dict[int, List[str]] = {}
    for name, addr in program.data_symbols.items():
        by_addr.setdefault(addr, []).append(name)
    lines = [".data"]
    for addr in sorted(set(program.data) | set(by_addr)):
        for name in by_addr.get(addr, ()):
            lines.append("%s:" % name)
        if addr in program.data:
            lines.append("    .quad %d" % program.data[addr])
    return "\n".join(lines) + "\n"
