"""The Figure 2 → Figure 5 program transformation, at the assembly level.

Rules (paper, Section 2):

* ``call f``  → ``fork f``   — no return address is saved; the resume path
  becomes a new section that receives copies of rsp and the non-volatile
  registers;
* ``ret``     → ``endfork``  — the flow simply ends;
* callee-save ``push``/``pop`` pairs around a fork become dead (the copies
  replace them) and can be elided.

The transformation is function-granular: a function either keeps the
call/ret protocol or moves fully to fork/endfork; every call site of a
converted function is rewritten.  Keeping a push/pop pair that the paper
would delete is always *correct* under the section model (memory renaming
resolves the stack traffic); eliding is an optimization, driven by the
:mod:`repro.analysis` liveness passes:

The elision works on ``push``/``pop`` pairs matched by symbolic
stack-offset tracking (LIFO discipline by slot, so Figure 2's mismatched
``pushq %rsi`` … ``popq %rbx`` pairs match too), restricted to pairs
that bracket at least one ``fork``, lie in label-free straight-line
code, and whose slot is never otherwise accessed.  Two rules apply:

* **delete** — the popped register is dead after the pop (section-model
  liveness: values of fork-copied registers never survive an
  ``endfork``, the resume section holds its own copies), so both
  instructions go;
* **rewrite** — the pop's target is a fork-copied register the bracketed
  flow never observes, so the pair collapses to a register move at the
  push site: the fork-time copies carry the value to the pop's resume
  section.  This is exactly how the paper turns Figure 2's
  ``pushq %rsi`` … ``popq %rbx`` into Figure 5's ``movq %rsi, %rbx``.

One rule application per pass (reassemble, re-analyse, repeat to a
fixpoint): applying Figure 2's elisions one at a time is what unlocks
the rewrite — ``rbx`` only stops being live into ``sum`` once the
``pushq %rbx`` save is gone.

The elision assumes push slots are not address-taken (no instruction
reads ``%rsp`` except stack ops, rsp-relative accesses to *tracked*
offsets, and immediate rsp adjustments); anything else resets the
tracking and keeps the pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError
from ..isa import Program, Reg, assemble
from ..isa.operands import Imm, Mem
from ..isa.registers import FORK_COPIED_REGS, STACK_POINTER


@dataclass
class FunctionRegion:
    """A contiguous code region belonging to one function."""

    name: str
    start: int      #: first instruction index
    end: int        #: one past the last instruction index


def find_functions(program: Program) -> List[FunctionRegion]:
    """Split the code at function labels.

    Convention (followed by the MiniC code generator and the paper's
    listings): labels not starting with ``.`` open a new function; ``.L``
    labels are function-local.
    """
    starts: List[Tuple[int, str]] = sorted(
        (addr, name) for name, addr in program.code_symbols.items()
        if not name.startswith("."))
    regions: List[FunctionRegion] = []
    for i, (start, name) in enumerate(starts):
        if regions and regions[-1].start == start:
            continue  # two labels on the same instruction: keep the first
        end = starts[i + 1][0] if i + 1 < len(starts) else len(program.code)
        regions.append(FunctionRegion(name=name, start=start, end=end))
    return regions


def call_targets(program: Program) -> Set[str]:
    """Names of all functions reached by a ``call``."""
    out: Set[str] = set()
    for instr in program.code:
        if instr.opcode == "call" and instr.target_label is not None:
            out.add(instr.target_label.name)
    return out


def fork_transform(program: Program,
                   fork_functions: Optional[Sequence[str]] = None,
                   elide_saves: bool = True) -> Program:
    """Rewrite *program* into the paper's fork/endfork form.

    ``fork_functions`` selects which functions move to the section protocol
    (default: every function that is the target of a ``call``).  The result
    is reassembled, so instruction addresses may shift when saves are
    elided.
    """
    regions = find_functions(program)
    region_names = {r.name for r in regions}
    if fork_functions is None:
        selected = call_targets(program) & region_names
    else:
        selected = set(fork_functions)
        unknown = selected - region_names
        if unknown:
            raise ReproError("not functions: %s" % ", ".join(sorted(unknown)))
    if not selected:
        raise ReproError("nothing to transform: no forkable functions")

    lines: List[str] = []
    region_of: Dict[int, FunctionRegion] = {}
    for region in regions:
        for addr in range(region.start, region.end):
            region_of[addr] = region

    for instr in program.code:
        for label in instr.labels:
            lines.append("%s:" % label)
        region = region_of.get(instr.addr)
        in_selected = region is not None and region.name in selected
        if (instr.opcode == "call" and instr.target_label is not None
                and instr.target_label.name in selected):
            lines.append("    fork %s" % instr.target_label.name)
        elif instr.opcode == "ret" and in_selected:
            lines.append("    endfork")
        else:
            lines.append("    %s" % instr)

    source = "\n".join(lines) + "\n" + _data_section_text(program)
    result = assemble(source, entry=program.entry_symbol())
    if elide_saves:
        result = elide_dead_saves(result)
    return result


# -- save/restore elision -----------------------------------------------------

#: safety bound on elision passes (each pass applies one rule)
_MAX_ELISION_PASSES = 100


@dataclass(frozen=True)
class SaveElision:
    """One applicable elision of a ``push``/``pop`` pair around a fork."""

    push_addr: int
    pop_addr: int
    push_reg: str
    pop_reg: str
    action: str        #: "delete" or "rewrite"

    def describe(self) -> str:
        if self.action == "delete":
            return ("%s is dead after the pop — fork copies already "
                    "preserve every live register" % self.pop_reg)
        return ("equivalent to `movq %%%s, %%%s` before the fork; the "
                "fork-time copies carry the value"
                % (self.push_reg, self.pop_reg))


@dataclass
class _OpenSave:
    addr: int                  #: push instruction address
    reg: Optional[str]         #: pushed register (None: untracked operand)
    slot: int                  #: rsp offset of the saved word
    forks: int = 0
    calls: int = 0
    tainted: bool = False


@dataclass(frozen=True)
class _SavePair:
    push_addr: int
    pop_addr: int
    push_reg: str
    pop_reg: str
    forks: int
    calls: int
    tainted: bool


def _save_pairs(program: Program) -> List[_SavePair]:
    """LIFO-matched push/pop pairs in label-free straight-line code.

    Tracks the rsp offset symbolically (push/pop, immediate ``subq``/
    ``addq`` on rsp); a pop pairs with the push whose slot sits exactly
    at the current offset, so mismatched-register pairs (Figure 2's
    ``pushq %rsi`` … ``popq %rbx``) match too.  Any label, branch, or
    untrackable rsp use resets the tracking; rsp-relative accesses to a
    pending slot taint its pair.
    """
    pairs: List[_SavePair] = []
    open_saves: List[_OpenSave] = []
    offset = 0

    def reset() -> None:
        del open_saves[:]

    for instr in program.code:
        if instr.labels:
            reset()
            offset = 0
        kind = instr.kind
        if kind == "push":
            offset -= 8
            operand = instr.operands[0]
            reg = (operand.name if isinstance(operand, Reg)
                   and operand.name != STACK_POINTER else None)
            if isinstance(operand, Mem):
                _taint_accesses(instr, open_saves, offset + 8)
            open_saves.append(_OpenSave(addr=instr.addr, reg=reg,
                                        slot=offset))
            continue
        if kind == "pop":
            operand = instr.operands[0]
            reg = (operand.name if isinstance(operand, Reg)
                   and operand.name != STACK_POINTER else None)
            if open_saves and open_saves[-1].slot == offset:
                save = open_saves.pop()
                if save.reg is not None and reg is not None:
                    pairs.append(_SavePair(
                        push_addr=save.addr, pop_addr=instr.addr,
                        push_reg=save.reg, pop_reg=reg,
                        forks=save.forks, calls=save.calls,
                        tainted=save.tainted))
            else:
                reset()
            offset += 8
            if reg is None and not isinstance(operand, Reg):
                reset()  # pop to memory / pop %rsp: untracked rsp effect
            continue
        if (instr.opcode in ("sub", "add") and len(instr.operands) == 2
                and isinstance(instr.operands[0], Imm)
                and isinstance(instr.operands[1], Reg)
                and instr.operands[1].name == STACK_POINTER):
            delta = instr.operands[0].value
            offset += delta if instr.opcode == "add" else -delta
            open_saves[:] = [s for s in open_saves if s.slot >= offset]
            continue
        if STACK_POINTER in instr.reg_writes():
            reset()          # mov/lea into rsp: offset unknown
            continue
        if kind in ("jmp", "jcc", "ret", "endfork", "hlt"):
            reset()
            continue
        if kind == "fork":
            for save in open_saves:
                save.forks += 1
            continue
        if kind == "call":
            for save in open_saves:
                save.calls += 1
            continue
        if any(isinstance(op, Reg) and op.name == STACK_POINTER
               for op in instr.operands):
            reset()          # rsp escapes (e.g. movq %rsp, %rbp)
            continue
        _taint_accesses(instr, open_saves, offset)
    return pairs


def _taint_accesses(instr, open_saves: List[_OpenSave],
                    offset: int) -> None:
    """Mark pending slots touched by *instr*'s rsp-relative accesses."""
    mem = instr.mem_operand()
    if mem is None or STACK_POINTER not in mem.regs():
        return
    if mem.base != STACK_POINTER or mem.index is not None:
        for save in open_saves:
            save.tainted = True      # scaled/indirect rsp address: anywhere
        return
    target = offset + mem.disp
    for save in open_saves:
        if save.slot == target:
            save.tainted = True


def plan_save_elisions(program: Program) -> List[SaveElision]:
    """Every elision applicable to *program* as-is (no mutation).

    Imported lazily into :mod:`repro.analysis.lint` (rule ``dead-save``);
    :func:`elide_dead_saves` applies the first one per pass.
    """
    from ..analysis.cfg import CFG
    from ..analysis.dataflow import liveness, mask_of
    candidates = [p for p in _save_pairs(program)
                  if p.forks and not p.tainted]
    if not candidates:
        return []
    cfg = CFG(program)
    data = liveness(cfg, "dataflow")
    code = program.code
    plans: List[SaveElision] = []
    for pair in candidates:
        base = dict(push_addr=pair.push_addr, pop_addr=pair.pop_addr,
                    push_reg=pair.push_reg, pop_reg=pair.pop_reg)
        # rule 1 (delete): the restored value is dead after the pop
        if not data.live_out[pair.pop_addr] & mask_of([pair.pop_reg]):
            plans.append(SaveElision(action="delete", **base))
            continue
        # rule 2 (rewrite): fork copies can carry the value instead
        if (pair.pop_reg not in FORK_COPIED_REGS or pair.calls
                or pair.pop_reg == STACK_POINTER):
            continue
        between = code[pair.push_addr + 1:pair.pop_addr]
        if any(pair.pop_reg in i.reg_writes() for i in between):
            continue
        if (pair.pop_reg != pair.push_reg
                and any(pair.pop_reg in i.reg_reads() for i in between)):
            continue
        if pair.pop_reg != pair.push_reg and any(
                i.kind == "fork" and i.target is not None
                and data.live_in[i.target] & mask_of([pair.pop_reg])
                for i in between):
            continue     # some flow between push and pop observes the reg
        plans.append(SaveElision(action="rewrite", **base))
    return plans


def elide_dead_saves(program: Program) -> Program:
    """Iterate :func:`plan_save_elisions` to a fixpoint, one rule per pass.

    Deletions are preferred over rewrites within a pass — Figure 2's
    three dead pairs must go before the ``movq %rsi, %rbx`` rewrite
    becomes provably safe.
    """
    for _ in range(_MAX_ELISION_PASSES):
        plans = plan_save_elisions(program)
        if not plans:
            return program
        plan = next((p for p in plans if p.action == "delete"), plans[0])
        skip = {plan.pop_addr}
        replace: Dict[int, str] = {}
        if plan.action == "delete" or plan.push_reg == plan.pop_reg:
            skip.add(plan.push_addr)
        else:
            replace[plan.push_addr] = "movq %%%s, %%%s" % (plan.push_reg,
                                                           plan.pop_reg)
        program = _rebuild(program, skip, replace)
    return program


def _rebuild(program: Program, skip: Set[int],
             replace: Dict[int, str]) -> Program:
    lines: List[str] = []
    for instr in program.code:
        for label in instr.labels:
            lines.append("%s:" % label)
        if instr.addr in skip:
            continue
        lines.append("    %s" % replace.get(instr.addr, str(instr)))
    source = "\n".join(lines) + "\n" + _data_section_text(program)
    return assemble(source, entry=program.entry_symbol())


def _data_section_text(program: Program) -> str:
    if not program.data and not program.data_symbols:
        return ""
    by_addr: Dict[int, List[str]] = {}
    for name, addr in program.data_symbols.items():
        by_addr.setdefault(addr, []).append(name)
    lines = [".data"]
    for addr in sorted(set(program.data) | set(by_addr)):
        for name in by_addr.get(addr, ()):
            lines.append("%s:" % name)
        if addr in program.data:
            lines.append("    .quad %d" % program.data[addr])
    return "\n".join(lines) + "\n"
