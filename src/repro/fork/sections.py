"""Rendering of section structures: the paper's Figures 4 and 6.

Given a completed :class:`~repro.machine.forked.ForkedMachine` (and its
trace), these helpers draw the section call tree and the per-section trace
listing, matching the paper's presentation of the ``sum(t,5)`` run.
"""

from __future__ import annotations

from typing import Dict, List

from ..machine.forked import ForkedMachine
from ..machine.trace import Trace


def render_section_tree(machine: ForkedMachine) -> str:
    """ASCII rendering of the section creation tree (Figure 4, right).

    Children are the sections a section forked, in creation order; section
    ids themselves are in total (trace) order.
    """
    tree = machine.section_tree()
    infos = {s.sid: s for s in machine.section_table()}
    lines: List[str] = []
    roots = [s.sid for s in machine.section_table() if s.parent == 0]
    for root in roots:
        _render(root, prefix="", is_last=True, is_root=True, tree=tree,
                infos=infos, lines=lines)
    return "\n".join(lines)


def _render(sid: int, prefix: str, is_last: bool, is_root: bool, tree,
            infos, lines: List[str]) -> None:
    info = infos[sid]
    text = "section %d (depth %d, %d instrs)" % (sid, info.depth, info.length)
    if is_root:
        lines.append(text)
        child_prefix = ""
    else:
        connector = "`-- " if is_last else "|-- "
        lines.append(prefix + connector + text)
        child_prefix = prefix + ("    " if is_last else "|   ")
    children = tree.get(sid, [])
    for i, child in enumerate(children):
        _render(child, child_prefix, i == len(children) - 1, False, tree,
                infos, lines)


def render_section_trace(trace: Trace) -> str:
    """The per-section instruction listing of Figure 6: every dynamic
    instruction tagged ``section-index``, grouped by section in total
    order."""
    by_section: Dict[int, List] = {}
    for entry in trace:
        by_section.setdefault(entry.section, []).append(entry)
    blocks: List[str] = []
    for sid in sorted(by_section):
        lines = ["// section %d" % sid]
        for entry in by_section[sid]:
            lines.append("%-7s %s" % ("%d-%d" % (sid, entry.section_index + 1),
                                      entry.instr))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
