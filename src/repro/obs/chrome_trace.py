"""Chrome trace-event / Perfetto export of a simulated run.

Open the produced JSON at https://ui.perfetto.dev (or chrome://tracing):

* every **core** renders as a process ("core N"), every **section** as a
  thread track inside its host core, with one slice from its first fetch
  to its completion (plus a short "spawn" slice covering the fork-to-first
  -fetch latency window);
* every **renaming request** renders as a flow arrow chain (``s``/``t``/
  ``f`` events) hopping backward across the section tracks it visits, so
  the characteristic backward walks of the paper are visible as arrows
  cutting across cores, plus an async span on the requester core for its
  issue-to-fill lifetime;
* **DMH reads** are instants on the requester track, and two counter
  tracks show running (non-stalled) cores and retirements per cycle;
* runs with :attr:`repro.sim.SimConfig.metrics_window` set additionally
  get **windowed counter tracks** (retired/window, per-link NoC message
  and drop counts) from the cycle-domain metrics dict.

Timestamps are simulated cycles (1 cycle = 1 "microsecond" in the viewer).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .events import collect_requests, collect_sections, request_what_str


def _seek_filter(out: List[Dict[str, Any]],
                 seek: int) -> List[Dict[str, Any]]:
    """Restrict a traceEvents list to cycles >= *seek*, keeping it
    well-formed: metadata survives, duration slices spanning the seek
    point are clipped to it, and renaming-flow chains are kept (clamped)
    only when they finish at or after the seek point — a chain sliced
    mid-arrow would render as a dangling flow."""
    flow_end: Dict[Any, int] = {}
    for event in out:
        if event.get("cat") == "renameflow":
            key = event["id"]
            flow_end[key] = max(flow_end.get(key, 0), event["ts"])
    kept: List[Dict[str, Any]] = []
    for event in out:
        ph = event.get("ph")
        if ph == "M":
            kept.append(event)
        elif event.get("cat") == "renameflow":
            if flow_end.get(event["id"], 0) >= seek:
                kept.append(dict(event, ts=max(event["ts"], seek)))
        elif ph == "X":
            end = event["ts"] + event.get("dur", 0)
            if end > seek:
                start = max(event["ts"], seek)
                kept.append(dict(event, ts=start,
                                 dur=max(end - start, 1)))
        elif event.get("ts", 0) >= seek:
            kept.append(event)
    return kept


def to_chrome_trace(result: Any,
                    title: str = "repro simulation",
                    seek: Optional[int] = None) -> Dict[str, Any]:
    """Render ``result.events`` (a run with ``SimConfig.events=True``) as a
    Chrome trace-event JSON object (``{"traceEvents": [...], ...}``).

    ``seek`` drops everything before that cycle (``repro trace --seek``,
    the time-travel pairing with snapshot resume)."""
    if result.events is None:
        raise ValueError(
            "no event stream on this result: run the simulation with "
            "SimConfig(events=True) (CLI: repro trace / --chrome-trace)")
    events = result.events
    sections = collect_sections(events)
    requests = collect_requests(events)
    out: List[Dict[str, Any]] = []

    n_cores = len(result.per_core_instructions)
    for core in range(n_cores):
        out.append({"ph": "M", "pid": core, "tid": 0, "name": "process_name",
                    "args": {"name": "core %d" % core}})
        out.append({"ph": "M", "pid": core, "tid": 0,
                    "name": "process_sort_index",
                    "args": {"sort_index": core}})

    # -- sections as tracks -------------------------------------------------
    for sid, sec in sorted(sections.items()):
        pid = sec["core"]
        out.append({"ph": "M", "pid": pid, "tid": sid, "name": "thread_name",
                    "args": {"name": "section %d" % sid}})
        out.append({"ph": "M", "pid": pid, "tid": sid,
                    "name": "thread_sort_index", "args": {"sort_index": sid}})
        start = sec["start"] if sec["start"] is not None else sec["created"]
        end = (sec["complete"] if sec["complete"] is not None
               else result.cycles)
        if sec["created"] < start:
            out.append({"ph": "X", "pid": pid, "tid": sid, "cat": "spawn",
                        "ts": sec["created"], "dur": start - sec["created"],
                        "name": "s%d spawn" % sid,
                        "args": {"parent": sec["parent"],
                                 "first_fetch": sec["first_fetch"]}})
        out.append({"ph": "X", "pid": pid, "tid": sid, "cat": "section",
                    "ts": start, "dur": max(end - start, 1),
                    "name": "s%d" % sid,
                    "args": {"sid": sid, "parent": sec["parent"],
                             "created": sec["created"],
                             "completed": sec["complete"]}})

    # -- renaming requests as flow arrows ----------------------------------
    for rid, req in sorted(requests.items()):
        home = sections.get(req["sid"])
        if home is None:
            # truncated stream: the requester's fork event is missing
            continue
        pid, tid = home["core"], req["sid"]
        name = "r%d %s %s" % (rid, req["kind"], request_what_str(req))
        fill = req["fill"] if req["fill"] is not None else result.cycles
        out.append({"ph": "b", "cat": "rename", "id": rid, "name": name,
                    "pid": pid, "tid": tid, "ts": req["issue"],
                    "args": {"kind": req["kind"], "hops": req["hops"],
                             "producer": req["producer"],
                             "dmh": req["dmh"]}})
        out.append({"ph": "e", "cat": "rename", "id": rid, "name": name,
                    "pid": pid, "tid": tid, "ts": fill})
        out.append({"ph": "s", "cat": "renameflow", "id": rid, "name": name,
                    "pid": pid, "tid": tid, "ts": req["issue"]})
        for cycle, core, sid in req["path"]:
            out.append({"ph": "t", "cat": "renameflow", "id": rid,
                        "name": name, "pid": core, "tid": sid, "ts": cycle})
        out.append({"ph": "f", "bp": "e", "cat": "renameflow", "id": rid,
                    "name": name, "pid": pid, "tid": tid, "ts": fill})

    # -- instants and counters ---------------------------------------------
    retired_per_cycle: Dict[int, int] = {}
    running = n_cores
    for cycle, kind, f in events:
        if kind == "request_dmh":
            rid = f["rid"]
            req = requests.get(rid)
            if req is None:
                continue
            out.append({"ph": "i", "s": "p", "cat": "dmh",
                        "name": "DMH read r%d" % rid, "pid": f["core"],
                        "tid": req["sid"], "ts": cycle})
        elif kind == "core_dead":
            out.append({"ph": "i", "s": "p", "cat": "fault",
                        "name": "core %d dead" % f["core"],
                        "pid": f["core"], "tid": 0, "ts": cycle})
        elif kind == "section_redispatch":
            out.append({"ph": "i", "s": "p", "cat": "fault",
                        "name": "s%d redispatch -> core %d"
                        % (f["sid"], f["dst"]),
                        "pid": f["dst"], "tid": f["sid"], "ts": cycle,
                        "args": {"src": f["src"],
                                 "first_fetch": f["first_fetch"]}})
        elif kind == "retire":
            retired_per_cycle[cycle] = retired_per_cycle.get(cycle, 0) + 1
        elif kind == "core_park":
            running -= 1
            out.append({"ph": "C", "pid": 0, "name": "running cores",
                        "ts": cycle, "args": {"cores": running}})
        elif kind == "core_wake":
            running += 1
            out.append({"ph": "C", "pid": 0, "name": "running cores",
                        "ts": cycle, "args": {"cores": running}})
    for cycle in sorted(retired_per_cycle):
        out.append({"ph": "C", "pid": 0, "name": "retired/cycle",
                    "ts": cycle, "args": {"count": retired_per_cycle[cycle]}})

    # -- windowed cycle-domain metrics as counter tracks --------------------
    # (runs with SimConfig.metrics_window set): per-link NoC traffic next
    # to the per-cycle counters above, one sample per window at its
    # opening cycle; drop/retry tracks only where faults actually hit
    metrics = getattr(result, "metrics", None)
    if metrics is not None:
        window = metrics["window"]
        for w, value in enumerate(metrics["series"]["retired"]):
            out.append({"ph": "C", "pid": 0, "name": "retired/window",
                        "ts": w * window, "args": {"count": value}})
        for link in sorted(metrics["links"]):
            entry = metrics["links"][link]
            for w, value in enumerate(entry["messages"]):
                out.append({"ph": "C", "pid": 0, "name": "noc %s" % link,
                            "ts": w * window, "args": {"messages": value}})
            if sum(entry["drops"]):
                for w, value in enumerate(entry["drops"]):
                    out.append({"ph": "C", "pid": 0,
                                "name": "noc %s drops" % link,
                                "ts": w * window, "args": {"drops": value}})

    if seek is not None:
        out = _seek_filter(out, seek)
    other: Dict[str, Any] = {
        "title": title,
        "scheduler": result.scheduler,
        "cycles": result.cycles,
        "sections": result.sections,
        "instructions": result.instructions,
    }
    if seek is not None:
        other["seek"] = seek
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
