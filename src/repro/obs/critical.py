"""Terminal critical-path report over the event stream.

The run's makespan is set by the section that completes last; this module
walks *backward* from it through the run's last-resolved dependencies — the
greedy last-producer walk: at each section take its latest-filling renaming
request, jump to the producer section that answered it (or note the DMH),
and fall back to the creating fork when no request gates the section.  The
result is a chain of sections and links that reads as "where did the
cycles at the end of the run come from", with the NoC-transit share of
each link called out — exactly the accounting the next round of
scheduler/NoC optimisation needs.

This is a greedy approximation of the true critical path (it follows the
*last* dependency at each step, not the longest chain), which matches the
paper's narrative accounting and is exact whenever the last dependency is
the binding one.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set

from .events import collect_requests, collect_sections, request_what_str


def critical_path(result: Any) -> List[Dict[str, Any]]:
    """Extract the greedy last-producer chain from ``result.events``.

    Returns a list of step dicts, most-recent first.  Step kinds:

    * ``section`` — ``sid``, ``core``, ``start``, ``complete``
    * ``request`` — ``rid``, ``req_kind``, ``what``, ``issue``, ``cycle``
      (the fill), ``hops``, ``transit_cycles``, ``producer``, ``dmh``
    * ``fork``    — ``sid`` (the child), ``parent``, ``cycle`` (creation)
    """
    if result.events is None:
        raise ValueError(
            "no event stream on this result: run the simulation with "
            "SimConfig(events=True) (CLI: repro analyze)")
    sections = collect_sections(result.events)
    requests = collect_requests(result.events)
    by_sid: Dict[int, List[Dict[str, Any]]] = {}
    for req in requests.values():
        by_sid.setdefault(req["sid"], []).append(req)

    finished = [s for s in sections.values() if s["complete"] is not None]
    if not finished:
        return []
    current = max(finished, key=lambda s: (s["complete"], s["sid"]))

    steps: List[Dict[str, Any]] = []
    seen: Set[int] = set()
    while current["sid"] not in seen:
        seen.add(current["sid"])
        start = (current["start"] if current["start"] is not None
                 else current["created"])
        steps.append({"kind": "section", "sid": current["sid"],
                      "core": current["core"], "start": start,
                      "complete": current["complete"],
                      "cycle": (current["complete"]
                                if current["complete"] is not None
                                else result.cycles)})
        filled = [r for r in by_sid.get(current["sid"], [])
                  if r["fill"] is not None]
        nxt: Optional[Dict[str, Any]] = None
        if filled:
            last = max(filled, key=lambda r: (r["fill"], r["rid"]))
            if last["fill"] > start:
                steps.append({
                    "kind": "request", "rid": last["rid"],
                    "req_kind": last["kind"],
                    "what": request_what_str(last),
                    "issue": last["issue"], "cycle": last["fill"],
                    "hops": last["hops"],
                    "transit_cycles": sum(e - s
                                          for s, e in last["transit"]),
                    "producer": last["producer"], "dmh": last["dmh"],
                })
                producer = last["producer"]
                if producer is not None and producer != current["sid"]:
                    # missing producer = truncated stream; stop the walk
                    nxt = sections.get(producer)
        if nxt is None:
            parent = current["parent"]
            if parent is None or parent not in sections:
                break
            steps.append({"kind": "fork", "sid": current["sid"],
                          "parent": parent, "cycle": current["created"]})
            nxt = sections[parent]
        current = nxt
    return steps


def render_critical_path(steps: Iterable[Dict[str, Any]],
                         total_cycles: int) -> str:
    """Human-readable rendering of :func:`critical_path` output."""
    steps = list(steps)
    if not steps:
        return "critical path: no completed sections (run still in flight?)"
    lines = ["critical path (greedy last-producer walk, run = %d cycles):"
             % total_cycles]
    transit_total = 0
    for step in steps:
        if step["kind"] == "section":
            complete = ("@%d" % step["complete"]
                        if step["complete"] is not None else "(incomplete)")
            lines.append("  s%-4d on core %-3d fetch @%d .. complete %s"
                         % (step["sid"], step["core"], step["start"],
                            complete))
        elif step["kind"] == "request":
            transit_total += step["transit_cycles"]
            source = ("DMH" if step["producer"] is None
                      else "s%d" % step["producer"])
            lines.append(
                "    <- r%d %s %s: issued @%d, filled @%d "
                "(%d hops, %d transit cycles, answered by %s)"
                % (step["rid"], step["req_kind"], step["what"],
                   step["issue"], step["cycle"], step["hops"],
                   step["transit_cycles"], source))
        else:   # fork
            lines.append("    <- forked by s%d @%d"
                         % (step["parent"], step["cycle"]))
    sections_on_path = sum(1 for s in steps if s["kind"] == "section")
    lines.append("  chain: %d sections, %d request links, "
                 "%d NoC-transit cycles on the path"
                 % (sections_on_path,
                    sum(1 for s in steps if s["kind"] == "request"),
                    transit_total))
    return "\n".join(lines)
