"""Observability for the distributed simulator (``repro.obs``).

Three layers, all built on one structured event stream:

* **event tracing** (:mod:`repro.obs.events`) — typed records (section
  fork/start/complete, renaming request issue/hop/hit/fill, NoC
  send/deliver, DMH reads, core park/wake, retirement) collected by the
  simulator when :attr:`repro.sim.SimConfig.events` is on.  Near-zero
  overhead when off: every instrumentation point is a single
  ``tracer is None`` test.  Both scheduler modes emit bit-identical
  streams (tests/sim/test_differential.py).
* **stall-cause attribution** (:mod:`repro.obs.stalls`) — splits every
  blocked/parked core cycle and every blocked section cycle into causes
  (``wait_register`` / ``wait_memory`` / ``noc_transit`` /
  ``fork_latency`` / ``no_free_core`` / ``idle``), folded into
  :class:`repro.sim.SimResult` as ``stall_causes``.
* **exporters** — a Chrome trace-event / Perfetto JSON renderer
  (:mod:`repro.obs.chrome_trace`; sections as tracks, renaming requests
  as flow arrows) and a terminal critical-path report
  (:mod:`repro.obs.critical`), wired into the CLI as ``repro trace`` and
  ``repro analyze``.
* **typed metrics** (:mod:`repro.obs.metrics`) — counters, gauges,
  fixed-bucket histograms and windowed time-series in two strictly
  separated domains: deterministic *cycle-domain* series derived
  post-hoc from a finished run (bit-identical across all three kernels;
  :attr:`repro.sim.SimConfig.metrics_window`) and wall-clock
  *host-domain* telemetry of the batch engine.  Exported as JSON
  (``repro metrics``) and Prometheus text exposition.

Design rule: nothing in this package imports :mod:`repro.sim` at module
level (the simulator imports us), so every module here works on duck-typed
results/processors and resolves simulator constants at call time.
"""

from .chrome_trace import to_chrome_trace
from .critical import critical_path, render_critical_path
from .events import (EVENT_KINDS, EventTrace, collect_requests,
                     collect_sections, events_to_json, request_what_str,
                     synthesize_core_events)
from .metrics import (CYCLE_DOMAIN, HOST_DOMAIN, METRICS_SCHEMA_VERSION,
                      Counter, Gauge, Histogram, MetricsRegistry,
                      TimeSeries, cycle_metrics_to_registry,
                      derive_cycle_metrics, merge_series,
                      render_prometheus, state_series)
from .stalls import (STALL_CAUSES, attribute_stalls, live_request_cause,
                     stall_diagnostic, summarize_causes)

__all__ = [
    "CYCLE_DOMAIN", "Counter", "EVENT_KINDS", "EventTrace", "Gauge",
    "HOST_DOMAIN", "Histogram", "METRICS_SCHEMA_VERSION",
    "MetricsRegistry", "STALL_CAUSES", "TimeSeries", "attribute_stalls",
    "collect_requests", "collect_sections", "critical_path",
    "cycle_metrics_to_registry", "derive_cycle_metrics", "events_to_json",
    "live_request_cause", "merge_series", "render_critical_path",
    "render_prometheus", "request_what_str", "stall_diagnostic",
    "state_series", "summarize_causes", "synthesize_core_events",
    "to_chrome_trace",
]
