"""Observability for the distributed simulator (``repro.obs``).

Three layers, all built on one structured event stream:

* **event tracing** (:mod:`repro.obs.events`) — typed records (section
  fork/start/complete, renaming request issue/hop/hit/fill, NoC
  send/deliver, DMH reads, core park/wake, retirement) collected by the
  simulator when :attr:`repro.sim.SimConfig.events` is on.  Near-zero
  overhead when off: every instrumentation point is a single
  ``tracer is None`` test.  Both scheduler modes emit bit-identical
  streams (tests/sim/test_differential.py).
* **stall-cause attribution** (:mod:`repro.obs.stalls`) — splits every
  blocked/parked core cycle and every blocked section cycle into causes
  (``wait_register`` / ``wait_memory`` / ``noc_transit`` /
  ``fork_latency`` / ``no_free_core`` / ``idle``), folded into
  :class:`repro.sim.SimResult` as ``stall_causes``.
* **exporters** — a Chrome trace-event / Perfetto JSON renderer
  (:mod:`repro.obs.chrome_trace`; sections as tracks, renaming requests
  as flow arrows) and a terminal critical-path report
  (:mod:`repro.obs.critical`), wired into the CLI as ``repro trace`` and
  ``repro analyze``.

Design rule: nothing in this package imports :mod:`repro.sim` at module
level (the simulator imports us), so every module here works on duck-typed
results/processors and resolves simulator constants at call time.
"""

from .chrome_trace import to_chrome_trace
from .critical import critical_path, render_critical_path
from .events import (EVENT_KINDS, EventTrace, collect_requests,
                     collect_sections, events_to_json, request_what_str,
                     synthesize_core_events)
from .stalls import (STALL_CAUSES, attribute_stalls, live_request_cause,
                     stall_diagnostic, summarize_causes)

__all__ = [
    "EVENT_KINDS", "EventTrace", "STALL_CAUSES", "attribute_stalls",
    "collect_requests", "collect_sections", "critical_path",
    "events_to_json", "live_request_cause", "render_critical_path",
    "request_what_str", "stall_diagnostic", "summarize_causes",
    "synthesize_core_events", "to_chrome_trace",
]
