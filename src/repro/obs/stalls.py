"""Stall-cause attribution: *why* was a core (or section) not fetching?

The occupancy layer of PR 1 says a core was ``blocked`` without saying on
what.  This module splits every blocked/parked core cycle — and every
non-fetching cycle of every section's lifetime — into one of these causes:

=================  ==========================================================
cause              meaning
=================  ==========================================================
``wait_register``  a register renaming request is parked at a producer
                   section (not yet fetch-final / value not yet produced),
                   or the core waits on a local register dependency chain
``wait_memory``    same for memory: a MAAT import awaiting a producer or
                   the DMH, or an in-flight load in the local pipeline
``noc_transit``    the blocking request is travelling — a section-to-section
                   hop, the reply flight home, or the architectural port
                   hop (same-core walks cost one cycle per section and
                   count here too: the walk *is* the transport)
``fork_latency``   a forked section exists but sits in its
                   ``section_create_latency`` window before first fetch
``no_free_core``   a section was runnable but its host core's fetch stage
                   was serving another section — on a larger machine this
                   section would have been placed on a free core
``fault_recovery`` injected-fault recovery (repro.faults): the re-dispatch
                   window after a fail-stop, or a dropped message's backoff
                   wait — zero in every fault-free run
``idle``           the core hosts no live section at all
=================  ==========================================================

Attribution is computed *post-hoc* from the structured event stream plus
the (mode-identical) per-cycle core-state timeline, so the naive and
event-driven schedulers can't disagree; a cycle with several candidate
causes resolves by the fixed priority ``wait_memory`` > ``wait_register``
> ``noc_transit`` > not-started (fork/no-free-core) > local pipeline.

:func:`live_request_cause` classifies an *in-flight* request from its
current state with the same taxonomy; it backs the deadlock diagnostic
(:func:`stall_diagnostic`), which is what ``Processor._stall_diagnostic``
now delegates to — one classifier, two consumers.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import collect_fault_windows, collect_requests

#: the taxonomy, in report order
STALL_CAUSES = ("wait_register", "wait_memory", "noc_transit",
                "fork_latency", "no_free_core", "fault_recovery", "idle")


class _IntervalSet:
    """Merged sorted set of half-open-left cycle windows ``(s, e]``."""

    __slots__ = ("starts", "ends")

    def __init__(self, intervals: Iterable[Tuple[int, int]]) -> None:
        merged: List[Tuple[int, int]] = []
        for s, e in sorted(i for i in intervals if i[1] > i[0]):
            if merged and s <= merged[-1][1]:
                last = merged[-1]
                merged[-1] = (last[0], max(last[1], e))
            else:
                merged.append((s, e))
        self.starts = [s for s, _ in merged]
        self.ends = [e for _, e in merged]

    def covers(self, cycle: int) -> bool:
        index = bisect_right(self.starts, cycle - 1) - 1
        return index >= 0 and cycle <= self.ends[index]


def _subtract(window: Tuple[int, int],
              cuts: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """``(s, e]`` minus a list of ``(s, e]`` cuts."""
    start, end = window
    out: List[Tuple[int, int]] = []
    for cut_start, cut_end in sorted(cuts):
        if cut_end <= start:
            continue
        if cut_start >= end:
            break
        if cut_start > start:
            out.append((start, cut_start))
        start = max(start, cut_end)
        if start >= end:
            return out
    if start < end:
        out.append((start, end))
    return out


class _SectionView:
    """Per-section timing material the attributor classifies against."""

    __slots__ = ("sid", "core", "created", "completed", "first_fetch",
                 "start", "fetch_set", "transit", "wait_reg", "wait_mem",
                 "load_wait", "fault")

    def __init__(self, sec: Any, horizon: int,
                 requests: List[Dict[str, Any]],
                 fault_windows: Optional[List[Tuple[int, int]]] = None
                 ) -> None:
        self.sid = sec.sid
        self.core = sec.core_id
        self.created = sec.created_cycle
        self.completed = (sec.completed_cycle
                          if sec.completed_cycle is not None else horizon)
        self.first_fetch = sec.first_fetch_cycle
        instrs = sec.instructions
        self.start = instrs[0].timing.fd if instrs else None
        self.fetch_set = frozenset(d.timing.fd for d in instrs)
        transit: List[Tuple[int, int]] = []
        wait_reg: List[Tuple[int, int]] = []
        wait_mem: List[Tuple[int, int]] = []
        for req in requests:
            fill = req["fill"] if req["fill"] is not None else horizon
            active = (req["issue"], fill)
            transit.extend(req["transit"])
            waits = _subtract(active, req["transit"])
            (wait_reg if req["kind"] == "reg" else wait_mem).extend(waits)
        self.transit = _IntervalSet(transit)
        self.wait_reg = _IntervalSet(wait_reg)
        self.wait_mem = _IntervalSet(wait_mem)
        self.fault = _IntervalSet(fault_windows or [])
        # loads sitting in the LSQ between address rename and memory access
        self.load_wait = _IntervalSet(
            (d.timing.ar, d.timing.ma if d.timing.ma is not None else horizon)
            for d in instrs
            if d.is_load and d.timing.ar is not None)

    def live_at(self, cycle: int) -> bool:
        return self.created < cycle <= self.completed


def _classify(views: List[_SectionView], cycle: int) -> str:
    """Cause of one blocked cycle given the live sections to blame."""
    if not views:
        return "idle"
    # recovery windows outrank everything: during them the section is not
    # waiting on a dependency but on the fault machinery itself
    for view in views:
        if view.fault.covers(cycle):
            return "fault_recovery"
    for view in views:
        if view.wait_mem.covers(cycle):
            return "wait_memory"
    for view in views:
        if view.wait_reg.covers(cycle):
            return "wait_register"
    for view in views:
        if view.transit.covers(cycle):
            return "noc_transit"
    not_started = [v for v in views
                   if v.start is None or cycle < v.start]
    if not_started:
        if any(cycle < v.first_fetch for v in not_started):
            return "fork_latency"
        return "no_free_core"
    for view in views:
        if view.load_wait.covers(cycle):
            return "wait_memory"
    return "wait_register"


def attribute_stalls(proc: Any) -> Dict[str, Any]:
    """Attribute every blocked/parked cycle of a finished (or deadlocked)
    run.  Requires the run to have collected events and per-cycle core
    states (``SimConfig.events`` turns both on).

    Returns ``{"causes", "totals", "per_core", "per_section"}`` where
    ``per_core[i]`` sums to core *i*'s blocked + parked occupancy and
    ``per_section[sid]`` sums to that section's ``blocked_cycles``.
    """
    from ..sim.stats import BLOCKED, PARKED       # at call time: no cycle
    requests = collect_requests(proc.tracer.events)
    by_sid: Dict[int, List[Dict[str, Any]]] = {}
    for req in requests.values():
        by_sid.setdefault(req["sid"], []).append(req)
    fault_windows = collect_fault_windows(proc.tracer.events)
    horizon = proc.cycle
    views = [_SectionView(sec, horizon, by_sid.get(sec.sid, []),
                          fault_windows.get(sec.sid))
             for sec in proc.sections]
    views_by_core: Dict[int, List[_SectionView]] = {}
    for view in views:
        views_by_core.setdefault(view.core, []).append(view)

    per_core: List[Dict[str, int]] = []
    totals = {cause: 0 for cause in STALL_CAUSES}
    for core in proc.cores:
        counts = {cause: 0 for cause in STALL_CAUSES}
        hosted = sorted(views_by_core.get(core.id, []),
                        key=lambda v: v.sid)
        states = core.trace_states or []
        for i, state in enumerate(states):
            if state != BLOCKED and state != PARKED:
                continue
            cycle = i + 1
            live = [v for v in hosted if v.live_at(cycle)]
            counts[_classify(live, cycle)] += 1
        per_core.append(counts)
        for cause, n in counts.items():
            totals[cause] += n

    per_section: Dict[int, Dict[str, int]] = {}
    for view in views:
        counts = {cause: 0 for cause in STALL_CAUSES}
        for cycle in range(view.created + 1, view.completed + 1):
            if cycle in view.fetch_set:
                continue
            counts[_classify([view], cycle)] += 1
        per_section[view.sid] = counts

    return {"causes": list(STALL_CAUSES), "totals": totals,
            "per_core": per_core, "per_section": per_section}


def summarize_causes(counts: Dict[str, int]) -> str:
    """One-line rendering of a cause histogram, stable order."""
    return "  ".join("%s=%d" % (cause, counts.get(cause, 0))
                     for cause in STALL_CAUSES)


# ---------------------------------------------------------------------------
# live classification — the deadlock diagnostic's view of the same taxonomy
# ---------------------------------------------------------------------------

def live_request_cause(req: Any, now: int) -> str:
    """Classify an in-flight request *right now* with the same cause names
    the attributor assigns historically."""
    if req.reply_cycle is not None:
        return "noc_transit"
    if req.hit_cell is not None:
        return "wait_register" if req.kind == "reg" else "wait_memory"
    if req.wake_cycle > now:
        return "noc_transit"
    return "wait_register" if req.kind == "reg" else "wait_memory"


def stall_diagnostic(proc: Any) -> str:
    """Describe why a run is stuck (cycle budget exhausted): the stuck
    sections plus every pending request tagged with its live stall cause.
    Shares :func:`live_request_cause` with the attributor so the deadlock
    message and the per-cycle attribution can't drift apart."""
    stuck = [sec for sec in proc.sections if not sec.complete]
    parts: List[str] = []
    for sec in stuck[:8]:
        head = sec.rob[0] if sec.rob else None
        parts.append("s%d(ip=%s, fetched=%d, renamed=%d, rob=%d, head=%s)"
                     % (sec.sid, sec.ip, len(sec.instructions),
                        sec.renamed_count, len(sec.rob),
                        head.tag if head else "-"))
    pending = ["%s [%s]" % (req.describe(),
                            live_request_cause(req, proc.cycle))
               for req in proc.requests if not req.done]
    message = "stuck sections: %s; pending requests: %s" % (
        "; ".join(parts), "; ".join(pending[:8]))
    dead = [c.id for c in proc.cores if getattr(c, "dead", False)]
    if dead:
        message += "; dead cores: %s" % dead
    return message
