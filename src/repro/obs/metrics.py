"""Typed metrics: instruments, a two-domain registry, and exporters.

Two strictly separated metric domains share the instrument vocabulary
(counters, gauges, fixed-bucket histograms, windowed time-series) but
never mix in one export:

* **cycle domain** (``domain="cycle"``) — derived *deterministically*
  from a finished simulation.  :func:`derive_cycle_metrics` folds the
  run's bit-identical artifacts (per-instruction stage timings, the
  per-cycle core-state timeline, section/request lifecycles, the
  per-link transfer log, the fault engine's drop/retry log) into
  windowed series sampled every ``SimConfig.metrics_window`` cycles.
  Because every input is proven identical across the naive, event and
  vector kernels (``tests/sim/test_differential_vector.py``), the
  derived series are bit-identical too — metrics are *post-hoc
  accounting*, never live sampling, which the cycle-skipping kernels
  could not reproduce.
* **host domain** (``domain="host"``) — wall-clock telemetry of the
  batch engine (:mod:`repro.runner`): per-job phase timings, cache
  hit/miss/heal counters, worker-pool concurrency.  Host metrics are
  non-deterministic by nature and therefore **never enter
  content-addressed cached payloads** or timing-free differential
  reports.

Exporters: :meth:`MetricsRegistry.to_json_dict` (stable JSON under
:data:`METRICS_SCHEMA_VERSION`), :func:`render_prometheus` (text
exposition for the future ``repro serve`` daemon), and the Chrome-trace
counter tracks merged in :mod:`repro.obs.chrome_trace`.

Design rule (package-wide): nothing here imports :mod:`repro.sim` at
module level — the processor handed to :func:`derive_cycle_metrics` is
duck-typed.
"""

from __future__ import annotations

from typing import (Any, Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple, Union)

#: version stamped into every metrics export and trajectory row, bumped
#: whenever the JSON shape changes so downstream dashboards can gate
METRICS_SCHEMA_VERSION = 1

#: the two domains; a registry belongs to exactly one
CYCLE_DOMAIN = "cycle"
HOST_DOMAIN = "host"

#: label sets are carried as sorted (key, value) pairs so instruments
#: hash/compare stably and the JSON export is canonical
Labels = Tuple[Tuple[str, str], ...]


def _labels(labels: Mapping[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_str(labels: Labels) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (k, v) for k, v in labels)


def _num(value: float) -> Union[int, float]:
    """Render integral floats as ints so JSON stays clean."""
    return int(value) if float(value).is_integer() else value


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "",
                 labels: Labels = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % (amount,))
        self.value += amount

    def to_json_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "name": self.name, "help": self.help,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """Point-in-time value (may go up or down)."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "",
                 labels: Labels = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def to_json_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "name": self.name, "help": self.help,
                "labels": dict(self.labels), "value": _num(self.value)}


class Histogram:
    """Fixed-bucket histogram (cumulative buckets on export, Prometheus
    convention): ``bounds`` are inclusive upper edges, with an implicit
    ``+Inf`` overflow bucket."""

    __slots__ = ("name", "help", "labels", "bounds", "counts", "sum",
                 "count")

    def __init__(self, name: str, bounds: Sequence[float], help: str = "",
                 labels: Labels = ()) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be sorted and unique")
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)   # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Order-independent combination: bucket-wise sum.  Bounds must
        match (merging histograms of different shape is meaningless)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with bounds %r and %r"
                             % (self.bounds, other.bounds))
        merged = Histogram(self.name, self.bounds, self.help, self.labels)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.sum = self.sum + other.sum
        merged.count = self.count + other.count
        return merged

    def to_json_dict(self) -> Dict[str, Any]:
        return {"type": "histogram", "name": self.name, "help": self.help,
                "labels": dict(self.labels), "bounds": list(self.bounds),
                "counts": list(self.counts), "sum": _num(self.sum),
                "count": self.count}


class TimeSeries:
    """Windowed integer series: ``values[w]`` accumulates observations
    whose cycle falls in window ``w`` (cycle ``c >= 1`` belongs to window
    ``(c - 1) // window``).  The fixed length makes merges and exports
    shape-stable regardless of which windows saw events."""

    __slots__ = ("name", "help", "labels", "window", "values")

    def __init__(self, name: str, window: int, n_windows: int,
                 help: str = "", labels: Labels = ()) -> None:
        if window < 1:
            raise ValueError("window must be >= 1 (got %r)" % (window,))
        if n_windows < 0:
            raise ValueError("n_windows must be >= 0")
        self.name = name
        self.help = help
        self.labels = labels
        self.window = window
        self.values = [0] * n_windows

    def observe(self, cycle: int, amount: int = 1) -> None:
        """Account *amount* to *cycle*'s window; cycles outside the run
        horizon clamp to the nearest window (events stamped a few cycles
        past the end — e.g. a retry ladder's last timeout — still count)."""
        if not self.values:
            return
        index = (cycle - 1) // self.window if cycle >= 1 else 0
        index = max(0, min(len(self.values) - 1, index))
        self.values[index] += amount

    def total(self) -> int:
        return sum(self.values)

    def last(self) -> int:
        return self.values[-1] if self.values else 0

    def merge(self, other: "TimeSeries") -> "TimeSeries":
        """Order-independent combination: element-wise sum.  Windows and
        lengths must match."""
        if other.window != self.window or len(other.values) != \
                len(self.values):
            raise ValueError(
                "cannot merge series with shape (window=%d, n=%d) into "
                "(window=%d, n=%d)" % (other.window, len(other.values),
                                       self.window, len(self.values)))
        merged = TimeSeries(self.name, self.window, len(self.values),
                            self.help, self.labels)
        merged.values = [a + b for a, b in zip(self.values, other.values)]
        return merged

    def to_json_dict(self) -> Dict[str, Any]:
        return {"type": "series", "name": self.name, "help": self.help,
                "labels": dict(self.labels), "window": self.window,
                "values": list(self.values)}


Instrument = Union[Counter, Gauge, Histogram, TimeSeries]


class MetricsRegistry:
    """Named, labelled instruments of one domain, in registration order.

    ``counter``/``gauge``/``histogram``/``series`` are get-or-create (the
    same name + label set returns the same instrument), so callers
    instrument code paths without pre-declaring anything.
    """

    def __init__(self, domain: str) -> None:
        if domain not in (CYCLE_DOMAIN, HOST_DOMAIN):
            raise ValueError("unknown metrics domain %r" % (domain,))
        self.domain = domain
        self._instruments: Dict[Tuple[str, Labels], Instrument] = {}

    def _get(self, name: str, labels: Mapping[str, str],
             kind: type) -> Optional[Instrument]:
        found = self._instruments.get((name, _labels(labels)))
        if found is None:
            return None
        if not isinstance(found, kind):
            raise ValueError("metric %r already registered as %s"
                             % (name, type(found).__name__))
        return found

    def counter(self, name: str, help: str = "",
                **labels: str) -> Counter:
        existing = self._get(name, labels, Counter)
        if existing is None:
            existing = Counter(name, help, _labels(labels))
            self._instruments[(name, existing.labels)] = existing
        assert isinstance(existing, Counter)
        return existing

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        existing = self._get(name, labels, Gauge)
        if existing is None:
            existing = Gauge(name, help, _labels(labels))
            self._instruments[(name, existing.labels)] = existing
        assert isinstance(existing, Gauge)
        return existing

    def histogram(self, name: str, bounds: Sequence[float],
                  help: str = "", **labels: str) -> Histogram:
        existing = self._get(name, labels, Histogram)
        if existing is None:
            existing = Histogram(name, bounds, help, _labels(labels))
            self._instruments[(name, existing.labels)] = existing
        assert isinstance(existing, Histogram)
        return existing

    def series(self, name: str, window: int, n_windows: int,
               help: str = "", **labels: str) -> TimeSeries:
        existing = self._get(name, labels, TimeSeries)
        if existing is None:
            existing = TimeSeries(name, window, n_windows, help,
                                  _labels(labels))
            self._instruments[(name, existing.labels)] = existing
        assert isinstance(existing, TimeSeries)
        return existing

    def instruments(self) -> List[Instrument]:
        return list(self._instruments.values())

    def to_json_dict(self) -> Dict[str, Any]:
        return {"schema_version": METRICS_SCHEMA_VERSION,
                "domain": self.domain,
                "metrics": [inst.to_json_dict()
                            for inst in self._instruments.values()]}

    def render_prometheus(self, prefix: str = "repro") -> str:
        return render_prometheus(self.to_json_dict(), prefix=prefix)


# ---------------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4 format)
# ---------------------------------------------------------------------------

def render_prometheus(payload: Mapping[str, Any],
                      prefix: str = "repro") -> str:
    """Render a registry JSON export as Prometheus text exposition.

    Operating on the JSON form (not live instruments) means anything that
    can ship a metrics payload — a finished ``SimResult``, a batch
    report, the future ``repro serve`` daemon — can expose it without
    holding registry objects.  Series flatten to ``<name>_total`` plus a
    ``<name>_last`` gauge of the final window (a scrape is a snapshot;
    the full series belongs to the JSON export).
    """
    domain = str(payload.get("domain", ""))
    lines: List[str] = []
    seen_headers = set()

    def header(name: str, kind: str, help_text: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if help_text:
            lines.append("# HELP %s %s" % (name, help_text))
        lines.append("# TYPE %s %s" % (name, kind))

    for inst in payload.get("metrics", ()):
        labels = dict(inst.get("labels", {}))
        labels["domain"] = domain
        rendered = _label_str(_labels(labels))
        name = "%s_%s" % (prefix, inst["name"])
        kind = inst["type"]
        help_text = str(inst.get("help", ""))
        if kind == "counter":
            header(name, "counter", help_text)
            lines.append("%s%s %s" % (name, rendered, inst["value"]))
        elif kind == "gauge":
            header(name, "gauge", help_text)
            lines.append("%s%s %s" % (name, rendered, inst["value"]))
        elif kind == "histogram":
            header(name, "histogram", help_text)
            cumulative = 0
            for bound, count in zip(inst["bounds"], inst["counts"]):
                cumulative += count
                bucket = dict(labels, le=repr(float(bound)))
                lines.append("%s_bucket%s %d"
                             % (name, _label_str(_labels(bucket)),
                                cumulative))
            bucket = dict(labels, le="+Inf")
            lines.append("%s_bucket%s %d"
                         % (name, _label_str(_labels(bucket)),
                            inst["count"]))
            lines.append("%s_sum%s %s" % (name, rendered, inst["sum"]))
            lines.append("%s_count%s %d" % (name, rendered, inst["count"]))
        elif kind == "series":
            values = list(inst["values"])
            header(name + "_total", "counter", help_text)
            lines.append("%s_total%s %d" % (name, rendered, sum(values)))
            header(name + "_last", "gauge",
                   "last %d-cycle window of %s"
                   % (inst["window"], inst["name"]))
            lines.append("%s_last%s %s"
                         % (name, rendered, values[-1] if values else 0))
        else:
            raise ValueError("unknown instrument type %r" % (kind,))
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# cycle-domain derivation — post-hoc, from bit-identical run artifacts
# ---------------------------------------------------------------------------

def window_count(cycles: int, window: int) -> int:
    """Number of windows covering cycles ``1..cycles`` (last may be
    partial); 0 for an empty run."""
    return (cycles + window - 1) // window


def window_lengths(cycles: int, window: int) -> List[int]:
    """Cycle count of each window (all ``window`` except a partial tail)."""
    n = window_count(cycles, window)
    return [min(window, cycles - w * window) for w in range(n)]


def state_series(states: Sequence[int], window: int, n_windows: int,
                 n_states: int = 4) -> List[List[int]]:
    """Per-state windowed core-cycle counts of one core's per-cycle state
    timeline (state at index ``i`` is cycle ``i + 1``).  Returns one
    series per state index — the per-core building block whose
    order-independent merge is the chip-wide breakdown."""
    out = [[0] * n_windows for _ in range(n_states)]
    for i, state in enumerate(states):
        w = i // window
        if w >= n_windows:
            break
        out[state][w] += 1
    return out


def merge_series(series: Iterable[Sequence[int]]) -> List[int]:
    """Element-wise sum of equally-shaped series.  Commutative and
    associative, so merge order can never matter — the property the
    hypothesis suite pins down."""
    merged: Optional[List[int]] = None
    for one in series:
        if merged is None:
            merged = list(one)
        else:
            if len(one) != len(merged):
                raise ValueError("cannot merge series of lengths %d and %d"
                                 % (len(one), len(merged)))
            merged = [a + b for a, b in zip(merged, one)]
    return merged if merged is not None else []


def _link_name(src: int, dst: int) -> str:
    """Stable per-link key; the DMH port is endpoint ``-1`` (matching the
    fault engine's convention)."""
    return "%s->%d" % ("dmh" if src < 0 else str(src), dst)


def derive_cycle_metrics(proc: Any, window: int) -> Dict[str, Any]:
    """Fold a finished processor's artifacts into the windowed
    cycle-domain metrics dict carried in ``SimResult.metrics``.

    Every input is part of the three-kernel bit-identity contract:
    instruction stage timings, section/request lifecycles, the per-cycle
    core-state timeline (``trace_states``), the per-link transfer log
    (``Processor.metrics_hops``) and the fault engine's drop/retry/
    redispatch log (``Processor.metrics_faults``).  All series are
    integer counts per window (floats appear only in ``retire_rate``,
    computed from those integers), so "bit-identical" is exact.
    """
    cycles = int(proc.cycle)
    n = window_count(cycles, window)
    lengths = window_lengths(cycles, window)

    def bucket(cycle: int) -> int:
        if cycle < 1:
            return 0
        return min(n - 1, (cycle - 1) // window)

    def counted(cycles_iter: Iterable[int]) -> List[int]:
        values = [0] * n
        for cycle in cycles_iter:
            if n:
                values[bucket(cycle)] += 1
        return values

    instrs = proc.all_instructions()
    fetched = counted(d.timing.fd for d in instrs)
    retired = counted(d.timing.ret for d in instrs
                      if d.timing.ret is not None)
    forks = counted(sec.created_cycle for sec in proc.sections
                    if sec.created_cycle >= 1)
    completions = counted(sec.completed_cycle for sec in proc.sections
                          if sec.completed_cycle is not None)
    issued = counted(req.issued_cycle for req in proc.requests)
    filled = counted(req.dest_cell.ready_cycle for req in proc.requests
                     if req.done and req.dest_cell.ready_cycle is not None)

    # request-queue depth, sampled at each window's closing cycle: a
    # request is in the queue from its issue until its fill (never, for
    # a marooned request).  Difference-array accumulation keeps this
    # O(requests + windows).
    depth_delta = [0] * (n + 1)
    for req in proc.requests:
        fill = (req.dest_cell.ready_cycle
                if req.done and req.dest_cell.ready_cycle is not None
                else None)
        first = bucket(req.issued_cycle)
        last = bucket(fill) - 1 if fill is not None else n - 1
        if n and last >= first:
            depth_delta[first] += 1
            depth_delta[last + 1] -= 1
    queue_depth: List[int] = []
    running_total = 0
    for w in range(n):
        running_total += depth_delta[w]
        queue_depth.append(running_total)

    # per-core state timelines -> chip-wide windowed breakdown.  The
    # merge across cores is order-independent (merge_series), which the
    # hypothesis suite cross-checks against occupancy and stall totals.
    per_core = [state_series(core.trace_states or (), window, n)
                for core in proc.cores]
    core_state_cycles = [merge_series(core_rows[state]
                                      for core_rows in per_core)
                         or [0] * n
                         for state in range(4)]

    # per-link NoC utilization from the transfer log (one entry per
    # record_transfer call, plus the DMH port replies)
    links: Dict[str, Dict[str, List[int]]] = {}

    def link_entry(src: int, dst: int) -> Dict[str, List[int]]:
        name = _link_name(src, dst)
        entry = links.get(name)
        if entry is None:
            entry = {"messages": [0] * n, "busy_cycles": [0] * n,
                     "drops": [0] * n, "retries": [0] * n}
            links[name] = entry
        return entry

    noc_messages = [0] * n
    noc_busy = [0] * n
    dmh_reads = [0] * n
    for cycle, src, dst, latency in (proc.metrics_hops or ()):
        entry = link_entry(src, dst)
        w = bucket(cycle)
        entry["messages"][w] += 1
        entry["busy_cycles"][w] += latency
        if src < 0:
            dmh_reads[w] += 1
        else:
            noc_messages[w] += 1
            noc_busy[w] += latency

    drops = [0] * n
    retries = [0] * n
    redispatches = [0] * n
    for cycle, kind, src, dst in (proc.metrics_faults or ()):
        w = bucket(cycle)
        if kind == "drop":
            drops[w] += 1
            link_entry(src, dst)["drops"][w] += 1
        elif kind == "retry":
            retries[w] += 1
            link_entry(src, dst)["retries"][w] += 1
        elif kind == "redispatch":
            redispatches[w] += 1

    retire_rate = [retired[w] / lengths[w] if lengths[w] else 0.0
                   for w in range(n)]
    running = merge_series(core_state_cycles[:2]) or [0] * n

    series: Dict[str, Any] = {
        "fetched": fetched,
        "retired": retired,
        "retire_rate": retire_rate,
        "forks": forks,
        "completions": completions,
        "requests_issued": issued,
        "requests_filled": filled,
        "request_queue_depth": queue_depth,
        "running_core_cycles": running,
        "parked_core_cycles": core_state_cycles[3],
        "core_state_cycles": {
            "fetching": core_state_cycles[0],
            "computing": core_state_cycles[1],
            "blocked": core_state_cycles[2],
            "parked": core_state_cycles[3],
        },
        "noc_messages": noc_messages,
        "noc_busy_cycles": noc_busy,
        "dmh_reads": dmh_reads,
        "drops": drops,
        "retries": retries,
        "redispatches": redispatches,
    }
    totals = {
        "fetched": sum(fetched),
        "retired": sum(retired),
        "forks": sum(forks),
        "completions": sum(completions),
        "requests_issued": sum(issued),
        "requests_filled": sum(filled),
        "noc_messages": sum(noc_messages),
        "noc_busy_cycles": sum(noc_busy),
        "dmh_reads": sum(dmh_reads),
        "drops": sum(drops),
        "retries": sum(retries),
        "redispatches": sum(redispatches),
    }
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "domain": CYCLE_DOMAIN,
        "window": window,
        "cycles": cycles,
        "windows": n,
        "series": series,
        "links": {name: links[name] for name in sorted(links)},
        "totals": totals,
    }


def cycle_metrics_to_registry(metrics: Mapping[str, Any]) -> MetricsRegistry:
    """Lift a ``SimResult.metrics`` dict into a registry (for Prometheus
    exposition): integer series become :class:`TimeSeries`, per-link
    traffic becomes labelled series, scalars become gauges."""
    reg = MetricsRegistry(CYCLE_DOMAIN)
    window = int(metrics["window"])
    n = int(metrics["windows"])
    reg.gauge("sim_cycles", "total simulated cycles").set(
        int(metrics["cycles"]))
    reg.gauge("sim_metrics_window", "sampling window, cycles").set(window)
    series = metrics["series"]
    for name in ("fetched", "retired", "forks", "completions",
                 "requests_issued", "requests_filled",
                 "request_queue_depth", "running_core_cycles",
                 "parked_core_cycles", "noc_messages", "noc_busy_cycles",
                 "dmh_reads", "drops", "retries", "redispatches"):
        inst = reg.series("sim_" + name, window, n)
        inst.values = [int(v) for v in series[name]]
    for state, values in series["core_state_cycles"].items():
        inst = reg.series("sim_core_state_cycles", window, n, state=state)
        inst.values = [int(v) for v in values]
    for link, entry in metrics["links"].items():
        for key in ("messages", "busy_cycles", "drops", "retries"):
            inst = reg.series("sim_noc_link_" + key, window, n, link=link)
            inst.values = [int(v) for v in entry[key]]
    return reg
