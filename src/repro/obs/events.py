"""Structured event records emitted by the simulator.

An event is the plain tuple ``(cycle, kind, fields)`` — hashable-free and
directly comparable, which is what the differential harness relies on: the
naive and event-driven schedulers must produce *equal* streams.  ``fields``
is a small dict whose keys depend on ``kind``:

===================  ========================================================
kind                 fields
===================  ========================================================
``section_fork``     ``parent``, ``child``, ``core``, ``first_fetch``
``section_start``    ``sid``, ``core`` — the section's first fetched cycle
``section_complete`` ``sid``, ``core`` — last instruction retired
``request_issue``    ``rid``, ``kind`` ("reg"/"mem"), ``sid``, ``core``,
                     ``what`` (register name or word address)
``request_hop``      ``rid``, ``src``, ``dst`` (cores), ``sid`` (section the
                     request travels to), ``wait`` (cycles the request is in
                     flight; 0 = same-core route, no delay)
``request_hit``      ``rid``, ``sid`` (producer section), ``core``
``request_dmh``      ``rid``, ``core`` (requester), ``arrive`` (reply cycle)
``request_reply``    ``rid``, ``src``, ``dst`` (cores), ``arrive``
``request_fill``     ``rid``, ``sid`` (requester), ``value``
``noc_send``         ``src``, ``dst``, ``latency`` — any cross-core message
``noc_deliver``      ``src``, ``dst`` — stamped at the arrival cycle
``retire``           ``sid``, ``index`` — one per retired instruction
``core_park``        ``core``, ``state`` ("blocked"/"parked"); synthesized
``core_wake``        ``core``; synthesized from the per-cycle state timeline
``fault_injected``   ``fault`` ("drop"/"spike"/"jitter"/"ack_loss") plus
                     fault-specific fields (``rid``/``src``/``dst``/
                     ``attempt``/``extra``/``core``) — repro.faults
``msg_retry``        ``rid``, ``sid``, ``src``, ``dst``, ``attempt``,
                     ``wait`` — re-send after a drop timeout, stamped at
                     the re-send cycle (``wait`` cycles after the drop)
``section_redispatch`` ``sid``, ``src``, ``dst`` (cores), ``first_fetch``
                     — fail-stop recovery restarted the section
``core_dead``        ``core`` — fail-stop at this cycle
===================  ========================================================

``core_park`` / ``core_wake`` are *derived* from the per-cycle core-state
trace rather than from the event-driven scheduler's park machinery — the
naive scheduler never parks, so deriving them from the (mode-identical)
state timeline is what keeps the two streams equal.
"""

from __future__ import annotations

from typing import (Any, Dict, FrozenSet, Iterable, List, Sequence, Set,
                    Tuple)

#: every event kind the simulator can emit, in rough pipeline order
EVENT_KINDS = (
    "section_fork", "section_start", "section_complete",
    "request_issue", "request_hop", "request_hit", "request_dmh",
    "request_reply", "request_fill",
    "noc_send", "noc_deliver", "retire",
    "core_park", "core_wake",
    "fault_injected", "msg_retry", "section_redispatch", "core_dead",
)

Event = Tuple[int, str, Dict[str, Any]]


class EventTrace:
    """Append-only event collector owned by a :class:`~repro.sim.Processor`.

    The simulator holds ``tracer = None`` when tracing is off, so the
    per-emission cost in the disabled (default) configuration is a single
    attribute load and ``is None`` test at each instrumentation point.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, cycle: int, kind: str, /, **fields: Any) -> None:
        # positional-only so a field may itself be named "kind"
        # (request_issue carries kind="reg"/"mem")
        self.events.append((cycle, kind, fields))


def synthesize_core_events(states_per_core: Sequence[Sequence[int]],
                           state_names: Sequence[str],
                           stalled_states: Iterable[int]) -> List[Event]:
    """Derive ``core_park`` / ``core_wake`` events from the per-cycle state
    timeline (state index ``i`` is cycle ``i + 1``).

    A park event opens every maximal run of cycles whose state is in
    *stalled_states* (carrying the run's first state name), and a wake
    event closes it — but only if the core actually resumed before the end
    of the run.  Pure function of the timeline, hence scheduler-agnostic.
    """
    events: List[Event] = []
    stalled_set = frozenset(stalled_states)
    for core_id, states in enumerate(states_per_core):
        if not states:
            continue
        in_stall = False
        for i, state in enumerate(states):
            stalled = state in stalled_set
            if stalled and not in_stall:
                events.append((i + 1, "core_park",
                               {"core": core_id,
                                "state": state_names[state]}))
            elif not stalled and in_stall:
                events.append((i + 1, "core_wake", {"core": core_id}))
            in_stall = stalled
    return events


def events_to_json(events: Iterable[Event]) -> List[Dict[str, Any]]:
    """Flatten ``(cycle, kind, fields)`` tuples for JSON export."""
    out: List[Dict[str, Any]] = []
    for cycle, kind, fields in events:
        record: Dict[str, Any] = {"cycle": cycle, "kind": kind}
        record.update(fields)
        out.append(record)
    return out


# ---------------------------------------------------------------------------
# shared reconstructions — both exporters and the stall attributor rebuild
# section / request timelines from the stream instead of poking sim state
# ---------------------------------------------------------------------------

def collect_sections(events: Iterable[Event]
                     ) -> Dict[int, Dict[str, Any]]:
    """Section timeline keyed by sid: ``core``, ``created``,
    ``first_fetch``, ``start`` (first fetched cycle or None), ``complete``
    (completion cycle or None) and ``parent`` (None for the root).

    The root section (sid 1, core 0) exists before any event fires, so it
    is seeded here rather than discovered.
    """
    sections: Dict[int, Dict[str, Any]] = {
        1: {"sid": 1, "core": 0, "created": 0, "first_fetch": 1,
            "start": None, "complete": None, "parent": None},
    }
    for cycle, kind, f in events:
        if kind == "section_fork":
            sections[f["child"]] = {
                "sid": f["child"], "core": f["core"], "created": cycle,
                "first_fetch": f["first_fetch"], "start": None,
                "complete": None, "parent": f["parent"],
            }
        elif kind == "section_start":
            entry = sections.get(f["sid"])
            # unknown sid: the stream was truncated before this section's
            # fork event — skip rather than KeyError
            if entry is not None and entry["start"] is None:
                entry["start"] = cycle
        elif kind == "section_complete":
            entry = sections.get(f["sid"])
            if entry is not None:
                entry["complete"] = cycle
    return sections


def collect_requests(events: Iterable[Event]
                     ) -> Dict[int, Dict[str, Any]]:
    """Renaming-request timelines keyed by rid.

    Each entry carries ``sid``/``kind``/``what``/``issue``/``fill`` plus:

    * ``transit`` — list of half-open-left windows ``(s, e]`` during which
      the request is travelling (section hops, the reply flight, and the
      architectural port hop of register reads);
    * ``path`` — ``(cycle, core, sid)`` per section hop, for flow arrows;
    * ``producer`` — sid of the answering section (None = architectural);
    * ``dmh`` — answered by the data memory hierarchy;
    * ``hops`` — section-to-section hops walked.
    """
    requests: Dict[int, Dict[str, Any]] = {}
    for cycle, kind, f in events:
        if kind == "request_issue":
            requests[f["rid"]] = {
                "rid": f["rid"], "sid": f["sid"], "kind": f["kind"],
                "what": f["what"], "issue": cycle, "fill": None,
                "transit": [], "path": [], "producer": None,
                "dmh": False, "hops": 0,
            }
        elif kind == "request_hop":
            req = requests.get(f["rid"])
            # unknown rid: the stream was truncated before this request's
            # issue event — skip rather than KeyError (same below)
            if req is None:
                continue
            req["hops"] += 1
            req["path"].append((cycle, f["dst"], f["sid"]))
            if f["wait"]:
                req["transit"].append((cycle, cycle + f["wait"]))
        elif kind == "request_hit":
            req = requests.get(f["rid"])
            if req is not None:
                req["producer"] = f["sid"]
        elif kind == "request_reply":
            req = requests.get(f["rid"])
            if req is not None:
                req["transit"].append((cycle, f["arrive"]))
        elif kind == "request_dmh":
            req = requests.get(f["rid"])
            if req is None:
                continue
            req["dmh"] = True
            if req["kind"] == "reg":
                # register reads off the oldest end pay only the port hop;
                # memory reads pay the DMH access, attributed wait_memory
                req["transit"].append((cycle, f["arrive"]))
        elif kind == "request_fill":
            req = requests.get(f["rid"])
            if req is not None:
                req["fill"] = cycle
    return requests


def collect_fault_windows(events: Iterable[Event]
                          ) -> Dict[int, List[Tuple[int, int]]]:
    """Per-section fault-recovery windows ``(s, e]``, keyed by sid.

    A ``section_redispatch`` opens the dead time between the fail-stop and
    the replay's first fetch; a ``msg_retry`` covers the backoff wait that
    ended at its (re-send) cycle.  The stall attributor charges blocked
    cycles inside these windows to ``fault_recovery`` ahead of every other
    cause — the section was not waiting on a dependency, it was waiting on
    the recovery machinery.
    """
    windows: Dict[int, List[Tuple[int, int]]] = {}
    for cycle, kind, f in events:
        if kind == "section_redispatch":
            windows.setdefault(f["sid"], []).append(
                (cycle, f["first_fetch"]))
        elif kind == "msg_retry":
            windows.setdefault(f["sid"], []).append(
                (cycle - f["wait"], cycle))
    return windows


def collect_reg_requests(events: Iterable[Event]
                         ) -> Dict[int, FrozenSet[str]]:
    """Per-section cross-section *register* requests: sid -> the register
    names the section requested through the renaming network
    (``request_issue`` events of kind ``"reg"``).

    This is the dynamic ground truth the static live-across-fork sets are
    validated against (:mod:`repro.analysis.validate`): every register
    here must be statically live at the section's start.
    """
    out: Dict[int, Set[str]] = {}
    for _cycle, kind, f in events:
        if kind == "request_issue" and f["kind"] == "reg":
            out.setdefault(f["sid"], set()).add(f["what"])
    return {sid: frozenset(regs) for sid, regs in out.items()}


def request_what_str(req: Dict[str, Any]) -> str:
    """Human-readable name of what a request fetches."""
    return (str(req["what"]) if req["kind"] == "reg"
            else "0x%x" % req["what"])
