"""Branch predictors for the finite-resource ILP models."""

from __future__ import annotations

from typing import Dict


class TwoBitPredictor:
    """An infinite table of saturating 2-bit counters, one per static
    branch — Wall's "good"-model predictor.

    Counters start weakly not-taken (1); >= 2 predicts taken.
    """

    def __init__(self):
        self._counters: Dict[int, int] = {}
        self.lookups = 0
        self.mispredictions = 0

    def predict_and_update(self, addr: int, taken: bool) -> bool:
        """Return True when the prediction was correct, updating state."""
        counter = self._counters.get(addr, 1)
        prediction = counter >= 2
        self.lookups += 1
        correct = prediction == taken
        if not correct:
            self.mispredictions += 1
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[addr] = counter
        return correct

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups


class PerfectPredictor:
    """Always right (the paper's assumption for both Figure 7 models)."""

    def __init__(self):
        self.lookups = 0
        self.mispredictions = 0

    def predict_and_update(self, addr: int, taken: bool) -> bool:
        self.lookups += 1
        return True

    @property
    def accuracy(self) -> float:
        return 1.0


class NoPredictor:
    """Never predicts: every conditional branch serializes the flow."""

    def __init__(self):
        self.lookups = 0
        self.mispredictions = 0

    def predict_and_update(self, addr: int, taken: bool) -> bool:
        self.lookups += 1
        self.mispredictions += 1
        return False

    @property
    def accuracy(self) -> float:
        return 0.0


def make_predictor(kind: str):
    """Factory keyed by :class:`DependencyModel.branch_predictor`."""
    if kind == "perfect":
        return PerfectPredictor()
    if kind == "twobit":
        return TwoBitPredictor()
    if kind == "none":
        return NoPredictor()
    raise ValueError("unknown predictor kind %r" % (kind,))
