"""Trace-based ILP limit study (the paper's Section 3 / Figure 7 machinery).

Quick use::

    from repro.ilp import PARALLEL_MODEL, SEQUENTIAL_MODEL, analyze
    from repro.machine import SequentialMachine

    seq_ilp = analyze(SequentialMachine(prog).step_entries(), SEQUENTIAL_MODEL)
    par_ilp = analyze(SequentialMachine(prog).step_entries(), PARALLEL_MODEL)
"""

from .analyzer import DataflowScheduler, ILPResult, analyze, analyze_under_models
from .models import (
    DependencyModel,
    PARALLEL_MODEL,
    SEQUENTIAL_MODEL,
    wall_good_model,
    wall_perfect_model,
)
from .predictor import (
    NoPredictor,
    PerfectPredictor,
    TwoBitPredictor,
    make_predictor,
)

__all__ = [
    "DataflowScheduler", "DependencyModel", "ILPResult", "NoPredictor",
    "PARALLEL_MODEL", "PerfectPredictor", "SEQUENTIAL_MODEL",
    "TwoBitPredictor", "analyze", "analyze_under_models", "make_predictor",
    "wall_good_model", "wall_perfect_model",
]
