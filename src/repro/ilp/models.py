"""Dependency/resource models for the trace-based ILP limit study.

The paper's Section 3 measures two ideal-machine ILPs over the same dynamic
trace:

* the **sequential model** — "all the dependencies excluding the register
  false ones (Write After Read and Write After Write), assuming an unlimited
  register renaming capacity, and excluding the control flow ones, assuming
  perfect branch prediction" — i.e. register RAW only, *all* memory
  dependencies (memory is not renamed), stack pointer included.  This is the
  ultimate performance of a speculative out-of-order core.
* the **parallel model** — "the trace is available when the run starts (no
  fetch delay) and in the same time all the destinations (including memory)
  are renamed.  The stack pointer dependencies are not considered." — i.e.
  RAW-only everywhere, rsp ignored.  This is the paper's distributed
  execution model upper bound.

:class:`DependencyModel` generalizes both, and also expresses the
finite-resource models of the Section 3 literature review (Wall's "good" and
"perfect" configurations) through window size, issue width and a branch
predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class DependencyModel:
    """Configuration of the ideal dataflow machine.

    Dependency switches:

    ``rename_registers``
        Drop register WAR/WAW dependencies (unlimited renaming).
    ``rename_memory``
        Drop memory WAR/WAW dependencies (every store gets a fresh
        location, the paper's run-time single-assignment form).
    ``memory_dependencies``
        Honour memory RAW dependencies at all (disabling them models an
        oracle that bypasses memory entirely; used only for ablations).
    ``ignore_stack_pointer``
        Drop every dependency carried by rsp, the paper's parallel-model
        rule (stack *memory* dependencies remain).
    ``control_dependencies``
        When True, instructions cannot issue before the previous
        unpredicted/mispredicted branch resolves; the ``branch_predictor``
        decides which branches those are.

    Resource limits (``None`` = unlimited):

    ``window_size``
        In-order instruction window: instruction *i* cannot issue before
        instruction *i - window_size* has completed.
    ``issue_width``
        Maximum instructions issued per cycle.
    ``branch_predictor``
        ``"perfect"``, ``"twobit"`` (infinite table of 2-bit counters, the
        predictor of Wall's "good" model) or ``"none"`` (every conditional
        branch serializes).  Only meaningful with ``control_dependencies``.
    """

    name: str
    rename_registers: bool = True
    rename_memory: bool = False
    memory_dependencies: bool = True
    ignore_stack_pointer: bool = False
    control_dependencies: bool = False
    window_size: Optional[int] = None
    issue_width: Optional[int] = None
    branch_predictor: str = "perfect"

    def __post_init__(self):
        if self.branch_predictor not in ("perfect", "twobit", "none"):
            raise ValueError(
                "bad branch_predictor %r" % (self.branch_predictor,))
        if self.window_size is not None and self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        if self.issue_width is not None and self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")

    def derive(self, name: str, **changes) -> "DependencyModel":
        """A copy with *changes* applied (for ablation sweeps)."""
        return replace(self, name=name, **changes)


#: The paper's sequential-run model (Figure 7, blue "seq11" bars).
SEQUENTIAL_MODEL = DependencyModel(
    name="sequential",
    rename_registers=True,
    rename_memory=False,
    ignore_stack_pointer=False,
    control_dependencies=False,
)

#: The paper's parallel-run model (Figure 7, bars 1..11).
PARALLEL_MODEL = DependencyModel(
    name="parallel",
    rename_registers=True,
    rename_memory=True,
    ignore_stack_pointer=True,
    control_dependencies=False,
)


def wall_good_model(window_size: int = 2048, issue_width: int = 64) -> DependencyModel:
    """Wall's "good" configuration (Section 3 footnote 2): 2K-instruction
    window, 64-wide issue, 2-bit counter predictor, perfect memory aliasing
    disambiguation (register renaming assumed unlimited here; Wall's 256
    CPU+256 FPU rename registers are far above the toy ISA's pressure)."""
    return DependencyModel(
        name="wall-good",
        rename_registers=True,
        rename_memory=True,          # perfect disambiguation = RAW only
        ignore_stack_pointer=False,
        control_dependencies=True,
        branch_predictor="twobit",
        window_size=window_size,
        issue_width=issue_width,
    )


def wall_perfect_model() -> DependencyModel:
    """Wall's "perfect" configuration: the good model with infinite
    renaming, a perfect predictor and no window/width limits."""
    return DependencyModel(
        name="wall-perfect",
        rename_registers=True,
        rename_memory=True,
        ignore_stack_pointer=False,
        control_dependencies=False,
    )
