"""The ideal dataflow machine: trace scheduling under a dependency model.

Scheduling rule (paper, Section 3): "Each instruction on the trace is run at
the cycle next to the last source reception.  The processor is assumed to run
all the ready instructions in the same cycle with a single cycle latency."

    cycle(i) = 1 + max(cycle(p) for producers p of i)      (empty max = 0)

so independent instructions all run at cycle 1 and the run's makespan is the
longest dependency chain.  ILP = instructions / makespan.

The analyzer is *streaming*: it consumes an iterable of
:class:`~repro.machine.trace.TraceEntry` and keeps only last-writer /
last-reader tables, so gigabyte-scale traces never need to be materialized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..isa.registers import STACK_POINTER
from .models import DependencyModel
from .predictor import make_predictor


@dataclass
class ILPResult:
    """Outcome of scheduling one trace under one model."""

    model: str
    instructions: int
    cycles: int                       #: makespan (longest dependency chain)
    branch_lookups: int = 0
    branch_mispredictions: int = 0
    #: histogram of producer→consumer trace distances of the *critical*
    #: source of each instruction, bucketed by powers of two; index k counts
    #: distances in [2**k, 2**(k+1)).  Filled when track_distance=True.
    critical_distance_hist: Optional[List[int]] = None

    @property
    def ilp(self) -> float:
        if self.cycles == 0:
            return float(self.instructions) if self.instructions else 0.0
        return self.instructions / self.cycles

    def describe(self) -> str:
        return "%-12s %9d instructions / %8d cycles = ILP %.1f" % (
            self.model, self.instructions, self.cycles, self.ilp)


class DataflowScheduler:
    """Incremental scheduler; feed entries, then read the result.

    Usage::

        sched = DataflowScheduler(PARALLEL_MODEL)
        for entry in machine.step_entries():
            sched.feed(entry)
        result = sched.result()
    """

    def __init__(self, model: DependencyModel, track_distance: bool = False):
        self.model = model
        self.track_distance = track_distance
        # reg/mem availability: location -> (cycle value is ready, writer seq)
        self._reg_ready: Dict[str, int] = {}
        self._reg_writer: Dict[str, int] = {}
        self._mem_ready: Dict[int, int] = {}
        self._mem_writer: Dict[int, int] = {}
        # last-reader cycles, needed only when false dependencies are kept
        self._reg_last_read: Dict[str, int] = {}
        self._mem_last_read: Dict[int, int] = {}
        self._control_ready = 0       # earliest cycle after last serializing branch
        self._predictor = make_predictor(model.branch_predictor)
        self._count = 0
        self._makespan = 0
        self._window: List[int] = []  # completion cycles of last W instrs
        self._window_pos = 0
        self._issued_in_cycle: Dict[int, int] = {}
        self._distance_hist: List[int] = [0] * 40 if track_distance else None

    # -- feeding --------------------------------------------------------------

    def feed(self, entry) -> int:
        """Schedule one trace entry; returns its issue cycle."""
        model = self.model
        ready = 0         # latest source-ready cycle
        critical_producer = -1

        for reg in entry.reg_reads:
            if model.ignore_stack_pointer and reg == STACK_POINTER:
                continue
            cycle = self._reg_ready.get(reg, 0)
            if cycle > ready:
                ready = cycle
                critical_producer = self._reg_writer.get(reg, -1)
        if model.memory_dependencies:
            for addr in entry.mem_reads:
                cycle = self._mem_ready.get(addr, 0)
                if cycle > ready:
                    ready = cycle
                    critical_producer = self._mem_writer.get(addr, -1)

        if not model.rename_registers:
            for reg in entry.reg_writes:
                if model.ignore_stack_pointer and reg == STACK_POINTER:
                    continue
                # WAW: wait for the previous writer; WAR: for the last reader.
                waw = self._reg_ready.get(reg, 0)
                war = self._reg_last_read.get(reg, 0)
                ready = max(ready, waw, war)
        if model.memory_dependencies and not model.rename_memory:
            for addr in entry.mem_writes:
                waw = self._mem_ready.get(addr, 0)
                war = self._mem_last_read.get(addr, 0)
                ready = max(ready, waw, war)

        if model.control_dependencies:
            ready = max(ready, self._control_ready)

        issue = ready  # issues the cycle after sources arrive; see below
        # Window: instruction i waits for instruction i-W's completion.
        if model.window_size is not None:
            if len(self._window) == model.window_size:
                issue = max(issue, self._window[self._window_pos])
        # Width: at most issue_width instructions share a cycle.  The +1
        # convention: "issue" stored here is the cycle *before* execution;
        # the instruction runs during cycle issue+1.
        cycle = issue + 1
        if model.issue_width is not None:
            while self._issued_in_cycle.get(cycle, 0) >= model.issue_width:
                cycle += 1
            self._issued_in_cycle[cycle] = self._issued_in_cycle.get(cycle, 0) + 1

        # -- record this instruction's effects --------------------------------

        seq = self._count
        for reg in entry.reg_writes:
            self._reg_ready[reg] = cycle
            self._reg_writer[reg] = seq
        if not model.rename_registers:
            for reg in entry.reg_reads:
                prev = self._reg_last_read.get(reg, 0)
                if cycle > prev:
                    self._reg_last_read[reg] = cycle
        for addr in entry.mem_writes:
            self._mem_ready[addr] = cycle
            self._mem_writer[addr] = seq
        if model.memory_dependencies and not model.rename_memory:
            for addr in entry.mem_reads:
                prev = self._mem_last_read.get(addr, 0)
                if cycle > prev:
                    self._mem_last_read[addr] = cycle

        if model.control_dependencies and entry.taken is not None:
            correct = self._predictor.predict_and_update(entry.addr,
                                                         entry.taken)
            if not correct:
                # Later instructions wait for this branch to resolve.
                self._control_ready = max(self._control_ready, cycle)

        if model.window_size is not None:
            if len(self._window) < model.window_size:
                self._window.append(cycle)
            else:
                self._window[self._window_pos] = cycle
                self._window_pos = (self._window_pos + 1) % model.window_size

        if self._distance_hist is not None and critical_producer >= 0:
            distance = seq - critical_producer
            bucket = distance.bit_length() - 1 if distance > 0 else 0
            if bucket >= len(self._distance_hist):
                bucket = len(self._distance_hist) - 1
            self._distance_hist[bucket] += 1

        self._count += 1
        if cycle > self._makespan:
            self._makespan = cycle
        return cycle

    def feed_all(self, entries: Iterable) -> "DataflowScheduler":
        for entry in entries:
            self.feed(entry)
        return self

    # -- results -----------------------------------------------------------

    def result(self) -> ILPResult:
        return ILPResult(
            model=self.model.name,
            instructions=self._count,
            cycles=self._makespan,
            branch_lookups=self._predictor.lookups,
            branch_mispredictions=self._predictor.mispredictions,
            critical_distance_hist=(
                list(self._distance_hist)
                if self._distance_hist is not None else None),
        )


def analyze(entries: Iterable, model: DependencyModel,
            track_distance: bool = False) -> ILPResult:
    """Schedule a trace (any iterable of entries) under *model*."""
    return DataflowScheduler(
        model, track_distance=track_distance).feed_all(entries).result()


def analyze_under_models(trace, models) -> List[ILPResult]:
    """Schedule one *materialized* trace under several models."""
    return [analyze(trace, model) for model in models]


def analyze_stream_multi(entries: Iterable, models,
                         track_distance: bool = False) -> List[ILPResult]:
    """Schedule one *streamed* trace under several models in a single pass
    (the trace is never materialized — each entry feeds every scheduler)."""
    schedulers = [DataflowScheduler(model, track_distance=track_distance)
                  for model in models]
    for entry in entries:
        for scheduler in schedulers:
            scheduler.feed(entry)
    return [scheduler.result() for scheduler in schedulers]
