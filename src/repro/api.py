"""Stable public API facade.

This module is the library's **stability contract**: the functions here
(and the typed results they return) keep their signatures across
releases, while subpackage internals (``repro.sim``, ``repro.machine``,
``repro.runner``, ...) may be refactored freely.  New code — including
the ``python -m repro`` CLI itself — should call this facade::

    from repro import api

    prog = api.compile_c(source, fork=True)
    run = api.simulate(prog, SimConfig(n_cores=16))
    print(run.result.describe())

    report = api.batch(jobs, pool_size=4, cache_dir=".repro-cache")

The entry points cover the library's pipeline: :func:`compile_c` /
:func:`assemble` produce a :class:`~repro.isa.program.Program`;
:func:`run_sequential` / :func:`run_forked` execute it functionally;
:func:`simulate` runs the cycle-level many-core; :func:`batch` fans a
list of :class:`~repro.runner.Job` out over a worker pool with
content-addressed result caching (:mod:`repro.runner`).

API v2 (``API_SCHEMA_VERSION == 2``) adds time travel: :func:`snapshot`
captures full simulator state at a chosen cycle, :func:`resume`
continues a snapshot (optionally attaching a fault plan — the warm-fork
used by the chaos grid), :func:`checkpoints_of` runs with checkpoints
armed, and :func:`simulate` grew ``resume_from=``.  Resumed runs are
bit-identical to cold ones on every compared result field.

Deprecated in v2: ``SimConfig(event_driven=...)`` — say
``kernel="event"`` / ``"naive"`` / ``"vector"``.  The boolean keeps
working for one release with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Union)

from .fork import fork_transform
from .isa import assemble as _assemble
from .isa.program import Program
from .machine import (ForkedMachine, RunResult,
                      run_forked as _run_forked,
                      run_sequential as _run_sequential)
from .minic import compile_source as _compile_source
from .runner import BatchReport, Job, JobOutcome, ResultCache, run_batch
from .sim import (Processor, SimConfig, SimResult,
                  simulate as _simulate)
from .snapshot import (Snapshot, SnapshotError,
                       capture_prefix as _capture_prefix,
                       resume as _resume)

#: facade major version: bump on any breaking signature change here.
#: v2 = snapshot/resume/checkpoints_of + kernel= replacing event_driven=.
API_SCHEMA_VERSION = 2

__all__ = [
    "API_SCHEMA_VERSION", "ForkRun", "SimRun", "Snapshot",
    "SnapshotError", "assemble", "batch", "checkpoints_of", "compile_c",
    "load_program", "make_jobs", "resume", "run_forked",
    "run_sequential", "simulate", "snapshot",
]


@dataclass
class ForkRun:
    """Typed result of :func:`run_forked`."""

    result: RunResult
    machine: ForkedMachine

    @property
    def sections(self) -> int:
        return len(self.machine.section_table())


@dataclass
class SimRun:
    """Typed result of :func:`simulate`."""

    result: SimResult
    processor: Processor


def compile_c(source: str, fork: bool = False,
              fork_loops: bool = False) -> Program:
    """Compile MiniC *source*; ``fork`` emits fork/endfork sections."""
    return _compile_source(source, fork_mode=fork, fork_loops=fork_loops)


def assemble(source: str, entry: Optional[str] = None) -> Program:
    """Assemble toy-x86 *source* (honours an ``.entry`` directive)."""
    return _assemble(source, entry=entry)


def load_program(path: str, fork: bool = True,
                 fork_loops: bool = False) -> Program:
    """Load a program by file suffix: ``.c`` compiles as MiniC (fork mode
    by default — the CLI's convention), anything else assembles."""
    with open(path) as handle:
        source = handle.read()
    if path.endswith(".c"):
        return compile_c(source, fork=fork, fork_loops=fork_loops)
    return assemble(source)


def run_sequential(program: Program, record_trace: bool = False,
                   max_steps: Optional[int] = None) -> RunResult:
    """Run on the sequential reference machine."""
    return _run_sequential(program, record_trace=record_trace,
                           max_steps=max_steps)


def run_forked(program: Program, record_trace: bool = False,
               max_steps: Optional[int] = None,
               sanitize: bool = False) -> ForkRun:
    """Run under section semantics; the machine rides along for section
    inspection (``sanitize`` enables the runtime renaming checks)."""
    result, machine = _run_forked(program, record_trace=record_trace,
                                  max_steps=max_steps, sanitize=sanitize)
    return ForkRun(result=result, machine=machine)


def simulate(program: Program, config: Optional[SimConfig] = None,
             initial_regs: Optional[Dict[str, int]] = None,
             resume_from: Optional[Snapshot] = None) -> SimRun:
    """Cycle-simulate on the distributed many-core.

    ``resume_from`` continues a :class:`Snapshot` instead of starting
    cold; *program* and *config* are then validated against the
    snapshot's provenance rather than driving a fresh run."""
    result, processor = _simulate(program, config=config,
                                  initial_regs=initial_regs,
                                  resume_from=resume_from)
    return SimRun(result=result, processor=processor)


def snapshot(program: Program, cycle: int,
             config: Optional[SimConfig] = None,
             initial_regs: Optional[Dict[str, int]] = None) -> Snapshot:
    """Capture full simulator state after *cycle* by running just the
    prefix (the run is abandoned once the checkpoint is taken).  The
    returned :class:`Snapshot` round-trips through ``to_bytes`` /
    ``from_bytes`` and resumes via :func:`resume` or
    ``simulate(resume_from=...)``."""
    return _capture_prefix(program, cycle, config=config,
                           initial_regs=initial_regs)


def resume(snap: Snapshot, program: Optional[Program] = None,
           config: Optional[SimConfig] = None,
           faults: Optional[Any] = None,
           checkpoint_cycles: Optional[Iterable[int]] = None) -> SimRun:
    """Continue *snap* to completion — bit-identical to the cold run.

    *program*/*config* are provenance cross-checks; *faults* attaches a
    :class:`~repro.faults.FaultPlan` to a fault-free snapshot (it must
    take effect strictly after the snapshot cycle — gate it with
    ``start_cycle``); *checkpoint_cycles* re-arms future checkpoints."""
    result, processor = _resume(snap, program=program, config=config,
                                faults=faults,
                                checkpoint_cycles=checkpoint_cycles)
    return SimRun(result=result, processor=processor)


def checkpoints_of(program: Program, cycles: Iterable[int],
                   config: Optional[SimConfig] = None,
                   initial_regs: Optional[Dict[str, int]] = None,
                   ) -> List[Snapshot]:
    """Run *program* to completion with checkpoints armed at *cycles*;
    returns the captured snapshots (labels past the end of the run
    collapse into one final-state snapshot)."""
    import dataclasses
    cfg = dataclasses.replace(config or SimConfig(),
                              checkpoint_cycles=tuple(cycles))
    run = simulate(program, cfg, initial_regs=initial_regs)
    return list(run.processor.checkpoints)


def make_jobs(programs: Sequence[Union[Program, Job]],
              config: Optional[SimConfig] = None,
              include_memory: bool = False) -> list:
    """Lift programs (or pass-through Jobs) into batch jobs sharing one
    config — the common shape of a sweep over programs."""
    jobs = []
    for index, entry in enumerate(programs):
        if isinstance(entry, Job):
            jobs.append(entry)
        else:
            jobs.append(Job.from_program(entry, config=config,
                                         job_id="job-%d" % index,
                                         include_memory=include_memory))
    return jobs


def batch(jobs: Sequence[Job], pool_size: Optional[int] = None,
          cache_dir: Optional[str] = None, use_cache: bool = True,
          on_outcome: Optional[Callable[[JobOutcome], None]] = None,
          ) -> BatchReport:
    """Run *jobs* through the batch engine (:func:`repro.runner.run_batch`).

    ``pool_size`` None/0/1 executes serially; ``cache_dir`` attaches a
    content-addressed result cache unless ``use_cache`` is False.  Every
    job failure is isolated into its outcome — check ``report.ok``.
    """
    cache = (ResultCache(cache_dir)
             if use_cache and cache_dir is not None else None)
    return run_batch(jobs, pool_size=pool_size, cache=cache,
                     on_outcome=on_outcome)


# re-exported so facade users need no subpackage imports for the common path
transform = fork_transform
