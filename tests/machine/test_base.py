"""Edge cases of the shared interpreter core (machine.base)."""

import pytest

from repro.errors import ExecutionError, MemoryError_
from repro.isa import STACK_TOP, assemble
from repro.machine import SequentialMachine, run_forked, run_sequential


def run(source, **kwargs):
    return run_sequential(assemble(source), **kwargs)


class TestControlEdgeCases:
    def test_ret_to_garbage_address(self):
        with pytest.raises(ExecutionError):
            run("""
            main:
                movq $12345, %rax
                pushq %rax
                ret
            """)

    def test_jump_wraps_off_code(self):
        # falling off the end of the code is detected
        with pytest.raises(ExecutionError):
            run("movq $1, %rax")

    def test_initial_regs_override(self):
        machine = SequentialMachine(
            assemble("main: out %rdi\nout %rsi\nhlt"),
            initial_regs={"rdi": 11, "rsi": -1})
        result = machine.run()
        assert result.output == [11, 2**64 - 1]

    def test_misaligned_access_raises(self):
        with pytest.raises(MemoryError_):
            run("""
            main:
                movq $3, %rdi
                movq (%rdi), %rax
            """)

    def test_lea_requires_memory_operand(self):
        # the assembler parses `leaq %rbx, %rax` (register source), but
        # execution rejects it
        with pytest.raises(ExecutionError):
            run("main: leaq %rbx, %rax\nhlt")

    def test_push_immediate(self):
        result = run("""
        main:
            pushq $41
            popq %rax
            incq %rax
            out %rax
            hlt
        """)
        assert result.output == [42]

    def test_stack_grows_down_from_top(self):
        result = run("main: out %rsp\nhlt")
        assert result.output == [STACK_TOP - 8]   # below the halt sentinel


class TestShiftForms:
    def test_one_operand_shift_by_one(self):
        result = run("""
        main:
            movq $5, %rsi
            shrq %rsi
            out %rsi
            hlt
        """)
        assert result.output == [2]                # the paper's n/2 idiom

    def test_memory_operand_shift(self):
        result = run("""
        main:
            shlq $2, cell
            movq cell, %rax
            out %rax
            hlt
        .data
        cell: .quad 3
        """)
        assert result.output == [12]


class TestForkloopOpcode:
    def test_forkloop_behaves_like_fork_functionally(self):
        source = """
        main:
            movq $1, %rbx
            FORKOP body
            out %rbx
            endfork
        body:
            movq $9, %rbx
            endfork
        """
        for opcode in ("fork", "forkloop"):
            result, machine = run_forked(
                assemble(source.replace("FORKOP", opcode)))
            assert result.output == [1]
            assert len(machine.section_table()) == 2

    def test_forkloop_round_trips_through_listing(self):
        prog = assemble("main: forkloop x\nendfork\nx: endfork")
        again = assemble(prog.listing())
        assert [i.opcode for i in again.code] == ["forkloop", "endfork",
                                                  "endfork"]
