"""Unit and property tests for the shared instruction semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.isa.registers import CF, OF, SF, ZF
from repro.machine import executor as ex

u64 = st.integers(min_value=0, max_value=2**64 - 1)
s64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


class TestConversions:
    def test_to_signed_positive(self):
        assert ex.to_signed(5) == 5

    def test_to_signed_negative(self):
        assert ex.to_signed(2**64 - 1) == -1
        assert ex.to_signed(2**63) == -(2**63)

    @given(s64)
    def test_signed_round_trip(self, value):
        assert ex.to_signed(ex.to_unsigned(value)) == value


class TestBinary:
    def test_add(self):
        result, flags = ex.binary_result("add", 2, 3)
        assert result == 5
        assert not flags & ZF

    def test_add_wraps_and_sets_cf(self):
        result, flags = ex.binary_result("add", 1, 2**64 - 1)
        assert result == 0
        assert flags & ZF and flags & CF

    def test_signed_overflow_sets_of(self):
        _, flags = ex.binary_result("add", 2**63 - 1, 1)
        assert flags & OF

    def test_sub(self):
        result, flags = ex.binary_result("sub", 3, 10)
        assert result == 7
        assert not flags & CF

    def test_sub_borrow(self):
        result, flags = ex.binary_result("sub", 10, 3)
        assert ex.to_signed(result) == -7
        assert flags & CF and flags & SF

    def test_logic_clears_cf_of(self):
        for op in ("and", "or", "xor"):
            _, flags = ex.binary_result(op, 0xF0, 0x0F)
            assert not flags & CF and not flags & OF

    def test_xor_self_zero(self):
        result, flags = ex.binary_result("xor", 0xABC, 0xABC)
        assert result == 0 and flags & ZF

    def test_mov_result_no_flags(self):
        result, flags = ex.binary_result("mov", 42, 99)
        assert result == 42 and flags is None

    def test_imul(self):
        result, flags = ex.binary_result("imul", 7, 6)
        assert result == 42
        assert not flags & CF

    def test_imul_negative(self):
        result, _ = ex.binary_result("imul", ex.to_unsigned(-3), 5)
        assert ex.to_signed(result) == -15

    def test_imul_overflow_flags(self):
        _, flags = ex.binary_result("imul", 2**62, 4)
        assert flags & CF and flags & OF

    @given(u64, u64)
    def test_add_matches_python(self, a, b):
        result, _ = ex.binary_result("add", a, b)
        assert result == (a + b) % 2**64

    @given(s64, s64)
    def test_imul_matches_python(self, a, b):
        result, _ = ex.binary_result(
            "imul", ex.to_unsigned(a), ex.to_unsigned(b))
        assert ex.to_signed(result) == _wrap_signed(a * b)


def _wrap_signed(value):
    return (value + 2**63) % 2**64 - 2**63


class TestUnary:
    def test_inc(self):
        result, flags = ex.unary_result("inc", 41, 0)
        assert result == 42 and not flags & ZF

    def test_inc_preserves_cf(self):
        _, flags = ex.unary_result("inc", 1, CF)
        assert flags & CF
        _, flags = ex.unary_result("inc", 1, 0)
        assert not flags & CF

    def test_dec_to_zero(self):
        result, flags = ex.unary_result("dec", 1, 0)
        assert result == 0 and flags & ZF

    def test_neg(self):
        result, flags = ex.unary_result("neg", 5, 0)
        assert ex.to_signed(result) == -5
        assert flags & SF

    def test_not_no_flags(self):
        result, flags = ex.unary_result("not", 0, 0)
        assert result == 2**64 - 1 and flags is None


class TestShifts:
    def test_shr_by_one_halves(self):
        # Figure 5: "shrq %rsi  # rsi = n/2".
        result, _ = ex.shift_result("shr", 5, 1)
        assert result == 2

    def test_shl(self):
        result, _ = ex.shift_result("shl", 3, 4)
        assert result == 48

    def test_sar_keeps_sign(self):
        result, _ = ex.shift_result("sar", ex.to_unsigned(-8), 1)
        assert ex.to_signed(result) == -4

    def test_shr_is_logical(self):
        result, _ = ex.shift_result("shr", ex.to_unsigned(-8), 1)
        assert ex.to_signed(result) > 0

    def test_zero_count_keeps_value(self):
        result, _ = ex.shift_result("shl", 123, 0)
        assert result == 123

    def test_count_masked_to_six_bits(self):
        result, _ = ex.shift_result("shl", 1, 64)  # 64 & 63 == 0
        assert result == 1

    @given(u64, st.integers(min_value=0, max_value=63))
    def test_shr_matches_python(self, value, count):
        result, _ = ex.shift_result("shr", value, count)
        assert result == value >> count


class TestCompare:
    def test_cmp_above(self):
        # cmpq $2, %rsi with rsi=5: dst-src = 3, unsigned above.
        flags = ex.compare_flags("cmp", 2, 5)
        assert ex.condition_holds("a", flags)
        assert not ex.condition_holds("e", flags)

    def test_cmp_equal(self):
        flags = ex.compare_flags("cmp", 2, 2)
        assert ex.condition_holds("e", flags)
        assert not ex.condition_holds("a", flags)
        assert ex.condition_holds("ae", flags)
        assert ex.condition_holds("be", flags)

    def test_cmp_signed_vs_unsigned(self):
        flags = ex.compare_flags("cmp", 1, ex.to_unsigned(-1))
        assert ex.condition_holds("a", flags)   # unsigned: huge > 1
        assert ex.condition_holds("l", flags)   # signed: -1 < 1

    def test_test_sets_zf(self):
        assert ex.compare_flags("test", 1, 2) & ZF

    @given(s64, s64)
    def test_signed_conditions_match_python(self, a, b):
        flags = ex.compare_flags(
            "cmp", ex.to_unsigned(b), ex.to_unsigned(a))  # cmp b, a => a-b
        assert ex.condition_holds("e", flags) == (a == b)
        assert ex.condition_holds("ne", flags) == (a != b)
        assert ex.condition_holds("l", flags) == (a < b)
        assert ex.condition_holds("le", flags) == (a <= b)
        assert ex.condition_holds("g", flags) == (a > b)
        assert ex.condition_holds("ge", flags) == (a >= b)

    @given(u64, u64)
    def test_unsigned_conditions_match_python(self, a, b):
        flags = ex.compare_flags("cmp", b, a)
        assert ex.condition_holds("a", flags) == (a > b)
        assert ex.condition_holds("ae", flags) == (a >= b)
        assert ex.condition_holds("b", flags) == (a < b)
        assert ex.condition_holds("be", flags) == (a <= b)

    def test_unknown_condition_rejected(self):
        with pytest.raises(ExecutionError):
            ex.condition_holds("xyzzy", 0)


class TestDivision:
    def test_idiv_positive(self):
        quotient, remainder = ex.idiv_result(7, 0, 2)
        assert (quotient, remainder) == (3, 1)

    def test_idiv_truncates_toward_zero(self):
        rax = ex.to_unsigned(-7)
        quotient, remainder = ex.idiv_result(rax, ex.cqo_result(rax), 2)
        assert ex.to_signed(quotient) == -3
        assert ex.to_signed(remainder) == -1

    def test_idiv_by_zero(self):
        with pytest.raises(ExecutionError):
            ex.idiv_result(1, 0, 0)

    def test_idiv_requires_cqo(self):
        with pytest.raises(ExecutionError):
            ex.idiv_result(ex.to_unsigned(-7), 0, 2)

    def test_cqo(self):
        assert ex.cqo_result(5) == 0
        assert ex.cqo_result(ex.to_unsigned(-5)) == 2**64 - 1

    @given(s64, s64.filter(lambda v: v != 0))
    def test_idiv_matches_c_semantics(self, a, b):
        rax = ex.to_unsigned(a)
        quotient, remainder = ex.idiv_result(rax, ex.cqo_result(rax),
                                             ex.to_unsigned(b))
        # C division truncates toward zero:
        expected_q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected_q = -expected_q
        assert ex.to_signed(quotient) == expected_q
        assert ex.to_signed(remainder) == a - expected_q * b


class TestFetchComputable:
    def test_simple_alu_is_computable(self):
        assert ex.fetch_stage_computable("alu", False)
        assert ex.fetch_stage_computable("mov", False)
        assert ex.fetch_stage_computable("jcc", False)

    def test_memory_never_computable(self):
        # Paper 4.1: memory accesses are not computed in the fetch stage.
        assert not ex.fetch_stage_computable("alu", True)
        assert not ex.fetch_stage_computable("mov", True)

    def test_complex_integer_not_computable(self):
        assert not ex.fetch_stage_computable("muldiv", False)
        assert not ex.fetch_stage_computable("idiv", False)
