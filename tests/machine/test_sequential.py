"""Tests for the sequential reference machine on real programs."""

import pytest

from repro.errors import ExecutionError
from repro.isa import STACK_TOP, assemble
from repro.machine import SequentialMachine, run_sequential
from repro.paper import paper_array, sum_sequential_program


def run(source, **kwargs):
    return run_sequential(assemble(source), **kwargs)


class TestStraightLine:
    def test_mov_out(self):
        result = run("movq $7, %rax\nout %rax\nhlt")
        assert result.output == [7]
        assert result.halted == "hlt"

    def test_arithmetic_chain(self):
        result = run("""
        movq $10, %rax
        addq $5, %rax
        subq $3, %rax
        imulq $2, %rax
        out %rax
        hlt
        """)
        assert result.output == [24]

    def test_division(self):
        result = run("""
        movq $17, %rax
        cqo
        movq $5, %rcx
        idivq %rcx
        out %rax
        out %rdx
        hlt
        """)
        assert result.output == [3, 2]

    def test_lea_computes_address_without_access(self):
        result = run("""
        movq $100, %rdi
        movq $3, %rsi
        leaq 8(%rdi,%rsi,8), %rax
        out %rax
        hlt
        """)
        assert result.output == [132]

    def test_memory_round_trip(self):
        result = run("""
        movq $5, %rax
        movq %rax, buf
        movq buf, %rbx
        out %rbx
        hlt
        .data
        buf: .quad 0
        """)
        assert result.output == [5]

    def test_rmw_memory_destination(self):
        result = run("""
        movq $3, %rax
        addq %rax, cell
        addq %rax, cell
        movq cell, %rbx
        out %rbx
        hlt
        .data
        cell: .quad 10
        """)
        assert result.output == [16]


class TestControlFlow:
    def test_loop(self):
        result = run("""
        main:
            movq $0, %rax
            movq $5, %rcx
        loop:
            addq %rcx, %rax
            dec %rcx
            jne loop
            out %rax
            hlt
        """)
        assert result.output == [15]

    def test_signed_branch(self):
        result = run("""
            movq $-5, %rax
            cmpq $0, %rax
            jl neg
            out %rax
            hlt
        neg:
            negq %rax
            out %rax
            hlt
        """)
        assert result.output == [5]

    def test_call_ret(self):
        result = run("""
        main:
            movq $20, %rdi
            call double
            out %rax
            hlt
        double:
            movq %rdi, %rax
            addq %rax, %rax
            ret
        """)
        assert result.output == [40]

    def test_nested_calls_restore_stack(self):
        result = run("""
        main:
            movq %rsp, %rbx
            call a
            cmpq %rsp, %rbx
            jne bad
            out %rax
            hlt
        bad:
            movq $-1, %rax
            out %rax
            hlt
        a:
            call b
            incq %rax
            ret
        b:
            movq $10, %rax
            ret
        """)
        assert result.output == [11]

    def test_main_ret_halts(self):
        result = run("main: movq $3, %rax\nret")
        assert result.halted == "ret"
        assert result.return_value == 3

    def test_recursion_fib(self):
        result = run("""
        main:
            movq $10, %rdi
            call fib
            out %rax
            hlt
        fib:
            cmpq $2, %rdi
            jae rec
            movq %rdi, %rax
            ret
        rec:
            pushq %rdi
            subq $1, %rdi
            call fib
            popq %rdi
            pushq %rax
            subq $2, %rdi
            call fib
            popq %rbx
            addq %rbx, %rax
            ret
        """)
        assert result.output == [55]


class TestErrors:
    def test_fork_rejected(self):
        with pytest.raises(ExecutionError):
            run("f: fork f")

    def test_endfork_rejected(self):
        with pytest.raises(ExecutionError):
            run("endfork")

    def test_runaway_loop_detected(self):
        with pytest.raises(ExecutionError):
            run("x: jmp x", max_steps=1000)

    def test_ip_off_the_end(self):
        with pytest.raises(ExecutionError):
            run("nop")  # falls off the code

    def test_step_after_halt_rejected(self):
        machine = SequentialMachine(assemble("hlt"))
        machine.run()
        with pytest.raises(ExecutionError):
            machine.step()


class TestTraceRecords:
    def test_trace_length_matches_steps(self):
        result = run("movq $1, %rax\nout %rax\nhlt", record_trace=True)
        assert len(result.trace) == result.steps == 3

    def test_branch_outcomes_recorded(self):
        result = run("""
        cmpq $0, %rax
        jne skip
        nop
        skip: hlt
        """, record_trace=True)
        branch = result.trace[1]
        assert branch.taken is False
        assert result.trace[0].taken is None

    def test_memory_addresses_recorded(self):
        result = run("""
        movq $7, %rax
        pushq %rax
        popq %rbx
        hlt
        """, record_trace=True)
        push, pop = result.trace[1], result.trace[2]
        assert push.mem_writes == (STACK_TOP - 16,)  # below the halt sentinel
        assert pop.mem_reads == push.mem_writes

    def test_call_depth_tracked(self):
        result = run("""
        main:
            call f
            hlt
        f:  ret
        """, record_trace=True)
        depths = [e.depth for e in result.trace]
        assert depths == [0, 1, 0]


class TestPaperSum:
    def test_sum5(self, sum5_seq):
        result = run_sequential(sum5_seq)
        assert result.output == [15]

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 16, 33, 100])
    def test_sum_many_sizes(self, n):
        values = paper_array(n)
        result = run_sequential(sum_sequential_program(values))
        assert result.output == [sum(values)]

    def test_figure3_trace_is_59_sum_instructions(self, sum5_seq):
        result = run_sequential(sum5_seq, record_trace=True)
        sum_start = sum5_seq.code_symbols["sum"]
        sum_entries = [e for e in result.trace if e.addr >= sum_start]
        assert len(sum_entries) == 59

    def test_stack_balanced_at_exit(self, sum5_seq):
        result = run_sequential(sum5_seq)
        # main never returns (hlt), so rsp sits below the halt sentinel.
        assert result.regs["rsp"] == STACK_TOP - 8
