"""Unit tests for the Trace container and its statistics."""

from repro.machine import run_forked, run_sequential
from repro.minic import compile_source
from repro.paper import paper_array, sum_forked_program, sum_sequential_program


def sum_trace(n=5):
    return run_sequential(sum_sequential_program(paper_array(n)),
                          record_trace=True).trace


class TestTraceStatistics:
    def test_len_and_iter(self):
        trace = sum_trace()
        assert len(trace) == sum(1 for _ in trace)
        assert trace[0].seq == 0

    def test_slicing(self):
        trace = sum_trace()
        assert [e.seq for e in trace[:3]] == [0, 1, 2]

    def test_count_kind(self):
        trace = sum_trace()
        assert trace.count_kind("call") == 5   # 1 from main + 4 recursive
        assert trace.count_kind("ret") == 5
        assert trace.count_kind("call", "ret") == 10

    def test_branches(self):
        trace = sum_trace()
        # each sum() call executes ja + (jne on the leaf paths)
        assert trace.branches() == sum(1 for e in trace
                                       if e.taken is not None)
        assert trace.branches() >= 5

    def test_stack_ops_dominate_in_sequential_sum(self):
        trace = sum_trace()
        # the paper's Section 3: stack manipulation is pervasive
        assert trace.stack_ops() > len(trace) * 0.3

    def test_memory_ops(self):
        trace = sum_trace()
        assert 0 < trace.memory_ops() < len(trace)

    def test_max_depth(self):
        assert sum_trace(40).max_depth() > sum_trace(5).max_depth()

    def test_sections_sequential_is_one(self):
        assert sum_trace().sections() == 1

    def test_sections_forked(self):
        result, _ = run_forked(sum_forked_program(paper_array(5)),
                               record_trace=True)
        assert result.trace.sections() == 6
        assert len(result.trace.section_slice(2)) == 16

    def test_listing(self):
        trace = sum_trace()
        text = trace.listing()
        assert text.splitlines()[0].strip().startswith("1")
        assert "movq" in text

    def test_describe_uses_section_numbering(self):
        result, _ = run_forked(sum_forked_program(paper_array(5)),
                               record_trace=True)
        tags = [e.describe().split()[0] for e in result.trace]
        assert "2-16" in tags and "1-1" in tags


class TestRunResult:
    def test_signed_output(self):
        prog = compile_source("long main() { out(0 - 5); return 0; }")
        result = run_sequential(prog)
        assert result.output == [2**64 - 5]
        assert result.signed_output == [-5]
