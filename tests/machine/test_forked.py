"""Tests for the forked (section) machine against the paper's model."""

import pytest

from repro.errors import ExecutionError
from repro.isa import assemble
from repro.machine import ForkedMachine, run_forked, run_sequential
from repro.paper import (
    paper_array,
    sum_forked_program,
    sum_sequential_program,
)


def run(source, **kwargs):
    return run_forked(assemble(source), **kwargs)


class TestForkSemantics:
    def test_fork_creates_section_at_resume(self):
        result, machine = run("""
        main:
            movq $1, %rbx
            fork f
            out %rbx        # resume path: new section
            endfork
        f:
            movq $2, %rax   # callee path: same section continues
            endfork
        """)
        assert result.output == [1]
        assert len(machine.section_table()) == 2

    def test_copied_register_snapshot(self):
        # rbx is copied at fork time; the callee's clobber must not leak
        # into the resume path.
        result, _ = run("""
        main:
            movq $5, %rbx
            fork f
            out %rbx
            endfork
        f:
            movq $99, %rbx
            endfork
        """)
        assert result.output == [5]

    def test_empty_register_resolves_to_callee_value(self):
        # rax is NOT copied: the resume path's read synchronizes with the
        # callee's last write (the paper's rax renaming example).
        result, _ = run("""
        main:
            movq $1, %rax
            fork f
            out %rax
            endfork
        f:
            movq $42, %rax
            endfork
        """)
        assert result.output == [42]

    def test_stack_shared_through_fork(self):
        # Sections 2 and 5 of the paper share a stack word via rsp copy.
        result, _ = run("""
        main:
            subq $8, %rsp
            movq $7, %rax
            movq %rax, 0(%rsp)
            fork f
            movq 0(%rsp), %rbx   # resume: reads the word f stored? no --
            out %rbx             # f did not touch it; reads our own store
            endfork
        f:
            endfork
        """)
        assert result.output == [7]

    def test_resume_reads_callee_store(self):
        result, _ = run("""
        main:
            subq $8, %rsp
            fork f
            movq 0(%rsp), %rbx
            out %rbx
            endfork
        f:
            movq $13, %rax
            movq %rax, 0(%rsp)
            endfork
        """)
        assert result.output == [13]

    def test_nested_forks_lifo_order(self):
        result, machine = run("""
        main:
            fork a
            out %rax        # consumes the deepest result
            endfork
        a:
            fork b
            addq $1, %rax
            endfork
        b:
            movq $100, %rax
            endfork
        """)
        # Total order: main-head+a-head+b, then a-resume (+1), then
        # main-resume (out) => 101.
        assert result.output == [101]
        assert len(machine.section_table()) == 3

    def test_halted_reason(self):
        result, _ = run("endfork")
        assert result.halted == "endfork"

    def test_call_ret_still_work(self):
        result, _ = run("""
        main:
            call f
            fork g
            out %rax
            endfork
        f:
            movq $5, %rax
            ret
        g:
            addq $2, %rax
            endfork
        """)
        assert result.output == [7]

    def test_hlt_with_live_sections_rejected(self):
        with pytest.raises(ExecutionError):
            run("""
            main:
                fork f
                endfork
            f:
                hlt         # halts while main's resume section is pending
            """)

    def test_out_order_matches_total_order(self):
        result, _ = run("""
        main:
            movq $1, %r12
            fork f
            movq $3, %r12
            out %r12
            endfork
        f:
            movq $2, %r12
            out %r12
            endfork
        """)
        assert result.output == [2, 3]


class TestSectionStructure:
    def test_paper_figure4_tree(self, sum5_fork):
        _, machine = run_forked(sum5_fork)
        # Paper sections 1..5 plus the main resume section (6).
        assert len(machine.section_table()) == 6
        assert machine.section_tree() == {1: [2, 6], 2: [3, 5], 3: [4]}

    def test_paper_figure6_section_lengths(self, sum5_fork):
        _, machine = run_forked(sum5_fork)
        lengths = {s.sid: s.length for s in machine.section_table()}
        # Section 1 carries main's 3 lead-in instructions (paper counts 11
        # for sum alone); sections 2..5 match Figure 6 exactly.
        assert lengths[1] == 14
        assert lengths[2] == 16
        assert lengths[3] == 12
        assert lengths[4] == 3
        assert lengths[5] == 3

    def test_section_ids_in_trace_order(self, sum5_fork):
        result, machine = run_forked(sum5_fork, record_trace=True)
        first_seqs = [s.first_seq for s in machine.section_table()]
        assert first_seqs == sorted(first_seqs)
        # Every entry labeled with its section; indices restart at 0.
        for info in machine.section_table():
            entries = result.trace.section_slice(info.sid)
            assert [e.section_index for e in entries] == list(
                range(len(entries)))
            assert len(entries) == info.length

    def test_depths_follow_call_levels(self, sum5_fork):
        _, machine = run_forked(sum5_fork)
        depth = {s.sid: s.depth for s in machine.section_table()}
        # Paper Figure 4: sections 2 and 5 resume at the level of sum(t,5)'s
        # body; sections 3 and 4 one deeper; main's resume at level 0.
        assert depth[1] == 0
        assert depth[2] == 1
        assert depth[3] == 2
        assert depth[4] == 2
        assert depth[5] == 1
        assert depth[6] == 0

    def test_fork_count(self, sum5_fork):
        _, machine = run_forked(sum5_fork)
        assert machine.forks_executed == 5  # 1 in main + 2*2 internal nodes

    def test_section_table_requires_completion(self, sum5_fork):
        machine = ForkedMachine(sum5_fork)
        machine.step()
        with pytest.raises(ExecutionError):
            machine.section_table()


class TestEquivalenceWithSequential:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 40, 100])
    def test_sum_matches_sequential(self, n):
        values = [(i * 37 + 11) % 1000 - 300 for i in range(n)]
        seq = run_sequential(sum_sequential_program(values))
        fork, _ = run_forked(sum_forked_program(values))
        assert fork.output == seq.output
        assert fork.signed_output == [sum(values)]

    def test_trace_shorter_than_sequential(self, sum5_seq, sum5_fork):
        # The fork transformation removed the save/restore and return
        # address traffic: 45 sum instructions instead of 59 (paper Sec. 5).
        seq = run_sequential(sum5_seq)
        fork, _ = run_forked(sum5_fork)
        assert fork.steps < seq.steps

    def test_sum5_has_45_sum_instructions(self, sum5_fork):
        result, _ = run_forked(sum5_fork, record_trace=True)
        sum_start = sum5_fork.code_symbols["sum"]
        sum_entries = [e for e in result.trace if e.addr >= sum_start]
        assert len(sum_entries) == 45  # paper: N(0) = 45 for sum(t, 5)
