"""Unit tests for the word-addressed memory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryError_
from repro.machine import Memory


class TestMemory:
    def test_unwritten_reads_zero(self):
        assert Memory().load(0x1000) == 0

    def test_store_load(self):
        mem = Memory()
        mem.store(0x1000, 42)
        assert mem.load(0x1000) == 42

    def test_store_wraps_to_64_bits(self):
        mem = Memory()
        mem.store(0x1000, -1)
        assert mem.load(0x1000) == 2**64 - 1

    def test_misaligned_load_rejected(self):
        with pytest.raises(MemoryError_):
            Memory().load(0x1001)

    def test_misaligned_store_rejected(self):
        with pytest.raises(MemoryError_):
            Memory().store(4, 1)

    def test_negative_address_rejected(self):
        with pytest.raises(MemoryError_):
            Memory().load(-8)

    def test_initial_image(self):
        mem = Memory({0x100: 7})
        assert mem.load(0x100) == 7

    def test_image_is_copied(self):
        image = {0x100: 7}
        mem = Memory(image)
        mem.store(0x100, 9)
        assert image[0x100] == 7

    def test_ranges(self):
        mem = Memory()
        mem.store_range(0x200, [1, 2, 3])
        assert mem.load_range(0x200, 3) == [1, 2, 3]
        assert mem.load(0x208) == 2

    def test_nonzero_words_hides_zero_stores(self):
        mem = Memory()
        mem.store(0x100, 0)
        mem.store(0x108, 5)
        assert mem.nonzero_words() == {0x108: 5}
        assert mem.written_words() == {0x100: 0, 0x108: 5}

    def test_equality_ignores_zero_stores(self):
        a = Memory()
        a.store(0x100, 0)
        b = Memory()
        assert a == b

    def test_copy_is_independent(self):
        a = Memory({0x100: 1})
        b = a.copy()
        b.store(0x100, 2)
        assert a.load(0x100) == 1

    @given(st.dictionaries(
        st.integers(min_value=0, max_value=2**20).map(lambda v: v * 8),
        st.integers(min_value=0, max_value=2**64 - 1),
        max_size=50))
    def test_store_load_round_trip(self, words):
        mem = Memory()
        for addr, value in words.items():
            mem.store(addr, value)
        for addr, value in words.items():
            assert mem.load(addr) == value
