"""Unit tests for the Program container."""

import pytest

from repro.errors import AssemblerError
from repro.isa import WORD, assemble
from repro.isa.program import Program


@pytest.fixture
def prog():
    return assemble("""
    main:
        movq tab, %rax
        out %rax
        hlt
    .data
    tab: .quad 11, 22, 33
    n:   .quad 3
    """)


class TestProgram:
    def test_len(self, prog):
        assert len(prog) == 3

    def test_label_of(self, prog):
        assert prog.label_of(0) == "main"
        assert prog.label_of(1) is None
        assert prog.label_of(99) is None

    def test_entry_symbol(self, prog):
        assert prog.entry_symbol() == "main"

    def test_symbol_addr(self, prog):
        assert prog.symbol_addr("n") == prog.symbol_addr("tab") + 3 * WORD

    def test_symbol_addr_unknown(self, prog):
        with pytest.raises(AssemblerError):
            prog.symbol_addr("ghost")

    def test_read_data(self, prog):
        assert prog.read_data("tab", 3) == [11, 22, 33]

    def test_patch_data(self, prog):
        prog.patch_data("tab", [7, 8, 9])
        assert prog.read_data("tab", 3) == [7, 8, 9]

    def test_patch_data_wraps_negative(self, prog):
        prog.patch_data("n", [-1])
        assert prog.read_data("n", 1) == [2**64 - 1]

    def test_misaligned_data_rejected(self):
        with pytest.raises(AssemblerError):
            Program(code=[], data={3: 1})
