"""Unit tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa import DATA_BASE, Imm, LabelRef, Mem, Reg, WORD, assemble
from repro.paper import SUM_FORKED_ASM, SUM_SEQUENTIAL_ASM


class TestBasics:
    def test_empty_program(self):
        prog = assemble("")
        assert len(prog) == 0

    def test_single_instruction(self):
        prog = assemble("movq $1, %rax")
        assert len(prog) == 1
        instr = prog.code[0]
        assert instr.opcode == "mov"
        assert instr.operands == (Imm(1), Reg("rax"))

    def test_suffix_optional(self):
        assert assemble("mov $1, %rax").code[0].opcode == "mov"
        assert assemble("movq $1, %rax").code[0].opcode == "mov"

    def test_comments_stripped(self):
        prog = assemble("""
        # full line comment
        movq $1, %rax   # trailing
        addq $2, %rax   // c++-style
        """)
        assert len(prog) == 2

    def test_case_insensitive_mnemonics(self):
        assert assemble("MOVQ $1, %rax").code[0].opcode == "mov"

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError) as err:
            assemble("blorp $1, %rax")
        assert "line 1" in str(err.value)

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("movq $1, %eax")

    def test_hex_immediates(self):
        assert assemble("movq $0x10, %rax").code[0].operands[0].value == 16

    def test_negative_immediates(self):
        assert assemble("movq $-8, %rax").code[0].operands[0].value == -8


class TestLabels:
    def test_label_resolution(self):
        prog = assemble("""
        start:
            jmp end
            nop
        end:
            hlt
        """)
        assert prog.code_symbols == {"start": 0, "end": 2}
        assert prog.code[0].target == 2

    def test_label_on_same_line(self):
        prog = assemble(".L1: ret")
        assert prog.code_symbols[".L1"] == 0
        assert prog.code[0].labels == (".L1",)

    def test_multiple_labels_one_instruction(self):
        prog = assemble("""
        a:
        b:  nop
        """)
        assert prog.code_symbols["a"] == 0
        assert prog.code_symbols["b"] == 0

    def test_forward_and_backward_references(self):
        prog = assemble("""
        top:
            jne top
            jmp bottom
        bottom:
            hlt
        """)
        assert prog.code[0].target == 0
        assert prog.code[1].target == 2

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: nop")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere")

    def test_trailing_label_gets_halt(self):
        prog = assemble("nop\nend:")
        assert prog.code_symbols["end"] == 1
        assert prog.code[1].opcode == "hlt"


class TestMemoryOperands:
    def _operand(self, text):
        return assemble("movq %s, %%rax" % text).code[0].operands[0]

    def test_base(self):
        assert self._operand("(%rdi)") == Mem(base="rdi")

    def test_disp_base(self):
        assert self._operand("8(%rdi)") == Mem(disp=8, base="rdi")

    def test_negative_disp(self):
        assert self._operand("-16(%rbp)") == Mem(disp=-16, base="rbp")

    def test_base_index_scale(self):
        assert self._operand("(%rdi,%rsi,8)") == Mem(
            base="rdi", index="rsi", scale=8)

    def test_rip_relative_symbol(self):
        prog = assemble("""
        movq tab(%rip), %rax
        hlt
        .data
        tab: .quad 7
        """)
        operand = prog.code[0].operands[0]
        assert operand.base is None
        assert operand.disp == prog.data_symbols["tab"]

    def test_bare_symbol_is_memory(self):
        prog = assemble("""
        movq n, %rax
        hlt
        .data
        n: .quad 3
        """)
        operand = prog.code[0].operands[0]
        assert isinstance(operand, Mem)
        assert operand.disp == prog.data_symbols["n"]

    def test_symbol_immediate_is_address(self):
        prog = assemble("""
        movq $tab, %rdi
        hlt
        .data
        tab: .quad 1, 2
        """)
        operand = prog.code[0].operands[0]
        assert isinstance(operand, Imm)
        assert operand.value == prog.data_symbols["tab"]

    def test_garbage_operand_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("movq )%(, %rax")


class TestDataSection:
    def test_quad_values(self):
        prog = assemble("""
        hlt
        .data
        tab: .quad 1, 2, 3
        """)
        base = prog.data_symbols["tab"]
        assert base == DATA_BASE
        assert [prog.data[base + i * WORD] for i in range(3)] == [1, 2, 3]

    def test_negative_quad_wraps(self):
        prog = assemble("hlt\n.data\nx: .quad -1")
        assert prog.data[prog.data_symbols["x"]] == 2**64 - 1

    def test_zero_directive(self):
        prog = assemble("hlt\n.data\nbuf: .zero 24")
        base = prog.data_symbols["buf"]
        assert [prog.data[base + i * WORD] for i in range(3)] == [0, 0, 0]

    def test_zero_must_be_word_multiple(self):
        with pytest.raises(AssemblerError):
            assemble("hlt\n.data\nbuf: .zero 7")

    def test_symbol_initializer(self):
        prog = assemble("""
        hlt
        .data
        a: .quad 5
        p: .quad a
        """)
        assert prog.data[prog.data_symbols["p"]] == prog.data_symbols["a"]

    def test_consecutive_symbols_are_adjacent(self):
        prog = assemble("""
        hlt
        .data
        a: .quad 1
        b: .quad 2
        """)
        assert prog.data_symbols["b"] == prog.data_symbols["a"] + WORD

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nmovq $1, %rax")

    def test_quad_outside_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".quad 1")


class TestEntry:
    def test_default_entry_is_main(self):
        prog = assemble("""
        helper: ret
        main: hlt
        """)
        assert prog.entry == prog.code_symbols["main"]

    def test_default_entry_without_main_is_zero(self):
        assert assemble("nop\nhlt").entry == 0

    def test_explicit_entry(self):
        prog = assemble("a: nop\nb: hlt", entry="b")
        assert prog.entry == 1

    def test_unknown_entry_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("nop", entry="nope")


class TestPaperListings:
    def test_figure2_assembles(self):
        prog = assemble(SUM_SEQUENTIAL_ASM + "\n.data\nn: .quad 5\ntab: .quad 1,2,3,4,5")
        # 5 main instructions + 25 sum instructions (Figure 2 lines 2..26).
        assert len(prog) == 30
        assert prog.code_symbols["sum"] == 5

    def test_figure5_assembles_with_18_sum_instructions(self):
        prog = assemble(SUM_FORKED_ASM + "\n.data\nn: .quad 5\ntab: .quad 1,2,3,4,5")
        sum_start = prog.code_symbols["sum"]
        assert len(prog) - sum_start == 18  # Figure 5 lines 2..19

    def test_listing_round_trips(self):
        source = """
        main:
            movq $tab, %rdi
            movq n, %rsi
            call sum
            out %rax
            hlt
        sum:
            cmpq $2, %rsi
            ja .L2
            movq (%rdi), %rax
            ret
        .L2:
            leaq (%rdi,%rsi,8), %rdi
            ret
        .data
        n: .quad 2
        tab: .quad 10, 20
        """
        first = assemble(source)
        second = assemble(first.listing())
        assert [str(i) for i in first.code] == [str(i) for i in second.code]
        assert first.data == second.data
