"""Unit tests for repro.isa.registers."""

from repro.isa import registers as regs


class TestRegisterSets:
    def test_sixteen_gprs(self):
        assert len(regs.GPRS) == 16
        assert len(set(regs.GPRS)) == 16

    def test_flags_is_not_a_gpr(self):
        assert not regs.is_gpr(regs.FLAGS)
        assert regs.is_register(regs.FLAGS)

    def test_all_gprs_are_registers(self):
        for name in regs.GPRS:
            assert regs.is_gpr(name)
            assert regs.is_register(name)

    def test_unknown_names_rejected(self):
        for name in ("eax", "xmm0", "", "RAX", "r16"):
            assert not regs.is_gpr(name)

    def test_stack_pointer_in_fork_copied_set(self):
        # The paper: "The stack pointer itself (rsp) is copied to the
        # forked path".
        assert regs.STACK_POINTER in regs.FORK_COPIED_REGS

    def test_paper_example_registers_copied(self):
        # The paper's example copies rbx, rdi and rsi on fork.
        for name in ("rbx", "rdi", "rsi"):
            assert name in regs.FORK_COPIED_REGS

    def test_rax_not_copied_on_fork(self):
        # rax must be empty in the forked section: it is the channel that
        # synchronizes the resume path with the callee's result.
        assert "rax" not in regs.FORK_COPIED_REGS


class TestFlagPacking:
    def test_pack_all(self):
        value = regs.pack_flags(True, True, True, True)
        assert value == regs.ZF | regs.SF | regs.CF | regs.OF

    def test_pack_none(self):
        assert regs.pack_flags(False, False, False, False) == 0

    def test_individual_bits_distinct(self):
        bits = {regs.ZF, regs.SF, regs.CF, regs.OF}
        assert len(bits) == 4

    def test_describe(self):
        assert regs.describe_flags(0) == "-"
        assert "ZF" in regs.describe_flags(regs.ZF)
        assert set(regs.describe_flags(regs.ZF | regs.CF).split("|")) == {
            "ZF", "CF"}
