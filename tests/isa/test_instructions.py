"""Unit tests for repro.isa.instructions: metadata and static read/write sets."""

import pytest

from repro.isa import CONDITION_CODES, Imm, Instruction, Mem, OPCODES, Reg
from repro.isa.operands import LabelRef


def make(op, *operands):
    return Instruction(op, tuple(operands))


class TestConstruction:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate")

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            make("add", Reg("rax"))
        with pytest.raises(ValueError):
            make("ret", Reg("rax"))

    def test_shift_accepts_one_or_two_operands(self):
        make("shr", Reg("rsi"))
        make("shl", Imm(3), Reg("rax"))
        with pytest.raises(ValueError):
            make("shl", Imm(3), Reg("rax"), Reg("rbx"))

    def test_every_condition_code_is_an_opcode(self):
        for mnemonic in CONDITION_CODES:
            assert mnemonic in OPCODES
            assert OPCODES[mnemonic].kind == "jcc"


class TestClassification:
    def test_control_instructions(self):
        assert make("jmp", LabelRef("x")).is_control
        assert make("call", LabelRef("x")).is_control
        assert make("ret").is_control
        assert make("fork", LabelRef("x")).is_control
        assert make("endfork").is_control
        assert not make("add", Reg("rax"), Reg("rbx")).is_control

    def test_branches(self):
        assert make("ja", LabelRef("x")).is_branch
        assert make("jmp", LabelRef("x")).is_branch
        assert not make("call", LabelRef("x")).is_branch

    def test_target_label(self):
        instr = make("fork", LabelRef("sum"))
        assert instr.target_label.name == "sum"
        assert make("ret").target_label is None


class TestMemoryClassification:
    def test_load(self):
        instr = make("mov", Mem(base="rdi"), Reg("rax"))
        assert instr.reads_memory()
        assert not instr.writes_memory()

    def test_store(self):
        instr = make("mov", Reg("rax"), Mem(base="rsp"))
        assert not instr.reads_memory()
        assert instr.writes_memory()

    def test_rmw_memory_dest(self):
        instr = make("add", Reg("rax"), Mem(base="rsp"))
        assert instr.reads_memory()
        assert instr.writes_memory()

    def test_load_plus_alu(self):
        # addq 8(%rdi), %rax  — Figure 2 line 6: a load feeding an add.
        instr = make("add", Mem(disp=8, base="rdi"), Reg("rax"))
        assert instr.reads_memory()
        assert not instr.writes_memory()

    def test_lea_touches_no_memory(self):
        instr = make("lea", Mem(base="rdi", index="rsi", scale=8), Reg("rdi"))
        assert not instr.reads_memory()
        assert not instr.writes_memory()

    def test_stack_ops(self):
        assert make("push", Reg("rbx")).writes_memory()
        assert not make("push", Reg("rbx")).reads_memory()
        assert make("pop", Reg("rbx")).reads_memory()
        assert make("call", LabelRef("f")).writes_memory()
        assert make("ret").reads_memory()
        assert not make("fork", LabelRef("f")).writes_memory()
        assert not make("endfork").reads_memory()


class TestRegisterSets:
    def test_mov_reg_reg(self):
        instr = make("mov", Reg("rsi"), Reg("rbx"))
        assert instr.reg_reads() == ("rsi",)
        assert instr.reg_writes() == ("rbx",)

    def test_add_reads_both_writes_flags(self):
        instr = make("add", Reg("rax"), Reg("rbx"))
        assert set(instr.reg_reads()) == {"rax", "rbx"}
        assert set(instr.reg_writes()) == {"rbx", "rflags"}

    def test_cmp_writes_only_flags(self):
        instr = make("cmp", Imm(2), Reg("rsi"))
        assert instr.reg_reads() == ("rsi",)
        assert instr.reg_writes() == ("rflags",)

    def test_jcc_reads_flags(self):
        instr = make("ja", LabelRef("x"))
        assert instr.reg_reads() == ("rflags",)
        assert instr.reg_writes() == ()

    def test_memory_operand_address_registers_read(self):
        instr = make("mov", Reg("rax"), Mem(disp=0, base="rsp"))
        assert "rsp" in instr.reg_reads()

    def test_lea_reads_address_registers(self):
        instr = make("lea", Mem(base="rdi", index="rsi", scale=8), Reg("rdi"))
        assert set(instr.reg_reads()) == {"rdi", "rsi"}
        assert instr.reg_writes() == ("rdi",)

    def test_push_pop_touch_rsp(self):
        push = make("push", Reg("rbx"))
        assert set(push.reg_reads()) == {"rbx", "rsp"}
        assert push.reg_writes() == ("rsp",)
        pop = make("pop", Reg("rbx"))
        assert pop.reg_reads() == ("rsp",)
        assert set(pop.reg_writes()) == {"rbx", "rsp"}

    def test_idiv_implicit_registers(self):
        instr = make("idiv", Reg("rcx"))
        assert set(instr.reg_reads()) == {"rcx", "rax", "rdx"}
        assert set(instr.reg_writes()) == {"rax", "rdx"}

    def test_cqo_implicit_registers(self):
        instr = make("cqo")
        assert instr.reg_reads() == ("rax",)
        assert instr.reg_writes() == ("rdx",)

    def test_mov_to_mem_does_not_read_dest_value(self):
        # A pure store reads the address register but not the old contents.
        instr = make("mov", Reg("rax"), Mem(disp=0, base="rsp"))
        assert not instr.reads_memory()


class TestDisplay:
    def test_str_with_suffix(self):
        assert str(make("mov", Reg("rsi"), Reg("rbx"))) == "movq %rsi, %rbx"

    def test_str_no_suffix_for_control(self):
        assert str(make("ret")) == "ret"
        assert str(make("ja", LabelRef(".L2"))) == "ja .L2"
        assert str(make("fork", LabelRef("sum"))) == "fork sum"

    def test_describe_includes_labels(self):
        instr = Instruction("endfork", labels=(".L1",))
        assert instr.describe() == ".L1: endfork"
