"""Property test: random programs round-trip through listing/assemble."""

from hypothesis import given, settings, strategies as st

from repro.isa import GPRS, assemble

regs = st.sampled_from([r for r in GPRS])
imm = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def _reg(r):
    return "%" + r


_operand = st.one_of(
    imm.map(lambda v: "$%d" % v),
    regs.map(_reg),
    st.tuples(imm, regs).map(lambda t: "%d(%%%s)" % t),
    st.tuples(regs, regs, st.sampled_from([1, 2, 4, 8])).map(
        lambda t: "(%%%s,%%%s,%d)" % t),
)

_binary_op = st.sampled_from(["movq", "addq", "subq", "andq", "orq",
                              "xorq", "imulq", "cmpq", "testq"])
_unary_op = st.sampled_from(["incq", "decq", "negq", "notq"])

_instr = st.one_of(
    st.tuples(_binary_op, _operand, regs).map(
        lambda t: "%s %s, %%%s" % t),
    st.tuples(_unary_op, regs).map(lambda t: "%s %%%s" % t),
    st.tuples(st.sampled_from(["shlq", "shrq", "sarq"]),
              st.integers(min_value=0, max_value=63), regs).map(
        lambda t: "%s $%d, %%%s" % t),
    st.tuples(regs).map(lambda t: "pushq %%%s" % t),
    st.tuples(regs).map(lambda t: "popq %%%s" % t),
    st.just("nop"),
    st.tuples(regs).map(lambda t: "out %%%s" % t),
)

programs = st.lists(_instr, min_size=1, max_size=30).map(
    lambda lines: "main:\n" + "\n".join("    " + l for l in lines) + "\n    hlt\n")


class TestRoundTrip:
    @given(programs)
    @settings(max_examples=120, deadline=None)
    def test_listing_reassembles_identically(self, source):
        first = assemble(source)
        second = assemble(first.listing())
        assert [str(i) for i in first.code] == [str(i) for i in second.code]
        assert first.code_symbols == second.code_symbols

    @given(programs)
    @settings(max_examples=60, deadline=None)
    def test_static_metadata_stable(self, source):
        prog = assemble(source)
        for instr in prog.code:
            # static read/write sets are derived consistently
            assert set(instr.reg_writes()) >= set()
            if instr.writes_memory():
                assert instr.kind in ("push", "call") or instr.mem_operand()
