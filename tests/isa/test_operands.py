"""Unit tests for repro.isa.operands."""

import pytest

from repro.isa import Imm, LabelRef, Mem, Reg


class TestImm:
    def test_str_plain(self):
        assert str(Imm(42)) == "$42"
        assert str(Imm(-8)) == "$-8"

    def test_str_symbolic(self):
        assert str(Imm(0x100000, symbol="tab")) == "$tab"

    def test_frozen(self):
        with pytest.raises(Exception):
            Imm(1).value = 2


class TestReg:
    def test_str(self):
        assert str(Reg("rax")) == "%rax"

    def test_rejects_non_gpr(self):
        with pytest.raises(ValueError):
            Reg("eax")
        with pytest.raises(ValueError):
            Reg("rflags")


class TestMem:
    def test_base_only(self):
        mem = Mem(base="rdi")
        assert str(mem) == "(%rdi)"
        assert mem.regs() == ("rdi",)

    def test_disp_base(self):
        assert str(Mem(disp=8, base="rdi")) == "8(%rdi)"

    def test_full_form(self):
        mem = Mem(disp=0, base="rdi", index="rsi", scale=8)
        assert str(mem) == "(%rdi,%rsi,8)"
        assert mem.regs() == ("rdi", "rsi")

    def test_scale_one_omitted(self):
        assert str(Mem(base="rax", index="rbx", scale=1)) == "(%rax,%rbx)"

    def test_absolute(self):
        assert str(Mem(disp=0x2000)) == "8192"
        assert Mem(disp=0x2000).regs() == ()

    def test_symbolic_disp(self):
        assert str(Mem(disp=0x100000, symbol="tab")) == "tab"

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            Mem(base="rax", index="rbx", scale=3)

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            Mem(base="zzz")


class TestLabelRef:
    def test_unresolved(self):
        ref = LabelRef("sum")
        assert ref.target is None
        assert str(ref) == "sum"

    def test_resolved(self):
        assert LabelRef(".L2", target=7).target == 7
