"""Unit tests for benchmarks/check_regression.py (loaded from its file
path — the benchmarks directory is not a package).

The expensive fresh runs are monkeypatched out; what's under test is the
gate logic: exact comparison of deterministic fields, the speedup floor,
and the deliberate re-baseline path."""

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = (Path(__file__).resolve().parent.parent
              / "benchmarks" / "check_regression.py")


@pytest.fixture(scope="module")
def gate_mod():
    spec = importlib.util.spec_from_file_location("check_regression",
                                                  _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _fresh(cycles=2993, speedup=3.5):
    return {
        "n_cores": 64, "scale": 0,
        "wall_naive_s": 1.0, "wall_event_s": 1.0 / speedup,
        "aggregate_speedup": speedup, "floor_speedup": speedup * 0.9,
        "workloads": [
            {"benchmark": "quicksort", "n": 12, "cycles": cycles,
             "wall_naive_s": 1.0, "wall_event_s": 1.0 / speedup,
             "speedup": speedup},
        ],
    }


def _baseline(cycles=2993, floor=3.0):
    base = _fresh(cycles=cycles)
    base["floor_speedup"] = floor
    return base


@pytest.fixture
def patched(gate_mod, monkeypatch, tmp_path):
    """Route baselines to tmp_path and stub out the timing runs."""
    monkeypatch.setattr(gate_mod, "RESULTS_DIR", tmp_path)

    def install(baseline, fresh):
        (tmp_path / "BENCH_scheduler_fast_path.json").write_text(
            json.dumps(baseline))
        monkeypatch.setattr(gate_mod, "run_fast_path", lambda: fresh)
    return install


class TestGateHelpers:
    def test_exact_records_failures(self, gate_mod, capsys):
        gate = gate_mod.Gate()
        gate.exact("a", 1, 1)
        gate.exact("b", 1, 2)
        assert len(gate.failures) == 1
        out = capsys.readouterr().out
        assert "ok   a" in out and "FAIL b" in out

    def test_missing_baseline_exits(self, gate_mod, monkeypatch, tmp_path):
        monkeypatch.setattr(gate_mod, "RESULTS_DIR", tmp_path)
        with pytest.raises(SystemExit):
            gate_mod._load("scheduler_fast_path")


class TestFastPathGate:
    def test_passes_when_identical(self, gate_mod, patched, capsys):
        patched(_baseline(), _fresh())
        gate = gate_mod.Gate()
        gate_mod.check_fast_path(gate, tolerance=0.05, update=False)
        assert gate.failures == []

    def test_cycles_drift_fails(self, gate_mod, patched, capsys):
        patched(_baseline(cycles=2993), _fresh(cycles=2994))
        gate = gate_mod.Gate()
        gate_mod.check_fast_path(gate, tolerance=0.05, update=False)
        assert any("cycles" in f for f in gate.failures)

    def test_speedup_collapse_fails(self, gate_mod, patched, capsys):
        # fast path silently disabled: event as slow as naive
        patched(_baseline(floor=3.0), _fresh(speedup=1.02))
        gate = gate_mod.Gate()
        gate_mod.check_fast_path(gate, tolerance=0.05, update=False)
        assert any("speedup" in f for f in gate.failures)

    def test_tolerance_absorbs_small_dip(self, gate_mod, patched, capsys):
        patched(_baseline(floor=3.0), _fresh(speedup=2.9))
        gate = gate_mod.Gate()
        gate_mod.check_fast_path(gate, tolerance=0.05, update=False)
        assert gate.failures == []

    def test_missing_workload_record_fails(self, gate_mod, patched, capsys):
        baseline = _baseline()
        baseline["workloads"] = []
        patched(baseline, _fresh())
        gate = gate_mod.Gate()
        gate_mod.check_fast_path(gate, tolerance=0.05, update=False)
        assert any("no baseline record" in f for f in gate.failures)

    def test_update_rewrites_baseline(self, gate_mod, patched, tmp_path,
                                      capsys):
        patched(_baseline(cycles=1), _fresh(cycles=2993))
        gate = gate_mod.Gate()
        gate_mod.check_fast_path(gate, tolerance=0.05, update=True)
        assert gate.failures == []
        written = json.loads(
            (tmp_path / "BENCH_scheduler_fast_path.json").read_text())
        assert written["workloads"][0]["cycles"] == 2993
        assert "floor_speedup" in written

    def test_legacy_baseline_without_floor(self, gate_mod, patched, capsys):
        baseline = _baseline()
        del baseline["floor_speedup"]       # pre-floor baseline schema
        patched(baseline, _fresh(speedup=3.45))
        gate = gate_mod.Gate()
        gate_mod.check_fast_path(gate, tolerance=0.05, update=False)
        assert gate.failures == []
