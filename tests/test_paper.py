"""Tests for the repro.paper module (the paper's listings as programs)."""

import pytest

from repro.paper import (
    SUM_FORKED_ASM,
    SUM_SEQUENTIAL_ASM,
    paper_array,
    sum_forked_program,
    sum_sequential_program,
)


class TestPaperPrograms:
    def test_paper_array(self):
        assert paper_array(5) == [1, 2, 3, 4, 5]
        assert sum(paper_array(5)) == 15

    def test_sum_sequential_builds(self):
        prog = sum_sequential_program([7])
        assert "sum" in prog.code_symbols
        assert prog.read_data("tab", 1) == [7]
        assert prog.read_data("n", 1) == [1]

    def test_sum_forked_has_no_call_ret(self):
        prog = sum_forked_program(paper_array(5))
        opcodes = {i.opcode for i in prog.code}
        assert "fork" in opcodes and "endfork" in opcodes
        assert "call" not in opcodes and "ret" not in opcodes
        assert "push" not in opcodes          # saves removed, Figure 5

    def test_sequential_listing_keeps_saves(self):
        prog = sum_sequential_program(paper_array(5))
        opcodes = [i.opcode for i in prog.code]
        assert opcodes.count("push") >= 3     # Figure 2 lines 8-10

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            sum_sequential_program([])

    def test_negative_values(self):
        from repro.machine import run_sequential
        result = run_sequential(sum_sequential_program([-3, 10, -2]))
        assert result.signed_output == [5]

    def test_listings_contain_paper_comments(self):
        assert "rightmost operand is the destination" not in SUM_SEQUENTIAL_ASM
        assert "sum(t, n/2)" in SUM_SEQUENTIAL_ASM
        assert "consumes the final sum via renaming" in SUM_FORKED_ASM
