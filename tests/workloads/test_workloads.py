"""The Table 1 suite: every workload's compiled program matches its oracle,
at several sizes and seeds, and the registry is complete."""

import pytest

from repro.workloads import WORKLOADS, get_workload


class TestRegistry:
    def test_ten_workloads(self):
        assert len(WORKLOADS) == 10

    def test_paper_numbering(self):
        assert [w.key for w in WORKLOADS] == [
            "01", "02", "03", "04", "05", "06", "07", "08", "09", "10"]

    def test_table1_names(self):
        names = {w.key: w.name for w in WORKLOADS}
        assert names["01"] == "breadthFirstSearch/ndBFS"
        assert names["02"] == "comparisonSort/quickSort"
        assert names["03"] == "convexHull/quickHull"
        assert names["04"] == "dictionary/deterministicHash"
        assert names["05"] == "integerSort/blockRadixSort"
        assert names["06"] == "maximalIndependentSet/ndMIS"
        assert names["07"] == "maximalMatching/ndMatching"
        assert names["08"] == "minSpanningTree/parallelKruskal"
        assert names["09"] == "nearestNeighbors/octTree2Neighbors"
        assert names["10"] == "removeDuplicates/deterministicHash"

    def test_lookup_by_short_and_key(self):
        assert get_workload("bfs").key == "01"
        assert get_workload("05").short == "radixsort"
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_paper_data_parallel_set(self):
        # Paper: "when a benchmark is data parallel its parallel run ILP
        # increases proportionally to the dataset (e.g. benchmarks 1, 2, 5,
        # 6, 9 and 10)".
        growing = {w.key for w in WORKLOADS if w.data_parallel}
        assert growing == {"01", "02", "05", "06", "09", "10"}


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.short)
class TestOracleAgreement:
    def test_scale0(self, workload):
        workload.instance(scale=0, seed=1).verify()

    def test_scale2(self, workload):
        workload.instance(scale=2, seed=1).verify()

    def test_different_seed(self, workload):
        workload.instance(scale=1, seed=99).verify()

    def test_determinism(self, workload):
        a = workload.instance(scale=0, seed=5)
        b = workload.instance(scale=0, seed=5)
        assert a.source == b.source
        assert a.expected_output == b.expected_output

    def test_seed_changes_dataset(self, workload):
        a = workload.instance(scale=1, seed=1)
        b = workload.instance(scale=1, seed=2)
        assert a.source != b.source


class TestInstances:
    def test_explicit_n(self):
        inst = get_workload("quicksort").instance(n=25)
        assert inst.n == 25
        inst.verify()

    def test_trace_entries_stream(self):
        inst = get_workload("dedup").instance(scale=0)
        count = sum(1 for _ in inst.trace_entries())
        assert count == inst.run().steps

    def test_verify_raises_on_mismatch(self):
        inst = get_workload("bfs").instance(scale=0)
        inst.expected_output = [0, 0]
        with pytest.raises(AssertionError):
            inst.verify()

    def test_geometric_scaling(self):
        w = get_workload("mis")
        assert w.instance(scale=3).n == 8 * w.instance(scale=0).n
