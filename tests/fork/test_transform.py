"""Unit tests for the call→fork transformation and the liveness-driven
callee-save elision."""

import pytest

from repro.errors import ReproError
from repro.fork import call_targets, find_functions, fork_transform
from repro.fork.transform import plan_save_elisions
from repro.isa import assemble
from repro.machine import run_forked, run_sequential
from repro.minic import compile_source
from repro.paper import paper_array, sum_forked_program, sum_sequential_program


class TestFunctionDiscovery:
    def test_regions(self):
        prog = assemble("""
        main:
            call f
            hlt
        f:
        .L1:
            nop
            ret
        g:
            ret
        """)
        regions = {r.name: (r.start, r.end) for r in find_functions(prog)}
        assert regions == {"main": (0, 2), "f": (2, 4), "g": (4, 5)}

    def test_local_labels_do_not_split(self):
        prog = assemble("f:\n.L1: nop\n.L2: ret")
        assert [r.name for r in find_functions(prog)] == ["f"]

    def test_call_targets(self):
        prog = assemble("""
        main:
            call f
            call f
            jmp skip
        skip:
            hlt
        f:  ret
        """)
        assert call_targets(prog) == {"f"}


class TestTransform:
    def test_call_becomes_fork(self):
        prog = assemble("""
        main:
            call f
            out %rax
            hlt
        f:
            movq $9, %rax
            ret
        """)
        forked = fork_transform(prog)
        opcodes = [i.opcode for i in forked.code]
        assert "fork" in opcodes and "endfork" in opcodes
        assert "call" not in opcodes and "ret" not in opcodes
        result, _ = run_forked(forked)
        assert result.output == [9]

    def test_selective_transform(self):
        prog = assemble("""
        main:
            call f
            call g
            out %rax
            hlt
        f:
            movq $1, %rax
            ret
        g:
            addq $2, %rax
            ret
        """)
        forked = fork_transform(prog, fork_functions=["g"])
        opcodes = [i.opcode for i in forked.code]
        assert opcodes.count("fork") == 1
        assert opcodes.count("call") == 1
        result, _ = run_forked(forked)
        assert result.output == [3]

    def test_unknown_function_rejected(self):
        prog = assemble("main: call f\nhlt\nf: ret")
        with pytest.raises(ReproError):
            fork_transform(prog, fork_functions=["nope"])

    def test_nothing_to_transform_rejected(self):
        prog = assemble("main: hlt")
        with pytest.raises(ReproError):
            fork_transform(prog)

    def test_entry_preserved(self):
        prog = assemble("""
        helper: ret
        main:
            call helper
            hlt
        """)
        forked = fork_transform(prog)
        assert forked.entry_symbol() == "main"

    def test_data_preserved(self):
        prog = assemble("""
        main:
            call f
            out %rax
            hlt
        f:
            movq cell, %rax
            ret
        .data
        cell: .quad 123
        """)
        forked = fork_transform(prog)
        result, _ = run_forked(forked)
        assert result.output == [123]

    @pytest.mark.parametrize("n", [1, 4, 5, 16, 37])
    def test_figure2_to_forked_equivalence(self, n):
        prog = sum_sequential_program(paper_array(n))
        forked = fork_transform(prog)
        seq = run_sequential(prog)
        fork, _ = run_forked(forked)
        assert fork.output == seq.output

    def test_minic_program_equivalence(self):
        src = """
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        long main() { out(fib(12)); return 0; }
        """
        prog = compile_source(src)
        forked = fork_transform(prog)
        seq = run_sequential(prog)
        fork, machine = run_forked(forked)
        assert fork.output == seq.output == [144]
        assert len(machine.section_table()) > 100   # every call forked


class TestSaveElision:
    def test_simple_bracket_elided(self):
        prog = assemble("""
        main:
            movq $7, %rbx
            call f
            out %rbx
            hlt
        f:
            pushq %rbx
            movq $0, %rbx
            call g
            popq %rbx
            ret
        g:
            ret
        """)
        forked = fork_transform(prog, elide_saves=True)
        pushes = [i for i in forked.code if i.opcode == "push"]
        assert not pushes                       # the pair was removed
        result, _ = run_forked(forked)
        assert result.output == [7]

    def test_pair_without_fork_kept(self):
        prog = assemble("""
        main:
            call f
            out %rax
            hlt
        f:
            pushq %rbx
            movq $1, %rax
            popq %rbx
            ret
        """)
        forked = fork_transform(prog, elide_saves=True)
        assert sum(1 for i in forked.code if i.opcode == "push") == 1

    def test_volatile_register_pair_kept(self):
        # rax is not fork-copied: its save/restore cannot be elided.
        prog = assemble("""
        main:
            movq $3, %rax
            call f
            out %rax
            hlt
        f:
            pushq %rax
            call g
            popq %rax
            ret
        g:
            movq $99, %rax
            ret
        """)
        forked = fork_transform(prog, elide_saves=True)
        assert sum(1 for i in forked.code if i.opcode == "push") == 1

    def test_rsp_relative_access_blocks_elision(self):
        prog = assemble("""
        main:
            call f
            out %rax
            hlt
        f:
            pushq %rbx
            movq 0(%rsp), %rax
            call g
            popq %rbx
            ret
        g:
            ret
        """)
        forked = fork_transform(prog, elide_saves=True)
        assert sum(1 for i in forked.code if i.opcode == "push") == 1

    def test_label_inside_region_blocks_elision(self):
        prog = assemble("""
        main:
            call f
            hlt
        f:
            pushq %rbx
        again:
            call g
            popq %rbx
            ret
        g:
            ret
        """)
        forked = fork_transform(prog, elide_saves=True)
        assert sum(1 for i in forked.code if i.opcode == "push") == 1

    def test_elision_optional(self):
        prog = assemble("""
        main:
            call f
            hlt
        f:
            pushq %rbx
            call g
            popq %rbx
            ret
        g:
            ret
        """)
        kept = fork_transform(prog, elide_saves=False)
        assert sum(1 for i in kept.code if i.opcode == "push") == 1

    def test_figure2_reproduces_figure5(self):
        # The full pipeline on the paper's own example: Figure 2's three
        # callee saves collapse — two pure deletes (fork copies preserve
        # rbx/rdi) and one rewrite of the mismatched pushq %rsi /
        # popq %rbx pair into `movq %rsi, %rbx` — yielding exactly the
        # hand-written Figure 5 `sum`.
        prog = sum_sequential_program(paper_array(5))
        forked = fork_transform(prog, elide_saves=True)
        reference = sum_forked_program(paper_array(5))

        def body_of(program):
            regions = {r.name: r for r in find_functions(program)}
            region = regions["sum"]
            return [str(program.code[a])
                    for a in range(region.start, region.end)]

        assert body_of(forked) == body_of(reference)
        result, _ = run_forked(forked)
        assert result.signed_output == [15]

    def test_no_dead_pairs_remain_in_transformed_sum(self):
        # Regression for the liveness-driven elision: after the fixpoint,
        # the planner itself must find nothing left to remove, and no
        # push/pop survives in the transformed sum at all.
        prog = sum_sequential_program(paper_array(16))
        forked = fork_transform(prog, elide_saves=True)
        assert plan_save_elisions(forked) == []
        regions = {r.name: r for r in find_functions(forked)}
        sum_ops = [forked.code[a].opcode
                   for a in range(regions["sum"].start, regions["sum"].end)]
        assert "pop" not in sum_ops
        # the temp slot for the first recursive result is explicit rsp
        # arithmetic (Figure 5 lines 11-12), not a callee-save pair
        assert sum_ops.count("push") == 0

    def test_elision_preserves_behaviour_on_minic(self):
        src = """
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        long main() { out(fib(11)); return 0; }
        """
        prog = compile_source(src)
        plain = fork_transform(prog, elide_saves=False)
        elided = fork_transform(prog, elide_saves=True)
        assert run_forked(plain)[0].output == run_forked(elided)[0].output
