"""Tests for the Figure 4 / Figure 6 section renderings."""

from repro.fork import render_section_trace, render_section_tree
from repro.machine import run_forked
from repro.paper import paper_array, sum_forked_program


class TestRenderings:
    def test_tree_shape_for_sum5(self, sum5_fork):
        _, machine = run_forked(sum5_fork)
        text = render_section_tree(machine)
        lines = text.splitlines()
        assert lines[0].startswith("section 1")
        assert len(lines) == 6
        # Figure 4: sections 3 and 5 hang off section 2.
        assert any("section 3" in l and "|" in l for l in lines)

    def test_tree_lists_lengths(self, sum5_fork):
        _, machine = run_forked(sum5_fork)
        text = render_section_tree(machine)
        assert "16 instrs" in text            # section 2, Figure 6

    def test_trace_grouping(self, sum5_fork):
        result, _ = run_forked(sum5_fork, record_trace=True)
        text = render_section_trace(result.trace)
        assert "// section 1" in text
        assert "2-16" in text                 # section 2 has 16 instructions
        assert "endfork" in text

    def test_trace_tags_match_figure6(self, sum5_fork):
        result, _ = run_forked(sum5_fork, record_trace=True)
        text = render_section_trace(result.trace)
        # Section 5 of the paper (our numbering shifts by main's section):
        # the final-sum consumer reads the stack temp.
        assert "addq (%rsp), %rax" in text or "addq 0(%rsp), %rax" in text

    def test_larger_run_renders(self):
        result, machine = run_forked(sum_forked_program(paper_array(40)),
                                     record_trace=True)
        tree = render_section_tree(machine)
        assert tree.count("section") == len(machine.section_table())
        trace = render_section_trace(result.trace)
        assert trace.count("// section") == len(machine.section_table())
