"""Fault-plan models: pure-hash decisions, validation, spec parsing."""

import pytest

from repro.errors import ReproError
from repro.faults import CoreDeath, FaultPlan, LinkSpike
from repro.faults.models import _mix


class TestMix:
    def test_deterministic(self):
        assert _mix(1, 2, 3) == _mix(1, 2, 3)

    def test_range(self):
        for args in [(0,), (1, 2), (7, 1, 4, 5, 900, 3)]:
            value = _mix(*args)
            assert 0.0 <= value < 1.0

    def test_sensitive_to_every_part(self):
        base = _mix(7, 1, 4, 5, 900, 0)
        assert base != _mix(8, 1, 4, 5, 900, 0)      # seed
        assert base != _mix(7, 2, 4, 5, 900, 0)      # tag
        assert base != _mix(7, 1, 4, 5, 901, 0)      # cycle
        assert base != _mix(7, 1, 4, 5, 900, 1)      # attempt

    def test_negative_parts_ok(self):
        # the DMH port is link endpoint -1
        assert 0.0 <= _mix(7, 1, -1, 3, 50) < 1.0


class TestDecisions:
    def test_drop_pure_function(self):
        plan = FaultPlan(seed=3, drop_rate=0.5)
        draws = [plan.dropped(0, 1, c, 0) for c in range(200)]
        assert draws == [plan.dropped(0, 1, c, 0) for c in range(200)]
        assert any(draws) and not all(draws)

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(seed=3)
        assert not any(plan.dropped(0, 1, c, 0) for c in range(100))
        assert not any(plan.jittered(0, c) for c in range(100))
        assert not any(plan.ack_lost(0, 1, c) for c in range(100))
        assert all(plan.spike_extra_at(0, 1, c) == 0 for c in range(100))

    def test_seed_changes_the_stream(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = FaultPlan(seed=2, drop_rate=0.5)
        assert ([a.dropped(0, 1, c, 0) for c in range(200)]
                != [b.dropped(0, 1, c, 0) for c in range(200)])

    def test_scheduled_spike_window(self):
        plan = FaultPlan(spikes=(LinkSpike(src=0, dst=1, start=10, end=20,
                                           extra=5),))
        assert plan.spike_extra_at(0, 1, 9) == 0
        assert plan.spike_extra_at(0, 1, 10) == 5
        assert plan.spike_extra_at(0, 1, 19) == 5
        assert plan.spike_extra_at(0, 1, 20) == 0
        assert plan.spike_extra_at(1, 0, 15) == 0    # directed link

    def test_scheduled_spikes_stack(self):
        plan = FaultPlan(spikes=(LinkSpike(0, 1, 0, 100, 3),
                                 LinkSpike(0, 1, 50, 100, 4)))
        assert plan.spike_extra_at(0, 1, 10) == 3
        assert plan.spike_extra_at(0, 1, 60) == 7

    def test_jitter_core_filter(self):
        plan = FaultPlan(seed=9, jitter_rate=0.8, jitter_cores=(2,))
        assert not any(plan.jittered(0, c) for c in range(100))
        assert any(plan.jittered(2, c) for c in range(100))

    def test_retry_wait_capped_exponential(self):
        plan = FaultPlan(retry_timeout=4, backoff_cap=32)
        assert [plan.retry_wait(a) for a in range(6)] == [4, 8, 16, 32,
                                                          32, 32]

    def test_active(self):
        assert not FaultPlan().active
        assert not FaultPlan(seed=99, retry_timeout=2).active
        assert FaultPlan(drop_rate=0.1).active
        assert FaultPlan(deaths=(CoreDeath(0, 5),)).active
        assert FaultPlan(spikes=(LinkSpike(0, 1, 0, 9, 1),)).active


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ReproError, match="drop_rate"):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(ReproError, match="jitter_rate"):
            FaultPlan(jitter_rate=-0.1)

    def test_retry_knobs(self):
        with pytest.raises(ReproError, match="retry_timeout"):
            FaultPlan(retry_timeout=0)
        with pytest.raises(ReproError, match="backoff_cap"):
            FaultPlan(retry_timeout=8, backoff_cap=4)
        with pytest.raises(ReproError, match="max_resends"):
            FaultPlan(max_resends=0)

    def test_death_cycle_positive(self):
        with pytest.raises(ReproError, match="death cycle"):
            FaultPlan(deaths=(CoreDeath(core=0, cycle=0),))

    def test_validate_death_core_in_range(self):
        plan = FaultPlan(deaths=(CoreDeath(core=7, cycle=10),))
        plan.validate(8)
        with pytest.raises(ReproError, match="core 7"):
            plan.validate(4)

    def test_validate_rejects_total_annihilation(self):
        plan = FaultPlan(deaths=(CoreDeath(0, 10), CoreDeath(1, 20)))
        plan.validate(4)
        with pytest.raises(ReproError, match="every core"):
            plan.validate(2)

    def test_validate_jitter_cores_in_range(self):
        plan = FaultPlan(jitter_rate=0.1, jitter_cores=(5,))
        plan.validate(8)
        with pytest.raises(ReproError, match="core 5"):
            plan.validate(4)


class TestFromSpec:
    def test_full_spec(self):
        plan = FaultPlan.from_spec(
            "seed=7, drop=0.1, spike=0.2, spike_extra=6, jitter=0.05, "
            "ackloss=0.3, die=3@500, die=2@600, timeout=2, cap=16, "
            "resends=4, redispatch=0, redispatch_latency=5")
        assert plan.seed == 7
        assert plan.drop_rate == 0.1
        assert plan.spike_rate == 0.2
        assert plan.spike_extra == 6
        assert plan.jitter_rate == 0.05
        assert plan.ack_loss_rate == 0.3
        assert plan.deaths == (CoreDeath(3, 500), CoreDeath(2, 600))
        assert plan.retry_timeout == 2
        assert plan.backoff_cap == 16
        assert plan.max_resends == 4
        assert plan.redispatch is False
        assert plan.redispatch_latency == 5

    def test_empty_tokens_skipped(self):
        assert FaultPlan.from_spec("seed=1,,").seed == 1

    def test_unknown_key(self):
        with pytest.raises(ReproError, match="unknown"):
            FaultPlan.from_spec("warp=0.5")

    def test_missing_equals(self):
        with pytest.raises(ReproError, match="key=value"):
            FaultPlan.from_spec("chaos")

    def test_bad_number(self):
        with pytest.raises(ReproError, match="seed"):
            FaultPlan.from_spec("seed=lots")

    def test_bad_die_format(self):
        with pytest.raises(ReproError, match="CORE@CYCLE"):
            FaultPlan.from_spec("die=3")

    def test_out_of_range_rate_still_validated(self):
        with pytest.raises(ReproError, match="drop_rate"):
            FaultPlan.from_spec("drop=1.5")


class TestStartCycle:
    """``start_cycle`` gates every probabilistic decision — the warm-fork
    soundness knob (repro.snapshot)."""

    def test_default_and_validation(self):
        assert FaultPlan().start_cycle == 0
        with pytest.raises(ReproError, match="start_cycle"):
            FaultPlan(start_cycle=-1)

    def test_from_spec_start(self):
        assert FaultPlan.from_spec("drop=0.1,start=500").start_cycle == 500

    def test_first_effect_inactive_plan(self):
        assert FaultPlan().first_effect_cycle() == float("inf")

    def test_first_effect_probabilistic(self):
        assert FaultPlan(drop_rate=0.1).first_effect_cycle() == 1
        assert FaultPlan(drop_rate=0.1,
                         start_cycle=500).first_effect_cycle() == 500

    def test_first_effect_death_wins_when_earlier(self):
        plan = FaultPlan(drop_rate=0.1, start_cycle=500,
                         deaths=(CoreDeath(core=0, cycle=200),))
        assert plan.first_effect_cycle() == 200

    def test_first_effect_scheduled_spike_respects_gate(self):
        plan = FaultPlan(spikes=(LinkSpike(src=-1, dst=0, start=100,
                                           end=300, extra=4),),
                         start_cycle=250)
        assert plan.first_effect_cycle() == 250
