"""Differential harness for the fault subsystem.

The contract under test is the tentpole's acceptance bar: a faulted run
that *completes* must produce **bit-identical architectural results**
(outputs, final registers, final memory) to the fault-free run — faults
perturb timing, never values — and the naive and event-driven schedulers
must agree on *everything* about a faulted run, fault counters and event
stream included.
"""

import functools

import pytest

from repro.errors import SimulationError
from repro.faults import CoreDeath, FaultPlan
from repro.fork import fork_transform
from repro.minic import compile_source
from repro.sim import SimConfig, simulate
from repro.workloads import WORKLOADS, get_workload

ALL_SHORTS = [w.short for w in WORKLOADS]

#: the chaos plan the whole suite is driven through: drops with a tight
#: retry ladder, random + scheduled-free spikes, slow-core jitter, lost
#: acks, and two mid-run fail-stops
CHAOS = dict(seed=2015, drop_rate=0.08, spike_rate=0.05, jitter_rate=0.03,
             ack_loss_rate=0.08, retry_timeout=2, backoff_cap=16)


N_CORES = 4


@functools.lru_cache(maxsize=None)
def _workload_program(short):
    inst = get_workload(short).instance(scale=0)
    return fork_transform(inst.program)


@functools.lru_cache(maxsize=None)
def _fault_free_base(short):
    """The fault-free reference, computed once per workload with the fast
    scheduler — the existing differential harness (tests/sim) already
    proves it bit-identical to the naive one."""
    result, _ = simulate(_workload_program(short),
                         SimConfig(n_cores=N_CORES, stack_shortcut=True))
    return result


def _chaos_plan(base_cycles, n_cores):
    deaths = (CoreDeath(core=n_cores - 1, cycle=max(1, base_cycles // 4)),
              CoreDeath(core=n_cores - 2, cycle=max(2, base_cycles // 2)))
    return FaultPlan(deaths=deaths, **CHAOS)


class TestWorkloadsBitIdentical:
    @pytest.mark.parametrize("short", ALL_SHORTS)
    @pytest.mark.parametrize("event_driven", [False, True],
                             ids=["naive", "event"])
    def test_faulted_run_matches_fault_free(self, short, event_driven):
        base = _fault_free_base(short)
        plan = _chaos_plan(base.cycles, N_CORES)
        faulted, _ = simulate(_workload_program(short), SimConfig(
            n_cores=N_CORES, stack_shortcut=True,
            event_driven=event_driven, faults=plan))
        assert faulted.outputs == base.outputs
        assert faulted.final_regs == base.final_regs
        assert faulted.final_memory == base.final_memory
        assert faulted.cycles >= base.cycles
        assert faulted.fault_stats["deaths"] == 2


class TestSchedulersAgreeUnderFaults:
    #: under faults the two schedulers must still agree bit-for-bit on
    #: every field — including the fault counters and the event stream
    FIELDS = ("cycles", "instructions", "sections", "outputs", "final_regs",
              "final_memory", "fetch_end", "retire_end", "fetch_computed",
              "requests", "request_hops", "per_core_instructions",
              "request_latencies", "core_occupancy", "section_occupancy",
              "noc_stats", "events", "stall_causes", "fault_stats")

    @pytest.mark.parametrize("short", ["quicksort", "bfs", "mst"])
    def test_modes_identical(self, short):
        prog = _workload_program(short)
        plan = _chaos_plan(_fault_free_base(short).cycles, N_CORES)
        naive, _ = simulate(prog, SimConfig(
            n_cores=N_CORES, stack_shortcut=True, events=True,
            event_driven=False, faults=plan))
        event, _ = simulate(prog, SimConfig(
            n_cores=N_CORES, stack_shortcut=True, events=True,
            event_driven=True, faults=plan))
        for name in self.FIELDS:
            assert getattr(naive, name) == getattr(event, name), name

    def test_fault_recovery_attributed(self):
        prog = _workload_program("quicksort")
        plan = _chaos_plan(_fault_free_base("quicksort").cycles, N_CORES)
        result, _ = simulate(prog, SimConfig(
            n_cores=N_CORES, stack_shortcut=True, events=True,
            faults=plan))
        assert "fault_recovery" in result.stall_causes["causes"]
        per_section = result.stall_causes["per_section"]
        assert sum(c["fault_recovery"] for c in per_section.values()) > 0


PROGRAM = """
long A[8] = {4, 1, 6, 2, 9, 5, 7, 3};
long sum(long* t, long k) {
    if (k == 1) return t[0];
    return sum(t, k / 2) + sum(t + k / 2, k - k / 2);
}
long main() { out(sum(A, 8)); return 0; }
"""


class TestFailStopSemantics:
    def test_non_root_death_completes_with_redispatch(self):
        prog = compile_source(PROGRAM, fork_mode=True)
        base, _ = simulate(prog, SimConfig(n_cores=4, stack_shortcut=True))
        plan = FaultPlan(deaths=(CoreDeath(core=1, cycle=100),))
        result, _ = simulate(prog, SimConfig(
            n_cores=4, stack_shortcut=True, faults=plan))
        assert result.fault_stats["redispatches"] >= 1
        assert result.outputs == base.outputs

    def test_without_redispatch_the_run_maroons(self):
        prog = compile_source(PROGRAM, fork_mode=True)
        plan = FaultPlan(deaths=(CoreDeath(core=1, cycle=100),),
                         redispatch=False)
        with pytest.raises(SimulationError,
                           match="dead cores: \\[1\\]") as excinfo:
            simulate(prog, SimConfig(n_cores=4, stack_shortcut=True,
                                     faults=plan, max_cycles=3000))
        assert "cycle budget exhausted" in str(excinfo.value)

    @pytest.mark.parametrize("event_driven", [False, True],
                             ids=["naive", "event"])
    def test_death_on_idle_core_is_harmless(self, event_driven):
        prog = compile_source(PROGRAM, fork_mode=True)
        base, _ = simulate(prog, SimConfig(
            n_cores=4, stack_shortcut=True, event_driven=event_driven))
        # long after completion-side activity on core 3 has drained
        plan = FaultPlan(deaths=(CoreDeath(core=3, cycle=base.cycles - 1),))
        result, _ = simulate(prog, SimConfig(
            n_cores=4, stack_shortcut=True, event_driven=event_driven,
            faults=plan))
        assert result.outputs == base.outputs
        assert result.fault_stats["deaths"] == 1
