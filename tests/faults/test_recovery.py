"""Fault-engine mechanics: the retry ladder, jitter, failover placement,
and the zero-plan ≡ no-plan equivalence."""

import pytest

from repro.errors import SimulationError
from repro.faults import CoreDeath, FaultPlan, FaultStats, LinkSpike
from repro.faults.recovery import FaultEngine
from repro.minic import compile_source
from repro.sim import SimConfig, simulate

PROGRAM = """
long A[8] = {4, 1, 6, 2, 9, 5, 7, 3};
long sum(long* t, long k) {
    if (k == 1) return t[0];
    return sum(t, k / 2) + sum(t + k / 2, k - k / 2);
}
long main() { out(sum(A, 8)); return 0; }
"""


def _prog():
    return compile_source(PROGRAM, fork_mode=True)


class _StubCore:
    def __init__(self, core_id, dead=False, n_open=0, runnable=True):
        self.id = core_id
        self.dead = dead
        self.open_secs = [object()] * n_open
        self._runnable = runnable

    def _runnable_sections(self, now):
        return [object()] if self._runnable else []


class _StubProc:
    def __init__(self, cores=()):
        self.tracer = None
        self.cores = list(cores)


class TestFaultStats:
    def test_starts_at_zero(self):
        stats = FaultStats()
        assert all(v == 0 for v in stats.as_dict().values())

    def test_as_dict_covers_every_counter(self):
        assert set(FaultStats().as_dict()) == set(FaultStats.__slots__)


class TestPerturbHop:
    def test_no_faults_is_identity(self):
        engine = FaultEngine(_StubProc(), FaultPlan())
        for base in (0, 1, 3):
            assert engine.perturb_hop(0, 1, 10, base, 1, 1) == base
        assert all(v == 0 for v in engine.stats.as_dict().values())

    def test_scheduled_spike_adds_exactly_extra(self):
        plan = FaultPlan(spikes=(LinkSpike(src=0, dst=1, start=0,
                                           end=1000, extra=5),))
        engine = FaultEngine(_StubProc(), plan)
        assert engine.perturb_hop(0, 1, 10, 3, 1, 1) == 8
        assert engine.perturb_hop(1, 0, 10, 3, 1, 1) == 3   # other direction
        assert engine.stats.spike_count == 1
        assert engine.stats.spike_cycles == 5

    def test_drop_ladder_charges_backoff(self):
        plan = FaultPlan(seed=5, drop_rate=0.6, retry_timeout=2,
                         backoff_cap=8, max_resends=4)
        engine = FaultEngine(_StubProc(), plan)
        charged = 0
        for now in range(200):
            # independently walk the deterministic ladder the engine folds
            delay, attempt = 0, 0
            while (attempt < plan.max_resends
                   and plan.dropped(0, 1, now + delay, attempt)):
                delay += plan.retry_wait(attempt)
                attempt += 1
            assert engine.perturb_hop(0, 1, now, 3, 1, 1) == delay + 3
            charged += delay
        assert engine.stats.drops == engine.stats.retries > 0
        assert engine.stats.backoff_cycles == charged

    def test_forced_delivery_after_max_resends(self):
        plan = FaultPlan(seed=0, drop_rate=0.99, retry_timeout=2,
                         backoff_cap=8, max_resends=3)
        engine = FaultEngine(_StubProc(), plan)
        ceiling = sum(plan.retry_wait(a) for a in range(3))
        for now in range(100):
            total = engine.perturb_hop(0, 1, now, 1, 1, 1)
            assert total <= ceiling + 1                 # progress guaranteed
        assert engine.stats.drops > 0

    def test_ack_loss_is_accounting_only(self):
        plan = FaultPlan(seed=2, ack_loss_rate=0.9)
        engine = FaultEngine(_StubProc(), plan)
        for now in range(50):
            assert engine.perturb_hop(0, 1, now, 3, 1, 1) == 3
        assert engine.stats.ack_losses > 0
        assert engine.stats.ack_losses == engine.stats.dup_sends_deduped


class TestJitter:
    def test_counts_only_with_runnable_work(self):
        plan = FaultPlan(seed=4, jitter_rate=0.9)
        busy = FaultEngine(_StubProc(), plan)
        idle = FaultEngine(_StubProc(), plan)
        busy_core = _StubCore(0, runnable=True)
        idle_core = _StubCore(0, runnable=False)
        blocked = sum(busy.fetch_blocked(busy_core, now)
                      for now in range(100))
        assert blocked > 0
        assert busy.stats.jitter_cycles == blocked
        assert not any(idle.fetch_blocked(idle_core, now)
                       for now in range(100))
        assert idle.stats.jitter_cycles == 0


class TestFailoverPlacement:
    def test_pick_live_core_least_loaded(self):
        proc = _StubProc([_StubCore(0, n_open=2), _StubCore(1, dead=True),
                          _StubCore(2, n_open=1), _StubCore(3, n_open=1)])
        engine = FaultEngine(proc, FaultPlan())
        assert engine.pick_live_core().id == 2      # tie -> lowest id

    def test_live_core_from_wraps_past_dead(self):
        proc = _StubProc([_StubCore(0), _StubCore(1, dead=True),
                          _StubCore(2, dead=True), _StubCore(3)])
        engine = FaultEngine(proc, FaultPlan())
        assert engine.live_core_from(0) == 0
        assert engine.live_core_from(1) == 3
        assert engine.live_core_from(3) == 3

    def test_all_dead_raises(self):
        proc = _StubProc([_StubCore(0, dead=True), _StubCore(1, dead=True)])
        engine = FaultEngine(proc, FaultPlan())
        with pytest.raises(SimulationError, match="fail-stopped"):
            engine.pick_live_core()
        with pytest.raises(SimulationError, match="fail-stopped"):
            engine.live_core_from(0)


class TestZeroPlanEquivalence:
    #: every SimResult field a zero-rate plan must leave untouched
    FIELDS = ("cycles", "instructions", "sections", "outputs", "final_regs",
              "final_memory", "fetch_end", "retire_end", "fetch_computed",
              "requests", "request_hops", "per_core_instructions",
              "request_latencies", "core_occupancy", "section_occupancy",
              "noc_stats", "events", "stall_causes")

    @pytest.mark.parametrize("event_driven", [False, True])
    def test_zero_plan_is_the_perfect_machine(self, event_driven):
        prog = _prog()
        plain, _ = simulate(prog, SimConfig(
            n_cores=4, stack_shortcut=True, events=True,
            event_driven=event_driven))
        zeroed, _ = simulate(prog, SimConfig(
            n_cores=4, stack_shortcut=True, events=True,
            event_driven=event_driven, faults=FaultPlan(seed=99)))
        for name in self.FIELDS:
            assert getattr(plain, name) == getattr(zeroed, name), name
        assert plain.fault_stats is None
        assert zeroed.fault_stats is not None
        assert all(v == 0 for v in zeroed.fault_stats.values())


class TestDeathAndRedispatch:
    def test_redispatch_completes_and_matches(self):
        prog = _prog()
        base, _ = simulate(prog, SimConfig(n_cores=4, stack_shortcut=True))
        plan = FaultPlan(deaths=(CoreDeath(core=1, cycle=100),))
        result, proc = simulate(prog, SimConfig(
            n_cores=4, stack_shortcut=True, events=True, faults=plan))
        assert proc.cores[1].dead
        assert result.outputs == base.outputs
        assert result.final_memory == base.final_memory
        assert result.fault_stats["deaths"] == 1
        assert result.fault_stats["redispatches"] >= 1
        kinds = [kind for _, kind, _ in result.events]
        assert "core_dead" in kinds
        assert "section_redispatch" in kinds

    def test_redispatch_lands_on_a_live_core(self):
        prog = _prog()
        plan = FaultPlan(deaths=(CoreDeath(core=1, cycle=100),))
        result, proc = simulate(prog, SimConfig(
            n_cores=4, stack_shortcut=True, events=True, faults=plan))
        for _, kind, f in result.events:
            if kind == "section_redispatch":
                assert f["src"] == 1
                assert not proc.cores[f["dst"]].dead
        # completed sections keep their historical core_id (even a dead
        # core's), but nothing incomplete may be stranded on a dead core
        for sec in proc.sections:
            if not sec.complete:
                assert not proc.cores[sec.core_id].dead

    def test_double_death_still_correct(self):
        prog = _prog()
        base, _ = simulate(prog, SimConfig(n_cores=4, stack_shortcut=True))
        plan = FaultPlan(deaths=(CoreDeath(core=1, cycle=80),
                                 CoreDeath(core=2, cycle=120)),
                         redispatch_latency=4)
        result, _ = simulate(prog, SimConfig(
            n_cores=4, stack_shortcut=True, faults=plan))
        assert result.outputs == base.outputs
        assert result.final_memory == base.final_memory
        assert result.fault_stats["deaths"] == 2

    def test_stats_json_exports_fault_stats(self):
        prog = _prog()
        plan = FaultPlan(seed=1, drop_rate=0.2)
        result, _ = simulate(prog, SimConfig(
            n_cores=4, stack_shortcut=True, faults=plan))
        payload = result.to_json_dict()
        assert payload["fault_stats"]["retries"] > 0
        plain, _ = simulate(prog, SimConfig(n_cores=4, stack_shortcut=True))
        assert "fault_stats" not in plain.to_json_dict()
