"""Engine behaviour: failure isolation, callbacks, report accounting."""

import pytest

from repro import assemble
from repro.errors import ReproError
from repro.runner import Job, ResultCache, execute_job, run_batch
from repro.sim import SimConfig

_GOOD = """
main:
    movq $41, %rax
    incq %rax
    out %rax
    hlt
"""


def _good_job(**kwargs):
    return Job.from_program(assemble(_GOOD), config=SimConfig(n_cores=2),
                            **kwargs)


def _bad_job():
    # assembles fine at spec time but exceeds its cycle budget when run:
    # failure surfaces inside the worker, where isolation must catch it
    source = """
    main:
        jmp main
    """
    return Job.from_program(assemble(source),
                            config=SimConfig(n_cores=1, max_cycles=200),
                            job_id="bad")


class TestExecuteJob:
    def test_payload_shape(self):
        payload = execute_job(_good_job())
        assert payload["outputs"] == [42]
        assert payload["cycles"] > 0
        assert "memory_digest" in payload

    def test_include_memory(self):
        with_mem = execute_job(_good_job(include_memory=True))
        without = execute_job(_good_job())
        assert "final_memory" in with_mem
        assert "final_memory" not in without

    def test_raises_unisolated(self):
        with pytest.raises(ReproError):
            execute_job(_bad_job())


class TestFailureIsolation:
    def test_one_failure_leaves_others_untouched(self):
        report = run_batch([_good_job(job_id="a"), _bad_job(),
                            _good_job(job_id="b")])
        assert not report.ok
        assert report.executed == 2
        assert [o.status for o in report.outcomes] == ["ok", "failed", "ok"]
        failed = report.outcomes[1]
        assert failed.payload is None
        assert "cycle budget" in failed.error

    def test_pool_isolates_too(self):
        report = run_batch([_good_job(job_id="a"), _bad_job()],
                           pool_size=2)
        assert report.executed == 1 and len(report.failures) == 1

    def test_failures_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch([_bad_job()], cache=cache)
        assert len(cache) == 0
        # and the retry actually re-executes
        assert run_batch([_bad_job()], cache=cache).executed == 0


class TestReport:
    def test_on_outcome_called_per_job(self):
        seen = []
        run_batch([_good_job(job_id="a"), _good_job(job_id="b")],
                  on_outcome=lambda o: seen.append(o.job_id))
        assert sorted(seen) == ["a", "b"]

    def test_summary_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch([_good_job()], cache=cache)
        # include_memory changes the key, so this one is a fresh execute
        fresh = _good_job(include_memory=True)
        report = run_batch([_good_job(), fresh, _bad_job()], cache=cache)
        assert report.cache_hits == 1
        assert report.executed == 1
        assert "1 executed, 1 cached, 1 failed" in report.summary()

    def test_json_dict_timing_toggle(self):
        report = run_batch([_good_job()])
        timed = report.to_json_dict()
        bare = report.to_json_dict(timing=False)
        assert "wall_s" in timed and "wall_s" not in bare
        assert "wall_s" in timed["outcomes"][0]
        assert "wall_s" not in bare["outcomes"][0]
