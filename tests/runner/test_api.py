"""The repro.api stability facade."""

import repro
from repro import api
from repro.runner import Job

_C = "long main() { out(40 + 2); return 0; }"
_ASM = "main:\n    movq $7, %rax\n    out %rax\n    hlt\n"


class TestFacadeSurface:
    def test_all_names_exist(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_package_reexports(self):
        # the package root exposes the facade and the engine types
        for name in ("api", "BatchReport", "Job", "ResultCache",
                     "run_batch"):
            assert name in repro.__all__
            assert hasattr(repro, name)


class TestFacadeCalls:
    def test_compile_and_run_sequential(self):
        result = api.run_sequential(api.compile_c(_C))
        assert result.signed_output == [42]

    def test_assemble_and_simulate(self):
        run = api.simulate(api.assemble(_ASM))
        assert run.result.outputs == [7]
        assert run.processor is not None

    def test_run_forked_typed_result(self):
        run = api.run_forked(api.compile_c(_C, fork=True))
        assert run.result.signed_output == [42]
        assert run.sections >= 1
        assert run.machine.section_table()

    def test_transform_alias(self):
        prog = api.compile_c(_C)
        assert "fork" in api.transform(prog).listing()

    def test_load_program_by_suffix(self, tmp_path):
        c_path = tmp_path / "p.c"
        c_path.write_text(_C)
        s_path = tmp_path / "p.s"
        s_path.write_text(_ASM)
        assert "fork" in api.load_program(str(c_path)).listing()
        assert api.load_program(str(s_path)).code


class TestFacadeBatch:
    def test_make_jobs_lifts_programs(self):
        prog = api.compile_c(_C, fork=True)
        job = Job.from_program(prog, job_id="kept")
        jobs = api.make_jobs([prog, job])
        assert jobs[0].job_id == "job-0"
        assert jobs[1] is job

    def test_batch_with_cache_dir(self, tmp_path):
        jobs = api.make_jobs([api.compile_c(_C, fork=True)])
        cold = api.batch(jobs, cache_dir=str(tmp_path))
        warm = api.batch(jobs, cache_dir=str(tmp_path))
        assert cold.executed == 1 and warm.cache_hits == 1
        assert warm.payloads() == cold.payloads()

    def test_batch_use_cache_false(self, tmp_path):
        jobs = api.make_jobs([api.compile_c(_C, fork=True)])
        api.batch(jobs, cache_dir=str(tmp_path))
        again = api.batch(jobs, cache_dir=str(tmp_path), use_cache=False)
        assert again.executed == 1 and again.cache_hits == 0


class TestApiV2:
    """The v2 facade: snapshot/resume/checkpoints_of + the kernel=
    spelling replacing event_driven=."""

    _SIM = ("main:\n    movq $5, %rax\n    movq $7, %rbx\n"
            "    addq %rbx, %rax\n    out %rax\n    hlt\n")

    def test_schema_version_is_two(self):
        assert api.API_SCHEMA_VERSION == 2

    def test_snapshot_resume_roundtrip(self):
        prog = api.assemble(self._SIM)
        cold = api.simulate(prog)
        snap = api.snapshot(prog, 3)
        assert snap.cycle == 3
        warm = api.resume(snap)
        assert warm.result.cycles == cold.result.cycles
        assert warm.result.outputs == cold.result.outputs
        assert warm.result.final_regs == cold.result.final_regs

    def test_simulate_resume_from(self):
        prog = api.assemble(self._SIM)
        cold = api.simulate(prog)
        warm = api.simulate(prog, resume_from=api.snapshot(prog, 3))
        assert warm.result.cycles == cold.result.cycles

    def test_checkpoints_of(self):
        prog = api.assemble(self._SIM)
        cold = api.simulate(prog)
        snaps = api.checkpoints_of(prog, [2, 10 ** 9])
        assert [s.cycle for s in snaps] == [2, cold.result.cycles]

    def test_event_driven_warns_and_maps(self):
        import warnings
        from repro.sim import SimConfig
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            naive = SimConfig(event_driven=False)
            event = SimConfig(event_driven=True)
        assert naive.kernel == "naive" and event.kernel == "event"
        assert len(caught) == 2
        assert all(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_kernel_spelling_does_not_warn(self):
        import warnings
        from repro.sim import SimConfig
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cfg = SimConfig(kernel="naive")
        assert cfg.event_driven is False
        assert not caught

    def test_wire_form_configs_never_warn(self):
        import warnings
        from repro.sim import SimConfig
        wire = SimConfig(kernel="event").to_dict()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            back = SimConfig.from_dict(wire)
        assert back.kernel == "event"
        assert not caught, "deserialized payloads must not deprecation-warn"

    def test_snapshot_exported_at_package_root(self):
        for name in ("Snapshot", "SnapshotError", "capture_prefix",
                     "resume", "SNAPSHOT_SCHEMA_VERSION"):
            assert name in repro.__all__
            assert hasattr(repro, name)
