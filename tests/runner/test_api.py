"""The repro.api stability facade."""

import repro
from repro import api
from repro.runner import Job

_C = "long main() { out(40 + 2); return 0; }"
_ASM = "main:\n    movq $7, %rax\n    out %rax\n    hlt\n"


class TestFacadeSurface:
    def test_all_names_exist(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_package_reexports(self):
        # the package root exposes the facade and the engine types
        for name in ("api", "BatchReport", "Job", "ResultCache",
                     "run_batch"):
            assert name in repro.__all__
            assert hasattr(repro, name)


class TestFacadeCalls:
    def test_compile_and_run_sequential(self):
        result = api.run_sequential(api.compile_c(_C))
        assert result.signed_output == [42]

    def test_assemble_and_simulate(self):
        run = api.simulate(api.assemble(_ASM))
        assert run.result.outputs == [7]
        assert run.processor is not None

    def test_run_forked_typed_result(self):
        run = api.run_forked(api.compile_c(_C, fork=True))
        assert run.result.signed_output == [42]
        assert run.sections >= 1
        assert run.machine.section_table()

    def test_transform_alias(self):
        prog = api.compile_c(_C)
        assert "fork" in api.transform(prog).listing()

    def test_load_program_by_suffix(self, tmp_path):
        c_path = tmp_path / "p.c"
        c_path.write_text(_C)
        s_path = tmp_path / "p.s"
        s_path.write_text(_ASM)
        assert "fork" in api.load_program(str(c_path)).listing()
        assert api.load_program(str(s_path)).code


class TestFacadeBatch:
    def test_make_jobs_lifts_programs(self):
        prog = api.compile_c(_C, fork=True)
        job = Job.from_program(prog, job_id="kept")
        jobs = api.make_jobs([prog, job])
        assert jobs[0].job_id == "job-0"
        assert jobs[1] is job

    def test_batch_with_cache_dir(self, tmp_path):
        jobs = api.make_jobs([api.compile_c(_C, fork=True)])
        cold = api.batch(jobs, cache_dir=str(tmp_path))
        warm = api.batch(jobs, cache_dir=str(tmp_path))
        assert cold.executed == 1 and warm.cache_hits == 1
        assert warm.payloads() == cold.payloads()

    def test_batch_use_cache_false(self, tmp_path):
        jobs = api.make_jobs([api.compile_c(_C, fork=True)])
        api.batch(jobs, cache_dir=str(tmp_path))
        again = api.batch(jobs, cache_dir=str(tmp_path), use_cache=False)
        assert again.executed == 1 and again.cache_hits == 0
