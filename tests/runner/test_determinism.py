"""The engine's core contract: scheduling never changes results.

A ``--jobs 4`` pool, the serial in-process path, and a warm cache must
produce bit-identical payloads for every Table 1 workload — the pool
only changes *who* computes, never *what*.
"""

import json

import pytest

from repro.fork import fork_transform
from repro.runner import Job, ResultCache, run_batch
from repro.sim import SimConfig
from repro.workloads import WORKLOADS


def _suite_jobs():
    jobs = []
    for workload in WORKLOADS:
        inst = workload.instance(scale=0, seed=1)
        jobs.append(Job.from_program(
            fork_transform(inst.program),
            config=SimConfig(n_cores=8, stack_shortcut=True),
            job_id="det:%s" % workload.short, include_memory=True))
    return jobs


def _canon(report):
    """The deterministic projection both runs are compared on."""
    return json.dumps(report.to_json_dict(timing=False), sort_keys=True)


@pytest.fixture(scope="module")
def serial_report():
    report = run_batch(_suite_jobs())
    assert report.ok and report.executed == len(WORKLOADS)
    return report


class TestPoolDeterminism:
    def test_pool_of_4_bit_identical_to_serial(self, serial_report):
        pooled = run_batch(_suite_jobs(), pool_size=4)
        assert pooled.ok and pooled.executed == len(WORKLOADS)
        assert _canon(pooled) == _canon(serial_report)

    def test_outcomes_in_job_order(self, serial_report):
        assert [o.job_id for o in serial_report.outcomes] == \
            ["det:%s" % w.short for w in WORKLOADS]

    def test_warm_cache_bit_identical(self, serial_report, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_batch(_suite_jobs(), pool_size=4, cache=cache)
        assert cold.executed == len(WORKLOADS)
        warm = run_batch(_suite_jobs(), cache=cache)
        assert warm.executed == 0, "warm run must execute nothing"
        assert warm.cache_hits == len(WORKLOADS)
        assert warm.payloads() == cold.payloads() \
            == serial_report.payloads()
