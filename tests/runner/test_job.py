"""Job identity: content-addressed keys and the wire format."""

import pytest

from repro.errors import ReproError
from repro.fork import fork_transform
from repro.runner import SCHEMA_VERSION, Job
from repro.sim import SimConfig
from repro.workloads import get_workload


def _quicksort_job(**kwargs):
    prog = fork_transform(get_workload("quicksort").instance(scale=0,
                                                             seed=1).program)
    return Job.from_program(prog, **kwargs)


class TestJobKey:
    def test_key_is_deterministic(self):
        assert _quicksort_job().key() == _quicksort_job().key()

    def test_key_ignores_job_id(self):
        # the key addresses *content*; what the caller names the job is
        # presentation, not identity — else renaming a job would defeat
        # the cache
        a = _quicksort_job(job_id="alpha")
        b = _quicksort_job(job_id="beta")
        assert a.key() == b.key()

    def test_key_tracks_config(self):
        a = _quicksort_job(config=SimConfig(n_cores=4))
        b = _quicksort_job(config=SimConfig(n_cores=8))
        assert a.key() != b.key()

    def test_key_tracks_requested_outputs(self):
        a = _quicksort_job(include_memory=False)
        b = _quicksort_job(include_memory=True)
        assert a.key() != b.key()

    def test_key_tracks_program(self):
        other = fork_transform(
            get_workload("bfs").instance(scale=0, seed=1).program)
        assert (_quicksort_job().key()
                != Job.from_program(other).key())

    def test_default_job_id_derived_from_key(self):
        job = _quicksort_job()
        assert job.job_id == "job-" + job.key()[:12]


class TestJobProgram:
    def test_program_roundtrips_listing(self):
        # the listing is the canonical serialization: re-assembling it
        # must yield the same listing (fixpoint), or workers would
        # simulate a different program than the caller digested
        job = _quicksort_job()
        assert job.program().listing() == job.asm

    def test_entry_point_survives(self):
        # MiniC programs enter via _start, not the first instruction;
        # the .entry directive carries that through the wire format
        job = _quicksort_job()
        original = fork_transform(
            get_workload("quicksort").instance(scale=0, seed=1).program)
        assert job.program().entry == original.entry


class TestJobWire:
    def test_wire_roundtrip(self):
        job = _quicksort_job(job_id="w", include_memory=True)
        clone = Job.from_wire(job.to_wire())
        assert clone == job
        assert clone.key() == job.key()

    def test_wire_schema_checked(self):
        wire = _quicksort_job().to_wire()
        wire["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ReproError):
            Job.from_wire(wire)
