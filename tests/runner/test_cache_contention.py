"""Multi-process cache contention: N processes hammering the same key
must never observe a torn entry.

The cache's concurrency contract is *atomic publish*: a reader sees
either nothing (miss) or a complete, self-consistent payload — never a
partially written file.  ``put`` guarantees it by writing to a unique
temp name (pid + per-handle counter) and ``os.replace``-ing into place;
this test drives that contract with real processes racing on one key
and on overlapping key sets.

Every observed torn read would show up twice: as a wrong checksum here
and as a ``healed`` increment in the reader's stats — both must stay
zero under pure put/get races (``healed`` is reserved for genuinely
poisoned entries, which torn *atomic* writes can never create).
"""

import json
import multiprocessing

from repro.runner import ResultCache

#: one shared content-address-shaped key all processes fight over
KEY = "ab" + "0" * 62

N_PROCESSES = 6
N_ROUNDS = 150


def _payload(stamp):
    """A payload whose integrity is checkable: the body is large enough
    that a torn write would cut it, and the checksum pins the body."""
    body = list(range(stamp, stamp + 500))
    return {"stamp": stamp, "body": body, "checksum": sum(body)}


def _verify(payload):
    assert set(payload) == {"stamp", "body", "checksum"}
    assert payload["checksum"] == sum(payload["body"])
    assert payload["body"][0] == payload["stamp"]


def _hammer(root, worker, queue):
    """Alternate put/get on the shared key as fast as possible; report
    every anomaly and the final reader stats."""
    cache = ResultCache(root)
    errors = []
    for round_no in range(N_ROUNDS):
        stamp = worker * N_ROUNDS + round_no
        try:
            cache.put(KEY, _payload(stamp))
            seen = cache.get(KEY)
            if seen is not None:
                _verify(seen)
            # also race on a per-worker key to mix directory creation
            # into the same window
            own = "%02x" % worker + "1" * 62
            cache.put(own, _payload(stamp))
            mine = cache.get(own)
            if mine is None:
                errors.append("worker %d lost its own key" % worker)
            else:
                _verify(mine)
        except Exception as exc:    # noqa: BLE001 — collected, not raised
            errors.append("worker %d round %d: %r"
                          % (worker, round_no, exc))
    queue.put((worker, errors, dict(cache.stats)))


class TestCacheContention:
    def test_concurrent_putters_and_getters_never_tear(self, tmp_path):
        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        workers = [ctx.Process(target=_hammer,
                               args=(str(tmp_path), i, queue))
                   for i in range(N_PROCESSES)]
        for proc in workers:
            proc.start()
        reports = [queue.get(timeout=120) for _ in workers]
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        all_errors = [err for _, errors, _ in reports for err in errors]
        assert all_errors == [], all_errors
        # atomic publish means pure write races can never poison an
        # entry: no reader healed anything
        assert sum(stats["healed"] for _, _, stats in reports) == 0
        # and every reader that looked after its own put found a hit
        assert all(stats["hits"] > 0 for _, _, stats in reports)

    def test_no_temp_files_left_behind(self, tmp_path):
        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        workers = [ctx.Process(target=_hammer,
                               args=(str(tmp_path), i, queue))
                   for i in range(3)]
        for proc in workers:
            proc.start()
        for _ in workers:
            queue.get(timeout=120)
        for proc in workers:
            proc.join(timeout=60)
        leftovers = [p for p in tmp_path.rglob(".*.tmp.*")]
        assert leftovers == []

    def test_final_state_is_a_valid_entry(self, tmp_path):
        """After the dust settles the surviving entry parses, matches
        its key, and carries one writer's complete payload."""
        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        workers = [ctx.Process(target=_hammer,
                               args=(str(tmp_path), i, queue))
                   for i in range(4)]
        for proc in workers:
            proc.start()
        for _ in workers:
            queue.get(timeout=120)
        for proc in workers:
            proc.join(timeout=60)
        cache = ResultCache(str(tmp_path))
        final = cache.get(KEY)
        assert final is not None
        _verify(final)
        raw = json.loads(cache.path_for(KEY).read_text())
        assert raw["key"] == KEY

    def test_same_process_handles_use_distinct_temp_names(self,
                                                          tmp_path):
        """Two handles in one process (equal pids) must not collide on
        temp paths — the per-handle counter keeps them unique."""
        one = ResultCache(str(tmp_path))
        two = ResultCache(str(tmp_path))
        for i in range(50):
            one.put(KEY, _payload(i))
            two.put(KEY, _payload(1000 + i))
        final = one.get(KEY)
        _verify(final)
        assert list(tmp_path.rglob(".*.tmp.*")) == []
