"""The ``repro batch`` subcommand, end to end through main()."""

import json

import pytest

from repro.__main__ import main

_SPEC = {
    "defaults": {"config": {"n_cores": 2}},
    "jobs": [
        {"id": "the-answer",
         "c": "long main() { out(42); return 0; }"},
        {"id": "raw",
         "asm": "main:\n    movq $7, %rax\n    out %rax\n    hlt\n"},
    ],
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(_SPEC))
    return str(path)


class TestBatchCLI:
    def test_runs_and_reports(self, spec_file, capsys):
        assert main(["batch", spec_file]) == 0
        out = capsys.readouterr().out
        assert "[ok] the-answer" in out
        assert "2 jobs: 2 executed, 0 cached, 0 failed" in out

    def test_json_report(self, spec_file, capsys):
        assert main(["batch", spec_file, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["executed"] == 2 and report["failed"] == 0
        by_id = {o["job_id"]: o for o in report["outcomes"]}
        assert by_id["the-answer"]["payload"]["outputs"] == [42]

    def test_cache_warms(self, spec_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", spec_file, "--cache-dir", cache_dir,
                     "--quiet"]) == 0
        assert main(["batch", spec_file, "--cache-dir", cache_dir,
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 2 cached, 0 failed" in out

    def test_no_cache_overrides_cache_dir(self, spec_file, tmp_path,
                                          capsys):
        cache_dir = str(tmp_path / "cache")
        main(["batch", spec_file, "--cache-dir", cache_dir, "--quiet"])
        assert main(["batch", spec_file, "--cache-dir", cache_dir,
                     "--no-cache", "--quiet"]) == 0
        assert "2 executed, 0 cached" in capsys.readouterr().out

    def test_jobs_flag_matches_serial(self, spec_file, capsys):
        assert main(["batch", spec_file, "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["batch", spec_file, "--jobs", "2", "--json"]) == 0
        pooled = json.loads(capsys.readouterr().out)
        drop_timing = lambda r: [  # noqa: E731
            {k: v for k, v in o.items()
             if k not in ("wall_s", "phases")}
            for o in r["outcomes"]]
        assert drop_timing(serial) == drop_timing(pooled)

    def test_failing_job_exits_nonzero(self, tmp_path, capsys):
        spec = dict(_SPEC, jobs=_SPEC["jobs"] + [
            {"id": "doomed",
             "asm": "main:\n    jmp main\n",
             "config": {"max_cycles": 100}}])
        path = tmp_path / "doomed.json"
        path.write_text(json.dumps(spec))
        assert main(["batch", str(path), "--quiet"]) == 1
        captured = capsys.readouterr()
        assert "job doomed failed" in captured.err
        # healthy jobs still completed
        assert "2 executed" in captured.out

    def test_bad_spec_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"mystery": 1}]))
        assert main(["batch", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_summary_and_json_surface_cache_counters(self, spec_file,
                                                     tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", spec_file, "--cache-dir", cache_dir,
                     "--quiet"]) == 0
        assert "cache: 0 hit, 2 miss, 0 healed" in capsys.readouterr().out
        assert main(["batch", spec_file, "--cache-dir", cache_dir,
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["cache"] == {"hits": 2, "misses": 0, "healed": 0}
        assert report["host_metrics"]["domain"] == "host"

    def test_metrics_flag_prints_host_metrics(self, spec_file, tmp_path,
                                              capsys):
        assert main(["batch", spec_file, "--quiet", "--metrics"]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        host = json.loads(out[start:])
        assert host["domain"] == "host"
        names = {m["name"] for m in host["metrics"]}
        assert "batch_jobs" in names and "batch_pool_size" in names
