"""The awaitable batch entry point: ``run_batch_async`` must produce
the same outcomes as ``run_batch``, and ``WorkerPool`` must bridge the
multiprocessing pool onto the event loop correctly (reuse across
batches, failure isolation, clean close)."""

import asyncio
import json

import pytest

from repro import assemble
from repro.runner import (Job, ResultCache, WorkerPool, run_batch,
                          run_batch_async)
from repro.sim import SimConfig

_GOOD = """
main:
    movq $41, %rax
    incq %rax
    out %rax
    hlt
"""

_BAD = """
main:
    jmp main
"""


def _good_job(**kwargs):
    return Job.from_program(assemble(_GOOD), config=SimConfig(n_cores=2),
                            **kwargs)


def _bad_job():
    return Job.from_program(assemble(_BAD),
                            config=SimConfig(n_cores=1, max_cycles=200),
                            job_id="bad")


def _run(coro):
    return asyncio.run(coro)


class TestRunBatchAsync:
    def test_matches_sync_run_batch(self):
        jobs = [_good_job(job_id="a"), _good_job(job_id="b")]
        sync = run_batch(jobs)
        async_report = _run(run_batch_async(jobs, pool_size=2))
        assert [o.job_id for o in async_report.outcomes] == \
            [o.job_id for o in sync.outcomes]
        for ours, theirs in zip(async_report.outcomes, sync.outcomes):
            assert ours.status == theirs.status == "ok"
            assert json.dumps(ours.payload, sort_keys=True) == \
                json.dumps(theirs.payload, sort_keys=True)

    def test_failure_isolation(self):
        jobs = [_good_job(job_id="ok"), _bad_job()]
        report = _run(run_batch_async(jobs, pool_size=2))
        by_id = {o.job_id: o for o in report.outcomes}
        assert by_id["ok"].status == "ok"
        assert by_id["bad"].status == "failed"
        assert by_id["bad"].error
        assert not report.ok

    def test_cache_hits_settle_first(self):
        cache_jobs = [_good_job(job_id="one")]
        with_cache = []

        def record(outcome):
            with_cache.append(outcome.status)

        async def scenario(tmp):
            cache = ResultCache(tmp)
            await run_batch_async(cache_jobs, cache=cache)
            fresh = Job.from_program(assemble(_GOOD),
                                     config=SimConfig(n_cores=4),
                                     job_id="two")
            return await run_batch_async(cache_jobs + [fresh],
                                         cache=cache,
                                         on_outcome=record)

        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            report = _run(scenario(tmp))
        assert with_cache[0] == "cached"
        assert report.cache_stats["hits"] == 1
        assert report.host_metrics is not None

    def test_shared_pool_reused_across_batches(self):
        async def scenario():
            with WorkerPool(2) as pool:
                first = await run_batch_async([_good_job(job_id="a")],
                                              pool=pool)
                second = await run_batch_async([_good_job(job_id="b")],
                                               pool=pool)
                assert not pool.closed     # shared pools stay open
                return first, second

        first, second = _run(scenario())
        assert first.outcomes[0].status == "ok"
        assert second.outcomes[0].status == "ok"

    def test_private_pool_closed_even_on_failure(self):
        report = _run(run_batch_async([_bad_job()], pool_size=1))
        assert report.outcomes[0].status == "failed"


class TestWorkerPool:
    def test_run_job_returns_worker_tuple(self):
        async def scenario():
            with WorkerPool(1) as pool:
                return await pool.run_job(_good_job())

        status, payload, wall, phases, t_in, t_out = _run(scenario())
        assert status == "ok"
        assert payload["outputs"] == [42]
        assert t_out >= t_in
        assert "simulate_s" in phases

    def test_concurrent_jobs_interleave(self):
        async def scenario():
            with WorkerPool(2) as pool:
                return await asyncio.gather(
                    *(pool.run_job(_good_job(job_id="j%d" % i))
                      for i in range(4)))

        results = _run(scenario())
        assert [r[0] for r in results] == ["ok"] * 4

    def test_closed_pool_rejects_work(self):
        async def scenario():
            pool = WorkerPool(1)
            pool.close()
            assert pool.closed
            with pytest.raises(RuntimeError):
                await pool.run_job(_good_job())
            pool.close()               # idempotent

        _run(scenario())
