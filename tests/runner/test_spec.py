"""Job-spec parsing: program sources, defaults merging, rejection."""

import pytest

from repro.errors import ReproError
from repro.runner import job_from_entry, jobs_from_spec

_ASM = "main:\n    movq $7, %rax\n    out %rax\n    hlt\n"
_C = "long main() { out(42); return 0; }"


class TestEntrySources:
    def test_workload_entry(self):
        job = job_from_entry({"workload": "quicksort", "scale": 0,
                              "seed": 1})
        assert job.asm  # compiled + fork-transformed listing

    def test_workload_transform_opt_out(self):
        forked = job_from_entry({"workload": "quicksort"})
        plain = job_from_entry({"workload": "quicksort",
                                "transform": False})
        assert forked.key() != plain.key()
        assert "fork" in forked.asm and "fork" not in plain.asm

    def test_unknown_workload(self):
        with pytest.raises(ReproError):
            job_from_entry({"workload": "astrology"})

    def test_inline_asm(self):
        job = job_from_entry({"asm": _ASM})
        assert job.program().code

    def test_inline_c_forks_by_default(self):
        assert "fork" in job_from_entry({"c": _C}).asm
        assert "fork" not in job_from_entry({"c": _C, "fork": False}).asm

    def test_file_resolved_relative_to_spec(self, tmp_path):
        (tmp_path / "prog.s").write_text(_ASM)
        job = job_from_entry({"file": "prog.s"}, base_dir=tmp_path)
        assert job.asm == job.program().listing()

    def test_exactly_one_source_required(self):
        with pytest.raises(ReproError, match="exactly one"):
            job_from_entry({"id": "nothing"})
        with pytest.raises(ReproError, match="exactly one"):
            job_from_entry({"asm": _ASM, "c": _C})

    def test_unknown_entry_keys_rejected(self):
        with pytest.raises(ReproError, match="pool_size"):
            job_from_entry({"asm": _ASM, "pool_size": 4})


class TestDefaultsMerging:
    def test_config_merged_key_by_key(self):
        job = job_from_entry(
            {"asm": _ASM, "config": {"n_cores": 4}},
            defaults={"config": {"n_cores": 16, "stack_shortcut": True}})
        assert job.config.n_cores == 4          # entry wins
        assert job.config.stack_shortcut is True  # default survives

    def test_include_flags_from_defaults(self):
        job = job_from_entry({"asm": _ASM},
                             defaults={"include_memory": True})
        assert job.include_memory

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ReproError, match="warp_drive"):
            job_from_entry({"asm": _ASM, "config": {"warp_drive": 9}})


class TestSpecParsing:
    def test_bare_list(self):
        jobs = jobs_from_spec([{"asm": _ASM}, {"c": _C}])
        assert len(jobs) == 2

    def test_defaults_object(self):
        jobs = jobs_from_spec({"defaults": {"config": {"n_cores": 3}},
                               "jobs": [{"asm": _ASM}]})
        assert jobs[0].config.n_cores == 3

    def test_auto_ids_are_positional_and_content_addressed(self):
        jobs = jobs_from_spec([{"asm": _ASM}, {"c": _C}])
        assert jobs[0].job_id == "job-0-" + jobs[0].key()[:8]
        assert jobs[1].job_id.startswith("job-1-")

    def test_explicit_id_kept(self):
        jobs = jobs_from_spec([{"id": "mine", "asm": _ASM}])
        assert jobs[0].job_id == "mine"

    def test_empty_spec_rejected(self):
        with pytest.raises(ReproError, match="no jobs"):
            jobs_from_spec([])
        with pytest.raises(ReproError, match="no jobs"):
            jobs_from_spec({"jobs": []})

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(ReproError, match="unknown spec keys"):
            jobs_from_spec({"jobs": [{"asm": _ASM}], "pool": 4})
        with pytest.raises(ReproError, match="unknown defaults keys"):
            jobs_from_spec({"defaults": {"id": "x"},
                            "jobs": [{"asm": _ASM}]})

    def test_errors_carry_job_index(self):
        with pytest.raises(ReproError, match="job 1:"):
            jobs_from_spec([{"asm": _ASM}, {"workload": "astrology"}])
