"""ResultCache: round-trip, atomicity layout, and poison resistance."""

import json

from repro.runner import SCHEMA_VERSION, Job, ResultCache, run_batch
from repro.sim import SimConfig

#: a tiny program every cache test can afford to re-simulate
_TINY = """
main:
    movq $7, %rax
    out %rax
    hlt
"""


def _tiny_job(**kwargs):
    from repro import assemble
    return Job.from_program(assemble(_TINY),
                            config=SimConfig(n_cores=2), **kwargs)


class TestCacheBasics:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"cycles": 3})
        assert cache.get("ab" * 32) == {"cycles": 3}
        assert len(cache) == 1

    def test_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("cd" * 32) is None

    def test_two_level_fanout(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("ef" * 32, {})
        assert path == tmp_path / "ef" / ("ef" * 32 + ".json")

    def test_no_temp_litter(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"cycles": 3})
        assert not list(tmp_path.rglob(".*tmp*"))


class TestCachePoison:
    """Anything suspicious must read as a miss, never as a result."""

    def _poison(self, tmp_path, corruption):
        cache = ResultCache(tmp_path)
        job = _tiny_job()
        first = run_batch([job], cache=cache)
        assert first.executed == 1 and first.ok
        path = cache.path_for(job.key())
        corruption(path)
        second = run_batch([job], cache=cache)
        assert second.executed == 1, "poisoned entry must be recomputed"
        assert second.cache_hits == 0
        assert second.payloads() == first.payloads()
        # the recompute heals the entry: a third run is a clean hit
        third = run_batch([job], cache=cache)
        assert third.cache_hits == 1 and third.executed == 0
        assert third.payloads() == first.payloads()

    def test_corrupt_file_recomputed(self, tmp_path):
        self._poison(tmp_path,
                     lambda path: path.write_text("{truncated garba"))

    def test_stale_schema_recomputed(self, tmp_path):
        def bump_schema(path):
            entry = json.loads(path.read_text())
            entry["schema"] = SCHEMA_VERSION + 1
            path.write_text(json.dumps(entry))
        self._poison(tmp_path, bump_schema)

    def test_key_mismatch_recomputed(self, tmp_path):
        def swap_key(path):
            entry = json.loads(path.read_text())
            entry["key"] = "0" * 64
            path.write_text(json.dumps(entry))
        self._poison(tmp_path, swap_key)

    def test_non_dict_payload_recomputed(self, tmp_path):
        def flatten(path):
            entry = json.loads(path.read_text())
            entry["payload"] = [1, 2, 3]
            path.write_text(json.dumps(entry))
        self._poison(tmp_path, flatten)

    def test_deleted_entry_recomputed(self, tmp_path):
        self._poison(tmp_path, lambda path: path.unlink())


class TestBlobTier:
    """Content-addressed binary blobs (snapshot envelopes)."""

    def test_roundtrip_and_key(self, tmp_path):
        import hashlib
        cache = ResultCache(tmp_path)
        key = cache.put_blob(b"snapshot bytes")
        assert key == hashlib.sha256(b"snapshot bytes").hexdigest()
        assert cache.get_blob(key) == b"snapshot bytes"
        assert cache.blob_stats["hits"] == 1

    def test_layout_is_fanned_out_under_blobs(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.put_blob(b"x")
        assert cache.blob_path(key) == \
            tmp_path / "blobs" / key[:2] / (key + ".bin")
        assert cache.blob_path(key).exists()

    def test_put_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.put_blob(b"same") == cache.put_blob(b"same")
        assert len(list((tmp_path / "blobs").rglob("*.bin"))) == 1

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_blob("0" * 64) is None
        assert cache.blob_stats["misses"] == 1

    def test_corruption_heals_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.put_blob(b"pristine")
        cache.blob_path(key).write_bytes(b"tampered")
        assert cache.get_blob(key) is None
        assert cache.blob_stats["healed"] == 1

    def test_blob_traffic_never_touches_job_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.put_blob(b"blob")
        cache.get_blob(key)
        cache.get_blob("1" * 64)
        assert cache.stats == {"hits": 0, "misses": 0, "healed": 0}

    def test_no_temp_litter(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_blob(b"payload")
        assert not list(tmp_path.rglob(".*tmp*"))
