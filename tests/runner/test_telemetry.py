"""Host-domain batch telemetry: cache counters, phase walls, pool timeline.

The contract under test is **separation**: everything wall-clock-derived
(per-job phase timings, cache hit/miss/heal counters, the worker-pool
concurrency timeline, the host-metrics export) rides only under
``timing=True`` exports.  The ``timing=False`` report — the one
differential tests byte-compare — and every content-addressed cached
payload must stay exactly as they were before telemetry existed.
"""

import json

import pytest

from repro import assemble
from repro.obs.metrics import HOST_DOMAIN
from repro.runner import Job, ResultCache, run_batch
from repro.runner.engine import (PHASES, build_host_metrics,
                                 execute_job_timed)
from repro.sim import SimConfig

SOURCE = """
main:
    movq $%d, %%rax
    incq %%rax
    out %%rax
    hlt
"""


def _job(n=8, job_id=None, **config):
    config.setdefault("n_cores", 4)
    return Job.from_program(assemble(SOURCE % n),
                            config=SimConfig(**config),
                            job_id=job_id or ("v%d" % n))


def _bad_job():
    # assembles fine at spec time but exceeds its cycle budget when run
    return Job.from_program(assemble("main:\n    jmp main\n"),
                            config=SimConfig(n_cores=1, max_cycles=200),
                            job_id="broken")


class TestCacheCounters:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        assert cache.get(job.key()) is None
        cache.put(job.key(), {"x": 1})
        assert cache.get(job.key()) == {"x": 1}
        assert cache.stats == {"hits": 1, "misses": 1, "healed": 0}

    @pytest.mark.parametrize("poison", [
        "not json {",                                  # corrupt JSON
        json.dumps(["not", "a", "dict"]),              # non-dict envelope
        json.dumps({"schema": -1, "key": "k", "payload": {}}),  # stale
        json.dumps({"schema": 1, "key": "other", "payload": {}}),
        json.dumps({"schema": 1, "key": "k", "payload": "str"}),
    ])
    def test_poisoned_entries_count_as_healed(self, tmp_path, poison):
        cache = ResultCache(tmp_path)
        path = cache.path_for("k")
        path.parent.mkdir(parents=True, exist_ok=True)
        # a stale-schema poison needs the real schema elsewhere to stay
        # a schema test, but here any mismatch with the stored envelope
        # invariants is enough to trigger the heal path
        path.write_text(poison)
        assert cache.get("k") is None
        assert cache.stats["healed"] == 1
        assert cache.stats["hits"] == 0

    def test_batch_reports_per_run_deltas(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [_job(8), _job(9)]
        cold = run_batch(jobs, cache=cache)
        assert cold.cache_stats == {"hits": 0, "misses": 2, "healed": 0}
        warm = run_batch(jobs, cache=cache)
        # deltas, not lifetime totals: the handle already saw 2 misses
        assert warm.cache_stats == {"hits": 2, "misses": 0, "healed": 0}
        assert warm.executed == 0 and warm.cache_hits == 2

    def test_no_cache_means_no_cache_stats(self):
        report = run_batch([_job()])
        assert report.cache_stats is None
        assert "cache:" not in report.summary()


class TestPhaseWalls:
    def test_execute_job_timed_covers_all_phases(self):
        payload, phases = execute_job_timed(_job())
        assert set(phases) == set(PHASES)
        assert all(wall >= 0.0 for wall in phases.values())
        assert payload["instructions"] > 0
        # the phases never leak into the payload itself
        assert "phases" not in payload

    def test_outcomes_carry_phases_only_when_executed(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch([_job()], cache=cache)
        warm = run_batch([_job()], cache=cache)
        executed = run_batch([_job()])
        assert executed.outcomes[0].phases is not None
        assert warm.outcomes[0].phases is None        # cached: no walls


class TestTimingSeparation:
    def test_timing_false_drops_all_host_telemetry(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = run_batch([_job()], cache=cache)
        timed = report.to_json_dict(timing=True)
        bare = report.to_json_dict(timing=False)
        assert "cache" in timed and "host_metrics" in timed
        assert "wall_s" in timed["outcomes"][0]
        for banned in ("cache", "host_metrics", "wall_s"):
            assert banned not in bare
        assert "wall_s" not in bare["outcomes"][0]
        assert "phases" not in bare["outcomes"][0]

    def test_cached_payloads_stay_telemetry_free(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        run_batch([job], cache=cache)
        entry = json.loads(cache.path_for(job.key()).read_text())
        for banned in ("phases", "wall_s", "host_metrics", "cache"):
            assert banned not in entry["payload"]

    def test_summary_keeps_legacy_counts_and_adds_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [_job(8), _job(9), _bad_job()]
        run_batch(jobs[:1], cache=cache)               # warm one entry
        report = run_batch(jobs, cache=cache)
        summary = report.summary()
        assert "1 executed, 1 cached, 1 failed" in summary
        assert "cache: 1 hit, 2 miss, 0 healed" in summary


class TestHostMetrics:
    def test_registry_shape(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = run_batch([_job(8), _job(9)], cache=cache)
        hm = report.host_metrics
        assert hm["domain"] == HOST_DOMAIN
        by_name = {}
        for inst in hm["metrics"]:
            by_name.setdefault(inst["name"], []).append(inst)
        ok = [i for i in by_name["batch_jobs"]
              if i["labels"] == {"status": "ok"}]
        assert ok[0]["value"] == 2
        cache_counters = {i["labels"]["status"]: i["value"]
                          for i in by_name["batch_cache_requests"]}
        assert cache_counters == {"hits": 0, "misses": 2, "healed": 0}
        assert by_name["batch_pool_size"][0]["value"] == 1
        wall_hist = by_name["batch_job_wall_seconds"][0]
        assert wall_hist["count"] == 2

    def test_pool_timeline_counts_concurrency(self):
        outcomes = run_batch([_job(8), _job(9)]).outcomes
        hm = build_host_metrics(outcomes, pool_size=1, wall_s=1.0,
                                cache_stats=None)
        timeline = hm["pool"]
        assert len(timeline["concurrency"]) == 20
        assert timeline["bucket_s"] == pytest.approx(0.05)
        # serial execution: at most one job in flight per slice, and the
        # jobs' spans must appear somewhere on the timeline
        assert max(timeline["concurrency"]) >= 1
        no_stats = {i["name"] for i in hm["metrics"]}
        assert "batch_cache_requests" not in no_stats

    def test_empty_batch_timeline_degenerates(self):
        hm = build_host_metrics([], pool_size=4, wall_s=0.0,
                                cache_stats=None)
        assert hm["pool"] == {"bucket_s": 0.0, "concurrency": []}

    def test_host_metrics_render_as_prometheus(self, tmp_path):
        from repro.obs.metrics import render_prometheus
        cache = ResultCache(tmp_path)
        report = run_batch([_job()], cache=cache)
        text = render_prometheus(report.host_metrics)
        assert ('repro_batch_jobs{domain="host",status="ok"} 1'
                in text)
        assert 'repro_batch_pool_size{domain="host"} 1' in text
