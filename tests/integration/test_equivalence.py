"""Cross-engine equivalence properties.

The library has four ways to run a program:

1. the sequential machine (call/ret reference semantics),
2. the forked machine (section semantics, depth-first oracle),
3. the distributed cycle simulator (sections + renaming + messages),
4. (for MiniC) plain Python — the source-language oracle.

These tests generate random MiniC programs with hypothesis and check that
every engine agrees on outputs, result and final memory.  Any divergence in
instruction semantics, the fork transformation, memory renaming or the
simulator's request protocol shows up here.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fork import fork_transform
from repro.machine import ForkedMachine, SequentialMachine, run_forked, run_sequential
from repro.minic import compile_source
from repro.sim import SimConfig, simulate

WRAP = 1 << 64


def c_wrap(value):
    """Wrap a Python int to C long (two's complement signed 64-bit)."""
    value &= WRAP - 1
    return value - WRAP if value >= (1 << 63) else value


# -- expression generator -----------------------------------------------------

_leaf = st.one_of(
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=-50, max_value=50).map(str),
)


def _binary(children):
    safe_ops = st.sampled_from(["+", "-", "*", "&", "|", "^",
                                "<", "<=", ">", ">=", "==", "!=",
                                "&&", "||"])
    return st.tuples(safe_ops, children, children).map(
        lambda t: "(%s %s %s)" % (t[1], t[0], t[2]))


def _division(children):
    # Divisor forced into 1..8 so idiv never faults.
    return st.tuples(st.sampled_from(["/", "%"]), children, children).map(
        lambda t: "(%s %s ((%s & 7) + 1))" % (t[1], t[0], t[2]))


def _shift(children):
    return st.tuples(st.sampled_from(["<<", ">>"]), children, children).map(
        lambda t: "(%s %s (%s & 7))" % (t[1], t[0], t[2]))


def _unary(children):
    return st.tuples(st.sampled_from(["-", "~", "!"]), children).map(
        lambda t: "(%s%s)" % t)


def _ternary(children):
    return st.tuples(children, children, children).map(
        lambda t: "(%s ? %s : %s)" % t)


expressions = st.recursive(
    _leaf,
    lambda kids: st.one_of(_binary(kids), _division(kids), _shift(kids),
                           _unary(kids), _ternary(kids)),
    max_leaves=12,
)


def python_eval(expr, a, b, c):
    """Evaluate a generated MiniC expression with C semantics in Python."""
    return c_wrap(_py(expr, {"a": a, "b": b, "c": c}))


def _py(expr, env):
    # The generated grammar is fully parenthesized, so Python's own parser
    # can reuse it after operator translation.
    import ast as pyast

    tree = pyast.parse(expr, mode="eval").body

    def go(node):
        if isinstance(node, pyast.Constant):
            return node.value
        if isinstance(node, pyast.Name):
            return env[node.id]
        if isinstance(node, pyast.UnaryOp):
            val = c_wrap(go(node.operand))
            if isinstance(node.op, pyast.USub):
                return c_wrap(-val)
            if isinstance(node.op, pyast.Invert):
                return c_wrap(~val)
            raise AssertionError(node.op)
        if isinstance(node, pyast.BinOp):
            left = c_wrap(go(node.left))
            right = c_wrap(go(node.right))
            if isinstance(node.op, pyast.Add):
                return c_wrap(left + right)
            if isinstance(node.op, pyast.Sub):
                return c_wrap(left - right)
            if isinstance(node.op, pyast.Mult):
                return c_wrap(left * right)
            if isinstance(node.op, pyast.Div):
                q = abs(left) // abs(right)
                return -q if (left < 0) != (right < 0) else q
            if isinstance(node.op, pyast.Mod):
                q = abs(left) // abs(right)
                q = -q if (left < 0) != (right < 0) else q
                return c_wrap(left - q * right)
            if isinstance(node.op, pyast.LShift):
                return c_wrap(left << right)
            if isinstance(node.op, pyast.RShift):
                return c_wrap(left >> right)       # arithmetic shift
            if isinstance(node.op, pyast.BitAnd):
                return c_wrap(left & right)
            if isinstance(node.op, pyast.BitOr):
                return c_wrap(left | right)
            if isinstance(node.op, pyast.BitXor):
                return c_wrap(left ^ right)
            raise AssertionError(node.op)
        if isinstance(node, pyast.Compare):
            left = c_wrap(go(node.left))
            right = c_wrap(go(node.comparators[0]))
            op = node.ops[0]
            table = {pyast.Lt: left < right, pyast.LtE: left <= right,
                     pyast.Gt: left > right, pyast.GtE: left >= right,
                     pyast.Eq: left == right, pyast.NotEq: left != right}
            return int(table[type(op)])
        if isinstance(node, pyast.BoolOp):
            values = [go(v) for v in node.values]
            if isinstance(node.op, pyast.And):
                return int(all(c_wrap(v) != 0 for v in values))
            return int(any(c_wrap(v) != 0 for v in values))
        if isinstance(node, pyast.IfExp):
            return go(node.body) if c_wrap(go(node.test)) else go(node.orelse)
        raise AssertionError("unhandled %r" % node)

    return go(tree)


# -- tests -------------------------------------------------------------------


class TestExpressionEquivalence:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(expr=expressions,
           a=st.integers(min_value=-100, max_value=100),
           b=st.integers(min_value=-100, max_value=100),
           c=st.integers(min_value=-100, max_value=100))
    def test_minic_matches_python(self, expr, a, b, c):
        if "!" in expr or "?" in expr or "&&" in expr or "||" in expr:
            # covered by the engine cross-check below; Python translation
            # of short-circuit/ternary handled there structurally
            oracle = None
        else:
            oracle = python_eval(expr, a, b, c)
        src = """
        long f(long a, long b, long c) { return %s; }
        long main() { return f(%d, %d, %d); }
        """ % (expr, a, b, c)
        seq = run_sequential(compile_source(src))
        if oracle is not None:
            assert c_wrap(seq.return_value) == oracle

        forked = compile_source(src, fork_mode=True)
        fres, _ = run_forked(forked)
        assert fres.return_value == seq.return_value

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(expr=expressions,
           data=st.lists(st.integers(min_value=-40, max_value=40),
                         min_size=5, max_size=5))
    def test_all_engines_agree_on_loop_program(self, expr, data):
        src = """
        long A[5] = {%s};
        long f(long a, long b, long c) { return %s; }
        long main() {
            long i;
            long s = 0;
            for (i = 0; i + 2 < 5; i = i + 1) {
                s = s ^ f(A[i], A[i + 1], A[i + 2]);
                out(s);
            }
            return s;
        }
        """ % (", ".join(str(v) for v in data), expr)
        seq = run_sequential(compile_source(src))

        forked_prog = compile_source(src, fork_mode=True, fork_loops=True)
        forked, _ = run_forked(forked_prog)
        assert forked.output == seq.output
        assert forked.return_value == seq.return_value

        sim, _ = simulate(forked_prog, SimConfig(n_cores=4))
        assert sim.outputs == seq.output
        assert sim.return_value == seq.return_value


# -- while-loop generator -----------------------------------------------------
#
# The expression strategy above is expression-heavy; this one generates
# `while` loops whose trip counts depend on the input data, so control flow
# (and hence fetch stalls and section shapes) varies per example.

_loop_update = st.sampled_from([
    "x - ((x & 3) + 1)",        # data-dependent decrement, always > 0
    "x - 1 - (b & 1)",
    "x / 2",
    "(x * 3 + 1) / 4",          # contracts since x >= 1
])

_loop_accum = st.sampled_from([
    "s + x", "s ^ (x * 3)", "s + x * i - b", "s | (x & c)",
])


@st.composite
def while_programs(draw):
    """A MiniC function whose while loop runs a data-dependent number of
    iterations (bounded by a fuel counter so every input terminates)."""
    update = draw(_loop_update)
    accum = draw(_loop_accum)
    nested = draw(st.booleans())
    inner = ""
    if nested:
        inner = """
            long y = (x & 7) + 1;
            while (y > 0) { s = s + 1; y = y - 1; }
        """
    return """
        long f(long a, long b, long c) {
            long x = (a & 63) + 1;
            long s = 0;
            long i = 0;
            while (x > 0 && i < 40) {
                s = %s;%s
                x = %s;
                i = i + 1;
            }
            out(s);
            return i;
        }
        long main() { return f(A0, A1, A2); }
    """ % (accum, inner, update)


class TestWhileLoopEquivalence:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(template=while_programs(),
           a=st.integers(min_value=-100, max_value=100),
           b=st.integers(min_value=-100, max_value=100),
           c=st.integers(min_value=-100, max_value=100))
    def test_data_dependent_trip_counts_all_engines(self, template, a, b, c):
        src = template.replace("A0", str(a)).replace("A1", str(b)) \
                      .replace("A2", str(c))
        seq = run_sequential(compile_source(src))

        forked_prog = compile_source(src, fork_mode=True)
        forked, _ = run_forked(forked_prog)
        assert forked.output == seq.output
        assert forked.return_value == seq.return_value

        # both scheduler modes must agree with the oracle and each other
        results = {}
        for event_driven in (False, True):
            sim, _ = simulate(forked_prog,
                              SimConfig(n_cores=4, event_driven=event_driven))
            assert sim.outputs == seq.output
            assert sim.return_value == seq.return_value
            results[event_driven] = sim
        assert results[False].cycles == results[True].cycles
        assert results[False].requests == results[True].requests


class TestForkTransformEquivalence:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.lists(st.integers(min_value=-30, max_value=30),
                         min_size=1, max_size=12))
    def test_transformed_sum_everywhere(self, data):
        src = """
        long A[%d] = {%s};
        long sum(long* t, long k) {
            if (k == 1) return t[0];
            return sum(t, k / 2) + sum(t + k / 2, k - k / 2);
        }
        long main() { out(sum(A, %d)); return 0; }
        """ % (len(data), ", ".join(str(v) for v in data), len(data))
        seq_prog = compile_source(src)
        seq = run_sequential(seq_prog)
        assert seq.signed_output == [sum(data)]

        transformed = fork_transform(seq_prog)
        forked, _ = run_forked(transformed)
        assert forked.output == seq.output

        sim, _ = simulate(transformed, SimConfig(n_cores=6))
        assert sim.outputs == seq.output

    def test_transform_preserves_final_memory(self):
        src = """
        long A[6] = {9, 8, 7, 6, 5, 4};
        long B[6];
        long copy(long* dst, long* src, long k) {
            if (k == 1) { dst[0] = src[0]; return 0; }
            copy(dst, src, k / 2);
            copy(dst + k / 2, src + k / 2, k - k / 2);
            return 0;
        }
        long main() { copy(B, A, 6); out(B[0]); out(B[5]); return 0; }
        """
        seq_prog = compile_source(src)
        seq = run_sequential(seq_prog)
        transformed = fork_transform(seq_prog)
        machine = ForkedMachine(transformed)
        forked = machine.run()
        assert forked.output == seq.output == [9, 4]
        sim, proc = simulate(transformed, SimConfig(n_cores=4))
        assert sim.outputs == seq.output
        b_addr = transformed.symbol_addr("B")
        assert [sim.final_memory.get(b_addr + 8 * i, 0)
                for i in range(6)] == [9, 8, 7, 6, 5, 4]
