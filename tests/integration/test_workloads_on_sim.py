"""End to end: every Table 1 workload, automatically fork-transformed,
executes correctly on the distributed cycle simulator.

This is the experiment the paper's in-progress simulators (Section 5:
"a qemu and simplescalar based simulator") were being built for.
"""

import pytest

from repro.fork import fork_transform
from repro.machine import run_forked
from repro.sim import SimConfig, simulate
from repro.workloads import WORKLOADS


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.short)
def test_workload_on_manycore(workload):
    inst = workload.instance(scale=0, seed=1)
    prog = fork_transform(inst.program)
    oracle, machine = run_forked(prog)
    assert oracle.signed_output == inst.expected_output

    result, _ = simulate(prog, SimConfig(n_cores=16, stack_shortcut=True))
    assert result.outputs == oracle.output
    assert result.sections == len(machine.section_table())
    assert result.instructions == oracle.steps


@pytest.mark.parametrize("workload", WORKLOADS[:4], ids=lambda w: w.short)
def test_workload_single_core_matches(workload):
    inst = workload.instance(scale=0, seed=1)
    prog = fork_transform(inst.program)
    one, _ = simulate(prog, SimConfig(n_cores=1, stack_shortcut=True))
    many, _ = simulate(prog, SimConfig(n_cores=16, stack_shortcut=True))
    assert one.outputs == many.outputs
    assert many.fetch_end <= one.fetch_end
