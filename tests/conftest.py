"""Shared fixtures: the paper's running example in both execution styles."""

import pytest

from repro.paper import paper_array, sum_forked_program, sum_sequential_program


@pytest.fixture
def sum5_seq():
    """Figure 2's program for sum(t, 5), t = [1..5]."""
    return sum_sequential_program(paper_array(5))


@pytest.fixture
def sum5_fork():
    """Figure 5's program for sum(t, 5), t = [1..5]."""
    return sum_forked_program(paper_array(5))
