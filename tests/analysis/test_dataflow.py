"""Liveness, must-writes, fork kill sets, and reaching definitions."""

from repro.analysis import (CFG, Definition, ReachingDefs, live_across_forks,
                            liveness, mask_of, regs_of)
from repro.analysis.dataflow import ENTRY_DEF, fork_kill_masks, must_writes
from repro.isa import assemble
from repro.paper import paper_array, sum_forked_program

# the forked flow writes rcx (non-copied) on every path to its endfork,
# so the pre-fork rcx can never be what the resume's read observes
KILLED = """
main:
    movq $2, %rcx
    fork f
    out %rcx
    hlt
f:
    movq $9, %rcx
    endfork
"""

# rbx is fork-copied: the resume observes the fork-time snapshot, so the
# forked flow's write neither kills the pre-fork value nor exports its
# own past the endfork
COPIED = """
main:
    movq $1, %rbx
    movq $2, %rcx
    fork f
    out %rbx
    out %rcx
    hlt
f:
    movq $9, %rbx
    endfork
"""


def test_mask_roundtrip():
    regs = frozenset({"rax", "rsp", "rflags"})
    assert regs_of(mask_of(regs)) == regs


class TestLiveness:
    def test_straight_line(self):
        cfg = CFG(assemble("main:\nmovq $1, %rax\nout %rax\nhlt"))
        lv = liveness(cfg)
        assert "rax" in lv.regs_in(1)
        assert "rax" not in lv.regs_in(0)   # defined here, dead before

    def test_exit_uses_return_reg(self):
        cfg = CFG(assemble("main:\nmovq $1, %rax\nhlt"))
        lv = liveness(cfg)
        # rax is the process return value: live into hlt, so the write
        # at addr 0 is not dead
        assert "rax" in lv.regs_in(1)

    def test_endfork_exports_only_noncopied(self):
        cfg = CFG(assemble(COPIED))
        lv = liveness(cfg)
        # endfork at addr 7; the resume reads both rbx and rcx, but only
        # the non-copied rcx travels through the endfork-resume edge
        assert "rcx" in lv.regs_out(7)
        assert "rbx" not in lv.regs_out(7)

    def test_fork_copy_keeps_prefork_value_live(self):
        cfg = CFG(assemble(COPIED))
        lv = liveness(cfg)
        # the resume's rbx read is satisfied by the fork-time copy, so
        # the pre-fork write at addr 0 is live across the fork site
        assert "rbx" in lv.regs_out(2)
        assert "rbx" in lv.regs_in(0) or "rbx" not in lv.regs_in(0)
        assert "rbx" in lv.regs_out(0)

    def test_must_write_kills_prefork_value(self):
        cfg = CFG(assemble(KILLED))
        lv = liveness(cfg)
        # the forked flow's unconditional rcx write interposes in the
        # total order, so the write at addr 0 is dead
        assert "rcx" not in lv.regs_out(1)
        assert "rcx" not in lv.regs_out(0)


class TestMustWrites:
    def test_unconditional_write_is_must(self):
        cfg = CFG(assemble(KILLED))
        mw = must_writes(cfg)
        assert "rcx" in regs_of(mw[4])      # f: movq $9, %rcx

    def test_kill_mask_excludes_copied_regs(self):
        cfg = CFG(assemble(COPIED))
        kills = fork_kill_masks(cfg)
        # rbx is must-written by the forked flow but fork-copied, so the
        # kill set is empty
        assert kills == {2: 0}

    def test_kill_mask_on_noncopied(self):
        cfg = CFG(assemble(KILLED))
        assert fork_kill_masks(cfg) == {1: mask_of(["rcx"])}


class TestLiveAcrossForks:
    def test_figure5(self):
        cfg = CFG(sum_forked_program(paper_array(5)))
        across = {addr: sorted(regs)
                  for addr, regs in live_across_forks(cfg).items()}
        assert across == {
            2: ["rax"],
            13: ["rax", "rbx", "rdi", "rsi", "rsp"],
            19: ["rax", "rsp"],
        }


class TestReachingDefs:
    def test_entry_pseudo_def(self):
        cfg = CFG(assemble("main:\nout %rcx\nhlt"))
        rdefs = ReachingDefs(cfg)
        reaching = rdefs.reaching(0, "rcx")
        assert reaching == [Definition(ENTRY_DEF, "rcx")]
        assert reaching[0].is_entry

    def test_fork_kill_blocks_prefork_def(self):
        cfg = CFG(assemble(KILLED))
        rdefs = ReachingDefs(cfg)
        # only the forked flow's definition reaches the resume read
        assert rdefs.reaching(2, "rcx") == [Definition(4, "rcx")]

    def test_endfork_blocks_copied_defs(self):
        cfg = CFG(assemble(COPIED))
        rdefs = ReachingDefs(cfg)
        reaching = rdefs.reaching(3, "rbx")
        # the resume sees the pre-fork def (via the fork-time copy), not
        # the forked flow's write at addr 6
        assert Definition(0, "rbx") in reaching
        assert Definition(6, "rbx") not in reaching

    def test_def_use_chains(self):
        cfg = CFG(assemble("main:\nmovq $1, %rax\nout %rax\nhlt"))
        chains = ReachingDefs(cfg).def_use_chains()
        assert chains[Definition(0, "rax")] == [(1, "rax")]

    def test_unreachable_code_skipped(self):
        cfg = CFG(assemble("main:\nhlt\ndead:\nout %rcx\nhlt"))
        rdefs = ReachingDefs(cfg)
        assert not rdefs.reachable(1)
