"""CFG construction: views, fork/endfork edges, blocks, regions."""

from repro.analysis import CFG, build_cfg
from repro.isa import assemble
from repro.paper import paper_array, sum_forked_program

FORKED = """
main:
    fork f
    out %rax
    hlt
f:
    movq $7, %rax
    endfork
"""

CALLED = """
main:
    call f
    out %rax
    hlt
f:
    movq $7, %rax
    ret
"""


def edges(cfg, addr, view):
    return sorted(cfg.succs(addr, view))


class TestForkEdges:
    def test_fork_target_in_all_views(self):
        cfg = build_cfg(assemble(FORKED))
        for view in ("dataflow", "flow", "summary"):
            assert (3, "fork-target") in cfg.succs(0, view)

    def test_fork_resume_only_in_dataflow(self):
        cfg = build_cfg(assemble(FORKED))
        assert (1, "fork-resume") in cfg.succs(0, "dataflow")
        assert (1, "fork-resume") not in cfg.succs(0, "flow")
        assert (1, "fork-resume") not in cfg.succs(0, "summary")

    def test_endfork_resume_only_in_dataflow(self):
        cfg = build_cfg(assemble(FORKED))
        assert edges(cfg, 4, "dataflow") == [(1, "endfork-resume")]
        assert cfg.succs(4, "flow") == []
        assert cfg.succs(4, "summary") == []

    def test_resume_of(self):
        cfg = build_cfg(assemble(FORKED))
        assert cfg.resume_of(0) == 1


class TestCallEdges:
    def test_call_enters_callee_in_dataflow_and_flow(self):
        cfg = build_cfg(assemble(CALLED))
        assert (3, "call") in cfg.succs(0, "dataflow")
        assert (3, "call") in cfg.succs(0, "flow")

    def test_call_summarised_in_summary_view(self):
        cfg = build_cfg(assemble(CALLED))
        assert edges(cfg, 0, "summary") == [(1, "call-summary")]

    def test_ret_returns_to_call_site(self):
        cfg = build_cfg(assemble(CALLED))
        assert edges(cfg, 4, "dataflow") == [(1, "ret")]
        # a ret ends the walk at one stack depth
        assert cfg.succs(4, "summary") == []


class TestStructure:
    def test_regions_and_function_of(self):
        cfg = build_cfg(assemble(FORKED))
        assert cfg.function_of(0) == "main"
        assert cfg.function_of(4) == "f"
        assert cfg.fork_sites == [0]

    def test_flow_reach_stays_in_section(self):
        cfg = build_cfg(assemble(FORKED))
        # the section forked into f never reaches the resume instructions
        reach = cfg.flow_reach(3)
        assert 3 in reach and 4 in reach
        assert 1 not in reach and 2 not in reach

    def test_blocks_cover_code_once(self):
        prog = sum_forked_program(paper_array(5))
        cfg = CFG(prog)
        covered = sorted(a for blk in cfg.blocks for a in blk.addrs())
        assert covered == list(range(len(prog.code)))

    def test_figure5_fork_sites(self):
        cfg = CFG(sum_forked_program(paper_array(5)))
        assert len(cfg.fork_sites) == 3
        assert all(cfg.resume_of(f) == f + 1 for f in cfg.fork_sites)

    def test_describe_mentions_counts(self):
        cfg = build_cfg(assemble(FORKED))
        assert "1 forks" in cfg.describe()
