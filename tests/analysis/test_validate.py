"""Differential validation: static live-across sets vs. dynamic traces.

The soundness half is the property the whole linter rests on: every
register a section dynamically reads before writing (machine trace) or
requests through the renaming network (simulator event stream) must be
in the static flow-view live-in set at the section's start.
"""

import pytest

from repro.analysis import validate_machine, validate_sim
from repro.minic import compile_source
from repro.paper import paper_array, sum_forked_program
from repro.workloads import WORKLOADS, get_workload

SIM_WORKLOADS = ("bfs", "quicksort", "dictionary")


def forked_workload(workload):
    inst = workload.instance(scale=0)
    return compile_source(inst.source, fork_mode=True)


class TestFigure5:
    def test_machine_sound_and_exact(self):
        report = validate_machine(sum_forked_program(paper_array(5)))
        assert report.sound
        assert report.missed == []
        hit, total = report.precision()
        assert (hit, total) == (15, 15)

    def test_sim_sound_and_exact(self):
        report = validate_sim(sum_forked_program(paper_array(5)))
        assert report.sound
        hit, total = report.precision()
        assert (hit, total) == (5, 5)

    def test_sim_root_section_requests_nothing(self):
        report = validate_sim(sum_forked_program(paper_array(5)))
        root = report.checks[0]
        assert root.sid == 1
        assert root.predicted == frozenset()
        assert root.observed == frozenset()

    def test_format_mentions_soundness(self):
        report = validate_machine(sum_forked_program(paper_array(5)))
        assert report.format()[-1].startswith("machine: sound, precision")


@pytest.mark.parametrize("workload", WORKLOADS,
                         ids=[w.short for w in WORKLOADS])
def test_machine_sound_on_all_workloads(workload):
    """Property (satellite c): every dynamically-read register in every
    workload trace is statically live at that section's entry."""
    report = validate_machine(forked_workload(workload))
    assert report.sound, "\n".join(report.format())
    assert len(report.checks) > 1           # the run actually forked


@pytest.mark.parametrize("short", SIM_WORKLOADS)
def test_sim_sound_on_workloads(short):
    """Cross-check against PR 2's event stream: every register request a
    section issued is in the static live-across set minus the fork
    copies (the simulator satisfies those from the fork-time snapshot)."""
    report = validate_sim(forked_workload(get_workload(short)))
    assert report.sound, "\n".join(report.format())
    hit, total = report.precision()
    assert hit <= total


@pytest.mark.parametrize("short", SIM_WORKLOADS)
def test_sim_sound_on_vector_kernel(short):
    """The theorem holds against every simulation kernel: the vector
    kernel's renaming requests land in the same static sets (the three
    kernels emit bit-identical event streams, so this pins that the
    validator really exercises the requested kernel rather than
    silently falling back to the scheduler default)."""
    report = validate_sim(forked_workload(get_workload(short)),
                          kernel="vector")
    assert report.source == "sim[vector]"
    assert report.sound, "\n".join(report.format())
    baseline = validate_sim(forked_workload(get_workload(short)))
    assert ([(c.sid, c.observed, c.predicted) for c in report.checks]
            == [(c.sid, c.observed, c.predicted) for c in baseline.checks])


def test_sim_kernel_overrides_explicit_config():
    from repro.sim import SimConfig
    report = validate_sim(sum_forked_program(paper_array(5)),
                          config=SimConfig(events=False, kernel="event"),
                          kernel="naive")
    assert report.source == "sim[naive]"
    assert report.sound
