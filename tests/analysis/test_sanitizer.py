"""Runtime sanitizer: the renaming-invariant check in ForkedMachine.

A well-formed program can never trip it — any read a section performs
lies on a static flow path, so it is either locally preceded by a write
or in the live-across set.  It fires exactly when dynamic control
escapes the static flow model, e.g. a fork-entered ``ret`` popping a
value that was never a return address (a computed jump).
"""

import pytest

from repro.errors import ReproError, SanitizerError
from repro.machine import run_forked
from repro.minic import compile_source
from repro.paper import paper_array, sum_forked_program
from repro.workloads import get_workload

# f's ret pops the pushed immediate 2 and "returns" into the middle of
# main — section 1 then executes `out %rcx` at an entry the static flow
# never predicted, where rcx is neither written locally nor live-across
RET_ABUSE = """
main:
    pushq $2
    fork f
    out %rcx
    hlt
f:
    ret
"""


class TestCleanPrograms:
    def test_figure5(self):
        result, _ = run_forked(sum_forked_program(paper_array(5)),
                               sanitize=True)
        assert result.signed_output == [15]

    def test_workload(self):
        inst = get_workload("dictionary").instance(scale=0)
        prog = compile_source(inst.source, fork_mode=True)
        plain, _ = run_forked(prog)
        checked, _ = run_forked(prog, sanitize=True)
        assert checked.output == plain.output

    def test_default_off(self):
        # sanitize defaults to False: the machine stays a pure replayer
        result, machine = run_forked(sum_forked_program(paper_array(5)))
        assert result.signed_output == [15]
        assert machine.sanitize is False


class TestViolation:
    def test_ret_abuse_caught_at_the_read(self):
        from repro.isa import assemble
        with pytest.raises(SanitizerError) as excinfo:
            run_forked(assemble(RET_ABUSE), sanitize=True)
        err = excinfo.value
        assert err.addr == 2
        assert "rcx" in str(err)
        assert "live-across set" in str(err)

    def test_unsanitized_fails_late_and_generic(self):
        from repro.isa import assemble
        with pytest.raises(ReproError) as excinfo:
            run_forked(assemble(RET_ABUSE))
        assert not isinstance(excinfo.value, SanitizerError)
