"""Whole-program section dependence graph, static speedup bound and the
differential soundness proof (``repro.analysis.deps``).

The two theorems under test:

* **Graph soundness** — every dependence the simulator dynamically
  observes (a renaming request filled by a producing section, PR 2's
  event stream) is covered by a static graph edge or a documented
  may-edge class, on all ten Table 1 workloads, under both schedulers.
* **Bound soundness** — the analytic speedup bound is an upper bound on
  the measured speedup (retired IPC) at every core count, because no
  schedule can beat the longest section or retire more than one
  instruction per section per cycle.
"""

import json
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.analysis import (
    DepEdge,
    SectionDepGraph,
    SpeedupBound,
    analyze_program,
    build_deps,
    profile_program,
    validate_deps,
)
from repro.analysis.deps import DEP_EDGE_KINDS, DEPS_SCHEMA_VERSION
from repro.paper import paper_array, sum_forked_program
from repro.sim import SimConfig
from repro.workloads import WORKLOADS, get_workload

SHORTS = [w.short for w in WORKLOADS]
SCHEDULERS = ("event", "naive")


@lru_cache(maxsize=None)
def forked(short):
    inst = get_workload(short).instance(scale=0)
    return api.compile_c(inst.source, fork=True)


@lru_cache(maxsize=None)
def analyzed(short):
    return analyze_program(forked(short))


@lru_cache(maxsize=None)
def measured_speedup(short, n_cores):
    result = api.simulate(forked(short), SimConfig(n_cores=n_cores)).result
    return result.instructions / result.cycles, result


class TestGraphShape:
    """Structure of the graph on the paper's Figure 5 program."""

    @pytest.fixture(scope="class")
    def graph(self):
        return build_deps(sum_forked_program(paper_array(5)))

    def test_nodes_are_entry_plus_fork_resumes(self, graph):
        entries = set(graph.nodes)
        expected = {graph.program.entry}
        expected.update(addr + 1 for addr in graph.cfg.fork_sites)
        assert entries == expected

    def test_exactly_one_root(self, graph):
        roots = [n for n in graph.nodes.values() if n.is_root]
        assert len(roots) == 1
        assert roots[0].entry == graph.program.entry

    def test_every_edge_kind_is_known(self, graph):
        for edge in graph.edges:
            assert edge.kind in DEP_EDGE_KINDS
            assert edge.src in graph.nodes
            assert edge.dst in graph.nodes

    def test_may_flags_follow_kind(self, graph):
        for edge in graph.edges:
            if edge.kind in ("reg-forward", "mem"):
                assert edge.may
            elif edge.kind == "reg":
                assert not edge.may

    def test_regions_cover_program(self, graph):
        covered = set()
        for node in graph.nodes.values():
            covered |= node.region
        # flow regions overlap (a section runs into shared code) but
        # their union is exactly the reachable program
        assert graph.program.entry in covered
        for addr in covered:
            assert 0 <= addr < len(graph.program.code)

    def test_covers_mem_never_misses(self, graph):
        entries = list(graph.nodes)
        for src in entries:
            for dst in entries:
                assert graph.covers_mem(src, dst) in ("mem", "mem-cache")


class TestSoundness:
    """The acceptance property: dynamic dependences ⊆ static edges."""

    @pytest.mark.parametrize("kernel", SCHEDULERS)
    @pytest.mark.parametrize("short", SHORTS)
    def test_sound_on_all_workloads_both_schedulers(self, short, kernel):
        graph, _ = analyzed(short)
        report = validate_deps(forked(short),
                               SimConfig(events=True, kernel=kernel),
                               graph=graph)
        assert report.sound, "\n".join(report.format())

    def test_coverage_report_partitions_observations(self):
        graph, _ = analyzed("quicksort")
        report = validate_deps(forked("quicksort"), graph=graph)
        assert sum(report.coverage().values()) == len(report.observations)
        hit, total = report.precision()
        assert hit <= total == len(report.observations)

    def test_missed_empty_when_sound(self):
        graph, _ = analyzed("dictionary")
        report = validate_deps(forked("dictionary"), graph=graph)
        assert report.sound
        assert report.missed == []
        assert "sound" in report.format()[-1]


class TestBoundSoundness:
    """bound(N) >= measured speedup at N — the acceptance criterion,
    checked at 64 and 256 cores on every workload."""

    @pytest.mark.parametrize("short", SHORTS)
    def test_bound_dominates_measured(self, short):
        _, bound = analyzed(short)
        for n_cores in (64, 256):
            measured, _ = measured_speedup(short, n_cores)
            assert bound.bound(n_cores) >= measured, (
                "%s @%d: bound %.3f < measured %.3f"
                % (short, n_cores, bound.bound(n_cores), measured))

    @pytest.mark.parametrize("short", ("quicksort", "bfs"))
    def test_t1_is_exactly_the_instruction_count(self, short):
        """The sequential-work term comes from the functional machine and
        must equal the simulator's dynamic instruction count exactly —
        both count the same committed instructions."""
        _, bound = analyzed(short)
        _, result = measured_speedup(short, 64)
        assert bound.t1 == result.instructions


class TestSpeedupBoundMath:
    def test_two_term_max(self):
        bound = SpeedupBound(t1=100, l_max=10, sections=4)
        assert bound.min_cycles(1) == 100
        assert bound.min_cycles(2) == 50
        assert bound.min_cycles(4) == 25
        # more cores than sections cannot help
        assert bound.min_cycles(64) == 25
        assert bound.bound(4) == pytest.approx(4.0)

    def test_critical_section_floor(self):
        bound = SpeedupBound(t1=100, l_max=40, sections=100)
        # parallelism saturates at the longest section
        assert bound.min_cycles(100) == 40
        assert bound.bound(100) == pytest.approx(2.5)

    def test_widths_scale_each_term(self):
        bound = SpeedupBound(t1=100, l_max=40, sections=100,
                             fetch_width=2, retire_width=2)
        assert bound.min_cycles(100) == 20

    def test_table_and_describe(self):
        bound = SpeedupBound(t1=100, l_max=10, sections=4)
        table = bound.table((1, 2, 4))
        assert list(table) == [1, 2, 4]
        assert table[4] == pytest.approx(4.0)
        assert "T1=100" in bound.describe()

    @given(t1=st.integers(1, 10**6), l_max=st.integers(1, 10**6),
           sections=st.integers(1, 10**4),
           n=st.integers(1, 1024))
    @settings(max_examples=200, deadline=None)
    def test_bound_properties(self, t1, l_max, sections, n):
        l_max = min(l_max, t1)
        bound = SpeedupBound(t1=t1, l_max=l_max, sections=sections)
        # a schedule needs at least the longest section, and speedup is
        # monotone non-decreasing in core count, never above min(N, S)
        assert bound.min_cycles(n) >= l_max
        assert bound.bound(n) <= min(n, sections)
        assert bound.bound(n + 1) >= bound.bound(n)
        assert bound.bound(1) <= 1.0 + 1e-9


class TestCriticalPathAndPressure:
    def test_critical_path_is_in_graph(self):
        graph, _ = analyzed("quicksort")
        path = graph.critical_path()
        assert path
        assert all(entry in graph.nodes for entry in path)
        assert graph.critical_path_weight() >= max(
            node.weight for node in graph.nodes.values())

    def test_core_pressure_covers_all_nodes(self):
        graph, _ = analyzed("quicksort")
        pressure = graph.core_pressure()
        assert set(pressure) == set(graph.nodes)
        for row in pressure.values():
            assert set(row) >= {"static_forks", "sections",
                                "instructions", "max_length"}

    def test_profile_attributes_all_dynamic_sections(self):
        graph = build_deps(forked("dictionary"))
        bound = profile_program(graph)
        assert sum(n.sections for n in graph.nodes.values()) == bound.sections
        assert sum(n.instructions for n in graph.nodes.values()) == bound.t1
        assert max(n.max_length for n in graph.nodes.values()) == bound.l_max


class TestSerialization:
    def test_json_dict_round_trips(self):
        graph, bound = analyzed("bfs")
        payload = graph.to_json_dict(bound, core_counts=(2, 64))
        again = json.loads(json.dumps(payload, sort_keys=True))
        assert again["schema_version"] == DEPS_SCHEMA_VERSION
        assert len(again["nodes"]) == len(graph.nodes)
        # edges are grouped by (src, dst, kind) with the registers /
        # address classes folded into the "what" list
        grouped = {(e.src, e.dst, e.kind) for e in graph.edges}
        assert len(again["edges"]) == len(grouped)
        assert (sum(len(e["what"]) for e in again["edges"])
                == len(graph.edges))
        assert set(again["bound"]["speedup"]) == {"2", "64"}
        assert again["implicit_may_edges"]

    def test_dot_mentions_every_node(self):
        graph, _ = analyzed("dictionary")
        dot = graph.to_dot()
        assert dot.startswith("digraph")
        for entry in graph.nodes:
            assert "n%d" % entry in dot

    def test_describe_counts_edges(self):
        graph, _ = analyzed("dictionary")
        text = graph.describe()
        assert "%d nodes" % len(graph.nodes) in text
        assert "%d edges" % len(graph.edges) in text


@given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=9))
@settings(max_examples=12, deadline=None)
def test_property_sum_forked_deps_sound(values):
    """Dependence-coverage soundness as a hypothesis property: for the
    paper's forked-sum program over an arbitrary array, every observed
    dependence is covered and the bound dominates the measurement."""
    program = sum_forked_program(values)
    graph, bound = analyze_program(program)
    report = validate_deps(program, graph=graph)
    assert report.sound, "\n".join(report.format())
    result = api.simulate(program, SimConfig(n_cores=64)).result
    assert bound.bound(64) >= result.instructions / result.cycles


def test_precision_matches_golden(golden_precision):
    """Precision pinned per workload (satellite d): the share of observed
    dependences landing on *precise* edges (reg / fork-copy / mem, not
    the documented may-classes) must not silently regress."""
    for short in SHORTS:
        graph, _ = analyzed(short)
        report = validate_deps(forked(short), graph=graph)
        hit, total = report.precision()
        entry = golden_precision[short]
        assert {"observed": total, "precise": hit,
                "coverage": report.coverage()} == entry, short


@pytest.fixture(scope="module")
def golden_precision():
    import os
    path = os.path.join(os.path.dirname(__file__),
                        "golden_deps_precision.json")
    with open(path) as handle:
        return json.load(handle)
