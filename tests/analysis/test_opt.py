"""Analysis-driven assembly optimizer (``repro.analysis.opt``).

Safety contract under test: the optimized program is architecturally
indistinguishable from the original — same outputs, same return value,
same final memory — on the functional machine and on all three
simulation kernels, fault-free and under chaos plans.  Final *register*
contents are deliberately outside the contract (a dead store is exactly
a store no one observes).  Committed cycles must drop on real workloads.
"""

from functools import lru_cache

import pytest

from repro import api
from repro.analysis import optimize_program
from repro.faults import FaultPlan
from repro.paper import paper_array, sum_forked_program
from repro.sim import SimConfig
from repro.workloads import WORKLOADS, get_workload

SHORTS = [w.short for w in WORKLOADS]
#: workloads the cycle-reduction acceptance criterion is pinned on
REDUCED = ("bfs", "quicksort", "quickhull", "dictionary")
KERNELS = ("event", "naive", "vector")


@lru_cache(maxsize=None)
def forked(short):
    inst = get_workload(short).instance(scale=0)
    return api.compile_c(inst.source, fork=True)


@lru_cache(maxsize=None)
def optimized(short):
    return optimize_program(forked(short))


def architectural(result):
    return (result.outputs, result.final_regs["rax"],
            dict(result.final_memory))


class TestFunctionalOracle:
    """run_forked on original vs. optimized: observable behaviour equal,
    dynamic instruction count never higher."""

    @pytest.mark.parametrize("short", SHORTS)
    def test_oracle_equivalent_on_all_workloads(self, short):
        report = optimized(short)
        base = api.run_forked(forked(short)).result
        opt = api.run_forked(report.program).result
        assert opt.output == base.output
        assert opt.return_value == base.return_value
        assert opt.steps <= base.steps

    @pytest.mark.parametrize("short", SHORTS)
    def test_optimizer_finds_work_on_all_workloads(self, short):
        report = optimized(short)
        assert report.changed
        assert report.removed_count > 0
        assert len(report.program.code) < len(report.original.code)


class TestSimulatorDifferential:
    """Three-kernel differential: the optimized program's architectural
    results are bit-identical across kernels and to the unoptimized
    architectural results; cycles agree across kernels."""

    @pytest.mark.parametrize("short", REDUCED)
    def test_three_kernels_bit_identical(self, short):
        prog = optimized(short).program
        results = [api.simulate(prog, SimConfig(kernel=k)).result
                   for k in KERNELS]
        base = api.simulate(forked(short), SimConfig()).result
        for result in results:
            assert architectural(result) == architectural(results[0])
            assert result.cycles == results[0].cycles
            assert (result.outputs, result.final_regs["rax"]) == (
                base.outputs, base.final_regs["rax"])
            assert result.final_memory == base.final_memory

    @pytest.mark.parametrize("short", REDUCED)
    def test_cycles_reduced(self, short):
        """The acceptance criterion asks for >= 2 workloads; we pin all
        four measured ones so a regression in any is loud."""
        base = api.simulate(forked(short), SimConfig()).result
        opt = api.simulate(optimized(short).program, SimConfig()).result
        assert opt.cycles < base.cycles, (
            "%s: %d !< %d" % (short, opt.cycles, base.cycles))

    @pytest.mark.parametrize("short", ("quicksort", "dictionary"))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_chaos_differential(self, short, kernel):
        """Under a chaos plan the recovery machinery re-sends and
        re-dispatches, but the architectural results must still match
        the unoptimized fault-free run (PR 4's theorem composed with the
        optimizer's oracle equivalence)."""
        plan = FaultPlan(seed=7, drop_rate=0.1)
        base = api.simulate(forked(short), SimConfig()).result
        result = api.simulate(optimized(short).program,
                              SimConfig(kernel=kernel, faults=plan)).result
        assert result.outputs == base.outputs
        assert result.final_regs["rax"] == base.final_regs["rax"]
        assert result.final_memory == base.final_memory

    def test_simconfig_optimize_flag(self):
        """`SimConfig(optimize=True)` runs the optimizer at load time:
        same architectural results, fewer committed cycles."""
        prog = forked("quicksort")
        base = api.simulate(prog, SimConfig()).result
        opt = api.simulate(prog, SimConfig(optimize=True)).result
        assert opt.outputs == base.outputs
        assert opt.final_regs["rax"] == base.final_regs["rax"]
        assert opt.final_memory == base.final_memory
        assert opt.cycles < base.cycles

    def test_optimize_flag_elided_from_cache_key(self):
        """Off-by-default must keep every content-addressed cache key
        byte-identical to pre-optimizer configs; on must fork the key."""
        assert "optimize" not in SimConfig().to_dict()
        assert SimConfig(optimize=True).to_dict()["optimize"] is True
        assert SimConfig.from_dict(
            SimConfig(optimize=True).to_dict()).optimize


class TestRebuild:
    """Label/entry remapping on programs whose dead code sits under or
    before labels and branch targets."""

    def test_idempotent(self):
        report = optimized("quicksort")
        again = optimize_program(report.program)
        assert not again.changed
        assert len(again.program.code) == len(report.program.code)

    def test_labels_reattach_and_branches_retarget(self):
        src = "\n".join([
            "main:",
            "  mov $7, %rcx",        # dead: rcx rewritten before any read
            "  mov $1, %rcx",
            "  jmp tail",
            "middle:",
            "  mov $9, %rdx",        # unreachable is left alone (anchors)
            "tail:",
            "  mov %rcx, %rax",
            "  ret",
        ])
        prog = api.assemble(src)
        report = optimize_program(prog)
        assert report.removed_count >= 1
        out = api.run_sequential(report.program)
        assert out.return_value == 1
        # every branch target still resolves inside the program
        for instr in report.program.code:
            for op in instr.operands:
                target = getattr(op, "target", None)
                if target is not None:
                    assert 0 <= target < len(report.program.code)

    def test_entry_remaps_when_preamble_shrinks(self):
        src = "\n".join([
            "  mov $5, %r8",          # dead preamble before the entry
            "start:",
            "  mov $3, %rax",
            "  ret",
        ])
        prog = api.assemble(src, entry="start")
        report = optimize_program(prog)
        out = api.run_sequential(report.program)
        assert out.return_value == 3

    def test_listing_round_trips_through_assembler(self):
        report = optimized("dictionary")
        listing = report.program.listing()
        again = api.assemble(listing)
        base = api.run_forked(report.program).result
        rerun = api.run_forked(again).result
        assert rerun.output == base.output
        assert rerun.return_value == base.return_value

    def test_fork_copy_mask_respected(self):
        """A store to a fork-copied register that the child reads is NOT
        dead even if the parent never reads it again."""
        program = sum_forked_program(paper_array(5))
        report = optimize_program(program)
        base = api.run_forked(program).result
        opt = api.run_forked(report.program).result
        assert opt.output == base.output
        assert opt.return_value == base.return_value

    def test_describe_mentions_counts(self):
        report = optimized("quicksort")
        text = report.describe()
        assert "removed" in text
