"""Fork-hazard linter: one crafted trigger per rule, the golden lint
output for the paper's sum(t, 5), and a clean bill for all workloads."""

import pytest

from repro.analysis import lint_program
from repro.fork import fork_transform
from repro.isa import assemble
from repro.minic import compile_source
from repro.paper import paper_array, sum_forked_program, \
    sum_sequential_program
from repro.workloads import WORKLOADS


def rules_of(report):
    return [f.rule for f in report.findings]


class TestRules:
    def test_fork_ret_mix(self):
        report = lint_program(assemble("main:\nfork f\nhlt\nf:\nret"))
        assert "fork-ret-mix" in rules_of(report)
        assert report.failed

    def test_resume_ret_mix(self):
        report = lint_program(assemble("""
        main:
            fork g
            hlt
        g:
            fork h
            ret
        h:
            endfork
        """))
        assert "resume-ret-mix" in rules_of(report)

    def test_uninit_read(self):
        report = lint_program(assemble("main:\nout %rcx\nhlt"))
        assert rules_of(report) == ["uninit-read"]
        assert "rcx" in report.findings[0].message

    def test_uninit_read_exempts_push_and_rsp(self):
        report = lint_program(assemble("main:\npushq %rcx\npopq %rcx\nhlt"))
        assert "uninit-read" not in rules_of(report)

    def test_dead_store(self):
        report = lint_program(assemble("main:\nmovq $1, %rcx\nhlt"))
        assert rules_of(report) == ["dead-store"]

    def test_dead_store_via_fork_kill(self):
        # the forked flow must-writes rcx, so the pre-fork write can
        # never be observed — only the kill-set refinement sees this
        report = lint_program(assemble("""
        main:
            movq $2, %rcx
            fork f
            out %rcx
            hlt
        f:
            movq $9, %rcx
            endfork
        """))
        assert rules_of(report) == ["dead-store"]
        assert report.findings[0].addr == 0

    def test_dead_save(self):
        prog = sum_sequential_program(paper_array(5))
        forked = fork_transform(prog, elide_saves=False)
        report = lint_program(forked)
        assert "dead-save" in rules_of(report)

    def test_fork_clobber(self):
        report = lint_program(assemble("""
        main:
            movq $5, %rbx
            fork f
            out %rbx
            hlt
        f:
            movq $9, %rbx
            out %rbx
            endfork
        """))
        assert rules_of(report) == ["fork-clobber"]
        assert not report.failed            # info only

    def test_stack_serialization(self):
        report = lint_program(assemble("""
        main:
            fork f
            pushq %rax
            popq %rax
            hlt
        f:
            endfork
        """))
        assert rules_of(report) == ["stack-serialization"]
        assert "2 rsp-writing" in report.findings[0].message
        assert not report.failed


class TestGoldenSum5:
    """Satellite: pinned lint output for the paper's own example."""

    def test_format(self):
        report = lint_program(sum_forked_program(paper_array(5)))
        assert report.format("sum5.s") == [
            "sum5.s:19: info: [fork-clobber] rbx is live into the "
            "resume section and the forked flow may overwrite it "
            "(addr 11: `movq %rsi, %rbx`); the resume keeps its "
            "fork-time copy",
            "sum5.s:19: info: [fork-clobber] rsi is live into the "
            "resume section and the forked flow may overwrite it "
            "(addr 12: `shrq %rsi`); the resume keeps its fork-time "
            "copy",
            "sum5.s:19: info: [stack-serialization] resume section "
            "reaches 1 rsp-writing instruction(s); the rsp chain "
            "serialises it against sibling sections unless the stack "
            "shortcut applies (paper claim iii)",
            "sum5.s:25: info: [stack-serialization] resume section "
            "reaches 1 rsp-writing instruction(s); the rsp chain "
            "serialises it against sibling sections unless the stack "
            "shortcut applies (paper claim iii)",
            "sum5.s: 0 error(s), 0 warning(s), 4 info note(s) across "
            "3 fork site(s)",
        ]

    def test_no_failures(self):
        report = lint_program(sum_forked_program(paper_array(5)))
        assert not report.failed
        assert not report.errors and not report.warnings

    def test_info_hidden(self):
        report = lint_program(sum_forked_program(paper_array(5)))
        assert report.format("sum5.s", show_info=False) == [
            "sum5.s: 0 error(s), 0 warning(s), 4 info note(s) across "
            "3 fork site(s)",
        ]


@pytest.mark.parametrize("workload", WORKLOADS,
                         ids=[w.short for w in WORKLOADS])
def test_workloads_lint_clean(workload):
    """Every Table-1 benchmark compiles to fork form with zero failing
    findings (the CI gate, run here without the dynamic validators)."""
    inst = workload.instance(scale=0)
    prog = compile_source(inst.source, fork_mode=True)
    report = lint_program(prog)
    assert not report.failed, "\n".join(report.format(workload.short))
